# Developer entry points.  Everything runs from the repo root with the
# in-tree sources (PYTHONPATH=src) so no install step is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-quick bench lint trace-smoke

## Tier-1: the full unit/integration/property suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Perf baseline at quick scale: times every figure, verifies the
## optimized path is bit-identical to serial/uncached, writes
## BENCH_results.json.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench

## The full pytest-benchmark evaluation (minutes; needs pytest-benchmark).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only

## Static sanity: byte-compile everything (no third-party linters needed).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

## Observability smoke: run the trace example at quick scale and check the
## emitted file is valid Perfetto trace_event JSON covering all 4 layers.
trace-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/trace_run.py fig16
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	from repro.obs import load_trace, trace_layers; \
	events = load_trace('trace.json'); \
	assert trace_layers(events) >= {'dram', 'cxl', 'ndp', 'mem'}, trace_layers(events); \
	assert all('ts' in e and 'dur' in e for e in events if e.get('ph') == 'X'); \
	print(f'trace-smoke ok: {len(events)} events')"
	rm -f trace.json metrics.csv
