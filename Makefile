# Developer entry points.  Everything runs from the repo root with the
# in-tree sources (PYTHONPATH=src) so no install step is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-quick bench lint

## Tier-1: the full unit/integration/property suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Perf baseline at quick scale: times every figure, verifies the
## optimized path is bit-identical to serial/uncached, writes
## BENCH_results.json.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench

## The full pytest-benchmark evaluation (minutes; needs pytest-benchmark).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only

## Static sanity: byte-compile everything (no third-party linters needed).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
