# Developer entry points.  Everything runs from the repo root with the
# in-tree sources (PYTHONPATH=src) so no install step is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench-quick bench bench-parity lint lint-cache-parity scenarios-smoke dsl-smoke trace-smoke profile-smoke telemetry-smoke

## Tier-1: the full unit/integration/property suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Perf baseline at quick scale: times every figure, verifies the
## optimized path is bit-identical to serial/uncached, writes
## BENCH_results.json.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench

## The full pytest-benchmark evaluation (minutes; needs pytest-benchmark).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/ --benchmark-only

## Scheduler parity: every benched figure runs at quick scale under both
## registered event schedulers (heap and wheel) and the full result
## digests must be identical — the hard bit-identical contract of
## repro.sim.scheduler (see docs/ARCHITECTURE.md, "Event core").
bench-parity:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q \
		tests/test_scheduler_parity.py -k TestFigureParity

## Static sanity: byte-compile everything, then the simulator-aware
## static-analysis pass (determinism / cycle-safety / trace-discipline
## lints; stdlib-only, see docs/ANALYSIS.md).  PYTHONHASHSEED=random
## proves the lint pass itself is hash-seed-independent.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	PYTHONHASHSEED=random PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro lint

## Warm-lint cache parity: a cold run and a warm (fully cached) run must
## emit byte-identical repro-lint/2 reports.  Uses a throwaway cache file
## so the developer's own warm cache is untouched.
lint-cache-parity:
	rm -f /tmp/repro-lint-parity-cache.json
	PYTHONHASHSEED=random PYTHONPATH=$(PYTHONPATH) \
		REPRO_LINT_CACHE=/tmp/repro-lint-parity-cache.json \
		$(PYTHON) -m repro lint --json /tmp/repro-lint-cold.json
	PYTHONHASHSEED=random PYTHONPATH=$(PYTHONPATH) \
		REPRO_LINT_CACHE=/tmp/repro-lint-parity-cache.json \
		$(PYTHON) -m repro lint --json /tmp/repro-lint-warm.json
	cmp /tmp/repro-lint-cold.json /tmp/repro-lint-warm.json
	@echo "lint-cache-parity ok: cold and warm reports byte-identical"
	rm -f /tmp/repro-lint-parity-cache.json /tmp/repro-lint-cold.json /tmp/repro-lint-warm.json

## Scenario smoke: every registered scenario runs end-to-end at quick
## scale through the scenario layer and must yield a result object
## (tests/test_scenarios.py holds the stricter non-empty-Report gate).
scenarios-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	from repro.experiments.scenarios import SCENARIOS, ensure_registered; \
	from repro.experiments import ExperimentScale, ParallelSweepRunner; \
	ensure_registered(); \
	runner = ParallelSweepRunner(jobs=1); \
	scale = ExperimentScale.quick(); \
	results = {name: spec.run(scale, runner=runner) \
	           for name, spec in SCENARIOS.items()}; \
	assert all(r is not None for r in results.values()), results; \
	print(f'scenarios-smoke ok: {len(results)} scenarios')"

## DSL smoke: both example payloads must validate, then run end-to-end
## at quick scale through the scenario layer (the same gate CI applies
## to every YAML block in docs/SCENARIOS.md via tests/test_dsl_docs.py).
dsl-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate examples/multi_tenant.yaml
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro validate examples/custom_scenario.yaml
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run examples/multi_tenant.yaml --quick --seed 7
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro run examples/custom_scenario.yaml --quick

## Observability smoke: run the trace example at quick scale and check the
## emitted file is valid Perfetto trace_event JSON covering all 4 layers.
trace-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) examples/trace_run.py fig16
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	from repro.obs import load_trace, trace_layers; \
	events = load_trace('trace.json'); \
	assert trace_layers(events) >= {'dram', 'cxl', 'ndp', 'mem'}, trace_layers(events); \
	assert all('ts' in e and 'dur' in e for e in events if e.get('ph') == 'X'); \
	print(f'trace-smoke ok: {len(events)} events')"
	rm -f trace.json metrics.csv

## Fleet-telemetry smoke: a tiny sweep writes a run ledger, `status`
## summarizes it, and the summary must be non-empty (every job finished,
## per-job wall times and worker ids recorded).
telemetry-smoke:
	rm -f telemetry-smoke.jsonl
	PYTHONPATH=$(PYTHONPATH) REPRO_LEDGER=telemetry-smoke.jsonl \
		$(PYTHON) -m repro run fig3 --quick
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro status telemetry-smoke.jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	import json, subprocess, sys; \
	out = subprocess.run( \
	    [sys.executable, '-m', 'repro', 'status', \
	     'telemetry-smoke.jsonl', '--json'], \
	    capture_output=True, text=True, check=True).stdout; \
	summary = json.loads(out); \
	assert summary['total_jobs'] > 0, summary; \
	assert summary['finished'] == summary['total_jobs'], summary; \
	assert summary['failed'] == 0, summary; \
	assert summary['slowest'], summary; \
	assert summary['per_worker'], summary; \
	print(f\"telemetry-smoke ok: {summary['finished']} jobs, \" \
	      f\"{summary['elapsed_s']:.1f}s\")"
	rm -f telemetry-smoke.jsonl

## Profiling smoke: one profiled figure run; check the ProfileReport's
## schema and that every system's phase decomposition sums to its total
## request latency, and that the flamegraph is non-empty.
profile-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro profile fig16 \
		--profile-out profile.json --flame-out profile.folded
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "\
	from repro.obs import PROFILE_SCHEMA, ProfileReport; \
	report = ProfileReport.load('profile.json'); \
	assert report.schema == PROFILE_SCHEMA; \
	assert report.systems, 'no systems profiled'; \
	assert all( \
	    sum(s['requests']['phases_cycles'].values()) \
	    == s['requests']['total_latency_cycles'] \
	    for s in report.systems.values()); \
	assert sum(1 for line in open('profile.folded')) > 0; \
	print(f'profile-smoke ok: {len(report.systems)} systems, ' \
	      f'{report.events_seen} events')"
	rm -f profile.json profile.folded
