"""Per-module lint cache keyed by file content digest.

A full lint of the tree parses every file twice (once for the per-file
rules, once into the whole-program summary).  That cost is fine for CI
but too slow for a pre-commit hook, so :class:`LintCache` memoizes the
expensive per-file work — the resolved findings and the program-analysis
module summary — keyed by the SHA-256 of the file's source.  A warm
re-lint of an unchanged tree therefore skips ``ast.parse`` entirely and
only re-runs the (cheap, graph-level) whole-program rules, producing a
byte-identical report; CI asserts that parity.

The cache is invalidated wholesale when the analysis configuration
changes: the config digest folds in the registered rule ids, the report
schema, and the source of the analysis package itself, so editing a rule
never serves stale findings.  The file lives at the repo root as
``.repro-lint-cache.json`` (override with ``REPRO_LINT_CACHE``) and is
gitignored.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.framework import (
    PROGRAM_RULES,
    RULES,
    Finding,
    LINT_SCHEMA,
)

#: Environment variable overriding the cache file location.
CACHE_ENV = "REPRO_LINT_CACHE"

#: Default cache filename, created next to the repo's ``src`` directory.
CACHE_BASENAME = ".repro-lint-cache.json"


def default_cache_path() -> Path:
    """Resolve the cache path: ``$REPRO_LINT_CACHE`` or the repo root."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    from repro.analysis.framework import default_root

    # default_root() is <repo>/src/repro — the repo root is two up.
    return default_root().parent.parent / CACHE_BASENAME


def _config_digest() -> str:
    """Digest of everything that can change findings besides file content."""
    hasher = hashlib.sha256()
    hasher.update(LINT_SCHEMA.encode())
    for rule_id in sorted(RULES):
        hasher.update(f"|{rule_id}|{RULES[rule_id].summary}".encode())
    for rule_id in sorted(PROGRAM_RULES):
        hasher.update(
            f"|{rule_id}|{PROGRAM_RULES[rule_id].summary}".encode()
        )
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        hasher.update(source.read_bytes())
    return hasher.hexdigest()


def _finding_to_json(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule, "path": finding.path,
        "line": finding.line, "col": finding.col,
        "message": finding.message, "suppressed": finding.suppressed,
        "reason": finding.reason,
        "paths": [list(hop) for hop in finding.paths],
    }


def _finding_from_json(payload: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(payload["rule"]), path=str(payload["path"]),
        line=int(payload["line"]), col=int(payload["col"]),
        message=str(payload["message"]),
        suppressed=bool(payload["suppressed"]),
        reason=str(payload["reason"]),
        paths=tuple(
            (str(hop[0]), int(hop[1]), str(hop[2]))
            for hop in payload.get("paths", [])
        ),
    )


class LintCache:
    """Content-addressed store of per-file lint results and summaries."""

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self.config = _config_digest()
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("config") != self.config:
            return  # rules or schema changed: start cold
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    @staticmethod
    def _digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def lookup(
        self, relpath: str, source: str
    ) -> Optional[Tuple[List[Finding], Optional[Dict[str, object]]]]:
        """Cached ``(findings, summary)`` for this exact file content."""
        entry = self._entries.get(relpath)
        if entry is None or entry.get("digest") != self._digest(source):
            return None
        try:
            findings = [
                _finding_from_json(item) for item in entry["findings"]
            ]
        except (KeyError, TypeError, ValueError, IndexError):
            return None
        return findings, entry.get("summary")

    def store(
        self,
        relpath: str,
        source: str,
        findings: List[Finding],
        summary: Optional[Dict[str, object]],
    ) -> None:
        self._entries[relpath] = {
            "digest": self._digest(source),
            "findings": [_finding_to_json(f) for f in findings],
            "summary": summary,
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {
            "config": self.config,
            "entries": {k: self._entries[k] for k in sorted(self._entries)},
        }
        text = json.dumps(payload, sort_keys=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(text + "\n", encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            pass  # a read-only checkout degrades to always-cold, not a crash
        self._dirty = False
