"""Whole-program analysis: cross-module call-graph rules for the lint pass.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time, so a wall-clock read hidden two calls deep in a "utility" module,
or a lambda handed to :class:`~repro.experiments.parallel.SweepJob`,
passes them clean.  This module closes that gap: :func:`summarize_source`
reduces each file to a JSON-serializable :data:`ModuleSummary` (imports,
functions and their call sites, classes, schema-id sites, suppression
tables), and :class:`Project` assembles every summary into a
project-wide symbol table and approximate call graph that the
interprocedural rules walk.

Call-graph approximation (documented precision/soundness caveats in
docs/ANALYSIS.md):

* bare-name calls resolve to module-level defs, then through the import
  map (including re-exports chased through package ``__init__`` files);
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class, then
  one base-class walk by name;
* ``obj.m()`` resolves through the receiver's annotated or
  constructor-inferred type when available, else to the *unique* class
  in the project defining ``m`` (builtin-ish method names such as
  ``update``/``get``/``pop`` are excluded from the uniqueness fallback
  so ``dict.update`` never aliases a project method);
* unresolvable calls produce no edge — the analysis under-approximates
  rather than false-positives.

Rules registered here (into :data:`repro.analysis.framework.PROGRAM_RULES`):
``transitive-wall-clock``, ``transitive-unseeded-rng``,
``sweep-job-picklable``, ``schema-id-registry``, ``export-doc-sync``.
Findings carry a cross-file ``paths`` witness chain (schema
``repro-lint/2``) and honour the same ``# repro: allow[rule-id]``
suppression comments as the per-file pass.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.framework import (
    Finding,
    ProgramRawFinding,
    ProgramRule,
    Suppression,
    WitnessHop,
    register_program,
)
from repro.analysis.rules import (
    ORDERED_OUTPUT_DIRS,
    _GLOBAL_NUMPY_FUNCS,
    _GLOBAL_RANDOM_FUNCS,
    _WALL_CLOCK_CALLS,
    _canonical,
    _dotted,
)

#: Schema-id shape every ``repro-*/N`` identifier must match.
SCHEMA_ID_RE = re.compile(r"repro-[a-z][a-z0-9-]*/\d+")

#: Method names excluded from the unique-name receiver fallback: they
#: collide with builtin container/str/IO methods, so "only one project
#: class defines it" says nothing about what ``obj.update()`` calls.
_AMBIGUOUS_METHOD_NAMES = frozenset({
    "add", "append", "clear", "close", "copy", "count", "decode",
    "discard", "done", "encode", "endswith", "extend", "flush", "format",
    "get", "index", "insert", "intersection", "items", "join", "keys",
    "lower", "map", "mkdir", "open", "partition", "pop", "popitem",
    "put", "read", "readline", "readlines", "remove", "replace",
    "resolve", "result", "reverse", "rstrip", "setdefault", "shutdown",
    "sort", "split", "splitlines", "startswith", "strip", "submit",
    "union", "update", "upper", "values", "write",
})

#: Names whose calls construct sweep jobs; the callable argument they
#: receive crosses a process boundary and must pickle by reference.
_JOB_CTOR_NAMES = ("SweepJob", "pipeline")

_MODULE_FN = "<module>"


# -- summarization (per file, cacheable) ---------------------------------------

def _module_name(relpath: str) -> Tuple[str, bool]:
    """Dotted module name for a repo relpath, plus is-package-__init__."""
    posix = relpath.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[:-3]
    is_init = posix.endswith("/__init__") or posix == "__init__"
    if is_init:
        posix = posix[: -len("/__init__")] if "/" in posix else ""
    return posix.replace("/", "."), is_init


def _resolve_relative(
    module: str, is_init: bool, level: int, source: Optional[str]
) -> Optional[str]:
    """Absolute dotted base for a ``from ...x import y`` statement."""
    parts = [p for p in module.split(".") if p]
    if not is_init:
        parts = parts[:-1]
    if level - 1 > len(parts):
        return None
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(parts)
    if source:
        base = f"{base}.{source}" if base else source
    return base or None


def _annotation_typename(node: Optional[ast.AST]) -> Optional[str]:
    """Terminal class name of an annotation (``Optional[X]`` -> ``X``)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip() or None
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if head and head.split(".")[-1] in ("Optional", "Final",
                                            "Annotated", "ClassVar"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_typename(inner)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                name = _annotation_typename(side)
                if name is not None:
                    return name
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted(node)
        return dotted.split(".")[-1] if dotted else None
    return None


def _value_desc(node: ast.AST) -> List[object]:
    """JSON descriptor of an expression that may denote a schema id."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return ["lit", node.value]
    if isinstance(node, ast.Subscript):
        head = _dotted(node.value)
        if (head and head.split(".")[-1] == "SCHEMAS"
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            return ["sub", node.slice.value]
        return ["opaque"]
    if isinstance(node, ast.Attribute):
        if (isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")):
            return ["selfattr", node.attr]
        dotted = _dotted(node)
        return ["ref", dotted] if dotted else ["opaque"]
    if isinstance(node, ast.Name):
        return ["ref", node.id]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return ["tuple", [_value_desc(e) for e in node.elts]]
    if isinstance(node, ast.Call):
        head = _dotted(node.func)
        if (head and head.split(".")[-1] in ("frozenset", "tuple", "set",
                                             "list", "sorted")
                and len(node.args) == 1):
            return _value_desc(node.args[0])
        if (head and head.split(".")[-1] == "schema_id"
                and node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            return ["sub", node.args[0].value]
        return ["opaque"]
    if isinstance(node, ast.Starred):
        return _value_desc(node.value)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return ["tuple", [_value_desc(node.left), _value_desc(node.right)]]
    return ["opaque"]


def _is_schema_access(node: ast.AST) -> bool:
    """Does this expression read a ``schema`` field/variable?"""
    if isinstance(node, ast.Name):
        return node.id == "schema"
    if isinstance(node, ast.Attribute):
        return node.attr == "schema"
    if isinstance(node, ast.Subscript):
        return (isinstance(node.slice, ast.Constant)
                and node.slice.value == "schema")
    if isinstance(node, ast.Call):
        return (isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and bool(node.args)
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "schema")
    return False


def _callable_desc(node: ast.AST, local_defs: frozenset) -> List[object]:
    """Descriptor for a callable flowing into a sweep-job construction."""
    if isinstance(node, ast.Lambda):
        return ["lambda", node.lineno]
    if isinstance(node, ast.Name):
        if node.id in local_defs:
            return ["local", node.id, node.lineno]
        return ["name", node.id]
    if isinstance(node, ast.Call):
        head = _dotted(node.func)
        if head and head.split(".")[-1] == "partial" and node.args:
            return ["partial", _callable_desc(node.args[0], local_defs)]
        return ["opaque"]
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        return ["dotted", dotted] if dotted else ["opaque"]
    return ["opaque"]


class _FunctionVisitor(ast.NodeVisitor):
    """Collect call sites, taint sources, locals, and job sites within
    one function body (nested defs are visited by the outer walk)."""

    def __init__(self, summary: "_Summarizer", qualname: str,
                 imports: Dict[str, str]) -> None:
        self.s = summary
        self.qual = qualname
        self.imports = imports
        self.local_defs: set = set()
        self.locals: Dict[str, str] = {}
        self.calls: List[List[object]] = []
        self.taint: Dict[str, List[List[object]]] = {"wall": [], "rng": []}

    # Nested function/class defs: record the name (for picklability
    # classification) but do not descend — the outer walk summarizes
    # nested defs as their own pseudo-functions.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.local_defs.add(node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.local_defs.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            typename = _annotation_typename(node.annotation)
            if typename:
                self.locals[node.target.id] = typename
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if (len(node.targets) == 1 and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            ctor = _dotted(node.value.func)
            if ctor:
                tail = ctor.split(".")[-1]
                if tail and tail[0].isupper():
                    self.locals[node.targets[0].id] = tail
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        self._record_taint(node)
        self._record_job_site(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        site = [node.lineno, node.col_offset]
        if isinstance(func, ast.Name):
            self.calls.append(site + ["name", func.id])
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")):
                self.calls.append(site + ["self", func.attr])
            elif isinstance(func.value, ast.Name):
                self.calls.append(site + ["attr", func.value.id, func.attr])
            else:
                dotted = _dotted(func)
                if dotted:
                    self.calls.append(site + ["dotted", dotted])

    def _record_taint(self, node: ast.Call) -> None:
        canon = _canonical(node.func, self.imports)
        if canon is None:
            return
        if canon in _WALL_CLOCK_CALLS:
            self.taint["wall"].append([node.lineno, canon])
            return
        unseeded = not node.args and not node.keywords
        if canon in ("random.Random", "numpy.random.default_rng"):
            if unseeded:
                self.taint["rng"].append([node.lineno, canon])
        elif canon.startswith("random."):
            func = canon.split(".", 1)[1]
            if "." not in func and func in _GLOBAL_RANDOM_FUNCS:
                self.taint["rng"].append([node.lineno, canon])
        elif canon.startswith("numpy.random."):
            if canon.rsplit(".", 1)[1] in _GLOBAL_NUMPY_FUNCS:
                self.taint["rng"].append([node.lineno, canon])

    def _record_job_site(self, node: ast.Call) -> None:
        head = _dotted(node.func)
        if head is None or head.split(".")[-1] not in _JOB_CTOR_NAMES:
            return
        ctor = head.split(".")[-1]
        frozen = frozenset(self.local_defs)
        candidates: List[ast.AST] = []
        if ctor == "SweepJob":
            if len(node.args) >= 2:
                candidates.append(node.args[1])
            candidates.extend(
                kw.value for kw in node.keywords if kw.arg == "func"
            )
        else:  # pipeline(f, g, ...) — every positional stage is a callable
            candidates.extend(node.args)
        for arg in candidates:
            self.s.job_sites.append([
                node.lineno, node.col_offset, ctor, self.qual,
                _callable_desc(arg, frozen),
            ])


def _immediate_defs(node) -> List[ast.AST]:
    """Function defs nested directly inside ``node`` (not transitively
    inside a deeper def/class, which summarizes its own children)."""
    found: List[ast.AST] = []
    stack = list(node.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append(stmt)
            continue
        if isinstance(stmt, ast.ClassDef):
            continue
        for child in ast.iter_child_nodes(stmt):
            stack.append(child)
    return found


class _Summarizer:
    """Single pass over one module's AST producing the summary dict."""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath
        self.module, self.is_init = _module_name(relpath)
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, Dict[str, object]] = {}
        self.classes: Dict[str, Dict[str, object]] = {}
        self.constants: Dict[str, List[object]] = {}
        self.defs: set = set()
        self.exports: Optional[List[str]] = None
        self.exports_line = 1
        self.schema_registry: Optional[Dict[str, str]] = None
        self.legacy_ids: List[str] = []
        self.schema_sites: List[List[object]] = []
        self.schema_literals: List[List[object]] = []
        self.job_sites: List[List[object]] = []

    def run(self, tree: ast.Module) -> Dict[str, object]:
        self._collect_imports(tree)
        self._collect_toplevel(tree)
        self._collect_schema_artifacts(tree)
        return {
            "module": self.module,
            "is_init": self.is_init,
            "imports": dict(sorted(self.imports.items())),
            "functions": {k: self.functions[k]
                          for k in sorted(self.functions)},
            "classes": {k: self.classes[k] for k in sorted(self.classes)},
            "constants": {k: self.constants[k]
                          for k in sorted(self.constants)},
            "defs": sorted(self.defs),
            "exports": self.exports,
            "exports_line": self.exports_line,
            "schema_registry": self.schema_registry,
            "legacy_schema_ids": sorted(self.legacy_ids),
            "schema_sites": self.schema_sites,
            "schema_literals": self.schema_literals,
            "job_sites": self.job_sites,
        }

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(
                        self.module, self.is_init, node.level, node.module
                    )
                    if base is None:
                        continue
                elif node.module is None:
                    continue
                else:
                    base = node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        self.defs.update(self.imports)

    def _summarize_function(
        self, node, qualname: str, class_name: Optional[str]
    ) -> None:
        visitor = _FunctionVisitor(self, qualname, self.imports)
        params: Dict[str, str] = {}
        all_args = (list(node.args.posonlyargs) + list(node.args.args)
                    + list(node.args.kwonlyargs))
        for arg in all_args:
            typename = _annotation_typename(arg.annotation)
            if typename:
                params[arg.arg] = typename
        for stmt in node.body:
            visitor.visit(stmt)
        self.functions[qualname] = {
            "line": node.lineno,
            "class": class_name,
            "calls": visitor.calls,
            "taint": visitor.taint,
            "locals": dict(sorted({**params, **visitor.locals}.items())),
        }
        # Summarize immediate nested defs too (their bodies can carry
        # taint that the enclosing function reaches by calling them).
        for stmt in _immediate_defs(node):
            self._summarize_function(
                stmt, f"{qualname}.<locals>.{stmt.name}", class_name
            )

    def _collect_toplevel(self, tree: ast.Module) -> None:
        module_visitor = _FunctionVisitor(self, _MODULE_FN, self.imports)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.defs.add(node.name)
                self._summarize_function(node, node.name, None)
            elif isinstance(node, ast.ClassDef):
                self.defs.add(node.name)
                self._collect_class(node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._collect_assignment(node)
                module_visitor.visit(node)
            else:
                module_visitor.visit(node)
        if module_visitor.calls or any(module_visitor.taint.values()):
            self.functions[_MODULE_FN] = {
                "line": 1,
                "class": None,
                "calls": module_visitor.calls,
                "taint": module_visitor.taint,
                "locals": dict(sorted(module_visitor.locals.items())),
            }

    def _collect_class(self, node: ast.ClassDef) -> None:
        methods: List[str] = []
        attrs: List[str] = []
        schema_default: Optional[List[object]] = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                self._summarize_function(
                    stmt, f"{node.name}.{stmt.name}", node.name
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                attrs.append(stmt.target.id)
                if stmt.target.id == "schema" and stmt.value is not None:
                    schema_default = _value_desc(stmt.value)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        attrs.append(target.id)
                        if target.id == "schema":
                            schema_default = _value_desc(stmt.value)
        bases = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                bases.append(dotted.split(".")[-1])
        self.classes[node.name] = {
            "line": node.lineno,
            "methods": sorted(set(methods)),
            "attrs": sorted(set(attrs)),
            "bases": bases,
            "schema_default": schema_default,
        }

    def _collect_assignment(self, node) -> None:
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            self.defs.add(name)
            if value is None:
                continue
            if name == "__all__" and isinstance(value, (ast.List, ast.Tuple)):
                self.exports = [
                    e.value for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                self.exports_line = node.lineno
            elif name == "SCHEMAS" and isinstance(value, ast.Dict):
                registry: Dict[str, str] = {}
                for key, val in zip(value.keys, value.values):
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and isinstance(val, ast.Constant)
                            and isinstance(val.value, str)):
                        registry[key.value] = val.value
                self.schema_registry = registry
            elif name == "LEGACY_SCHEMA_IDS":
                desc = _value_desc(value)
                if desc[0] == "tuple":
                    self.legacy_ids = [
                        d[1] for d in desc[1]
                        if isinstance(d, list) and d[0] == "lit"
                    ]
            else:
                desc = _value_desc(value)
                if desc != ["opaque"]:
                    self.constants[name] = desc

    def _collect_schema_artifacts(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and SCHEMA_ID_RE.fullmatch(node.value)):
                self.schema_literals.append(
                    [node.lineno, node.col_offset, node.value]
                )
            if isinstance(node, ast.Dict):
                for key, val in zip(node.keys, node.values):
                    if (isinstance(key, ast.Constant)
                            and key.value == "schema" and val is not None):
                        self.schema_sites.append([
                            val.lineno, val.col_offset, "emit",
                            _value_desc(val),
                        ])
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                left, right = node.left, node.comparators[0]
                if _is_schema_access(left) and not _is_schema_access(right):
                    self.schema_sites.append([
                        right.lineno, right.col_offset, "check",
                        _value_desc(right),
                    ])
                elif _is_schema_access(right) and not _is_schema_access(left):
                    self.schema_sites.append([
                        left.lineno, left.col_offset, "check",
                        _value_desc(left),
                    ])
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "get" and node.args
                        and isinstance(node.args[0], ast.Constant)
                        and node.args[0].value == "schema"
                        and len(node.args) == 2):
                    self.schema_sites.append([
                        node.args[1].lineno, node.args[1].col_offset,
                        "check", _value_desc(node.args[1]),
                    ])


def summarize_source(source: str, relpath: str) -> Dict[str, object]:
    """Reduce one file to its whole-program summary (JSON-serializable).

    Includes the file's suppression tables so the program rules resolve
    ``# repro: allow[...]`` comments without re-reading the source.
    Unparseable files yield an empty summary (the per-file pass already
    reports ``parse-error``).
    """
    from repro.analysis.framework import (
        _extract_comments,
        _parse_suppressions,
    )

    try:
        tree = ast.parse(source)
    except SyntaxError:
        module, is_init = _module_name(relpath)
        return {"module": module, "is_init": is_init, "unparsed": True}
    summary = _Summarizer(relpath).run(tree)
    comments, comment_only = _extract_comments(source)
    by_line, file_level, _ = _parse_suppressions(comments)
    summary["suppressions"] = {
        "by_line": {
            str(line): {"rules": list(supp.rules), "reason": supp.reason}
            for line, supp in sorted(by_line.items())
        },
        "file_level": [
            {"rules": list(supp.rules), "reason": supp.reason}
            for supp in file_level
        ],
        "comment_only": sorted(comment_only),
    }
    return summary


# -- the project-wide view -----------------------------------------------------

class Project:
    """Symbol table + call graph assembled from every module summary."""

    def __init__(
        self,
        summaries: Sequence[Tuple[str, Dict[str, object]]],
        api_doc: Optional[Path] = None,
    ) -> None:
        self.api_doc = api_doc
        self.modules: Dict[str, Dict[str, object]] = {}
        self.relpath_of: Dict[str, str] = {}
        for relpath, summary in sorted(summaries):
            if summary.get("unparsed"):
                continue
            module = str(summary["module"])
            self.modules[module] = summary
            self.relpath_of[module] = relpath
        self._method_index: Dict[str, List[str]] = {}
        self._class_index: Dict[str, List[str]] = {}
        for module in sorted(self.modules):
            classes = self.modules[module].get("classes", {})
            for cname in sorted(classes):
                self._class_index.setdefault(cname, []).append(module)
                for method in classes[cname]["methods"]:
                    self._method_index.setdefault(method, []).append(
                        f"{module}.{cname}"
                    )
        self._edges: Optional[Dict[str, List[Tuple[int, int, str]]]] = None

    # -- symbol resolution -------------------------------------------------

    def resolve(self, dotted: str, _depth: int = 0):
        """Resolve a canonical dotted path to ``(kind, fid)``.

        ``kind`` is ``"func"``/``"class"``/``"module"``/``"const"``;
        ``fid`` is ``module[.Class].name``.  Returns ``None`` for
        anything outside the analyzed project (stdlib, third-party).
        Re-exports are chased through package ``__init__`` import maps.
        """
        if _depth > 10 or not dotted:
            return None
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                rest = parts[i:]
                if not rest:
                    return ("module", module)
                return self._resolve_member(module, rest, _depth)
        return None

    def _resolve_member(self, module: str, rest: List[str], depth: int):
        summary = self.modules[module]
        head, tail = rest[0], rest[1:]
        functions = summary.get("functions", {})
        classes = summary.get("classes", {})
        if not tail:
            if head in functions and functions[head]["class"] is None:
                return ("func", f"{module}.{head}")
            if head in classes:
                return ("class", f"{module}.{head}")
            if head in summary.get("constants", {}):
                return ("const", f"{module}.{head}")
        elif len(tail) == 1 and head in classes:
            if tail[0] in classes[head]["methods"]:
                return ("func", f"{module}.{head}.{tail[0]}")
            return None
        imports = summary.get("imports", {})
        if head in imports:
            target = ".".join([imports[head]] + tail)
            return self.resolve(target, depth + 1)
        if not tail and head in summary.get("defs", []):
            return ("const", f"{module}.{head}")
        return None

    def class_summary(self, class_fid: str) -> Optional[Dict[str, object]]:
        module, _, cname = class_fid.rpartition(".")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.get("classes", {}).get(cname)

    def _method_on(self, class_fid: str, method: str,
                   _depth: int = 0) -> Optional[str]:
        """``module.Class.method`` if the class (or a base) defines it."""
        if _depth > 3:
            return None
        cls = self.class_summary(class_fid)
        if cls is None:
            return None
        if method in cls["methods"]:
            return f"{class_fid}.{method}"
        for base in cls.get("bases", []):
            for base_fid in self._classes_named(base):
                found = self._method_on(base_fid, method, _depth + 1)
                if found:
                    return found
        return None

    def _classes_named(self, name: str) -> List[str]:
        return [f"{m}.{name}" for m in self._class_index.get(name, [])]

    def _unique_method(self, method: str) -> Optional[str]:
        if method in _AMBIGUOUS_METHOD_NAMES:
            return None
        owners = self._method_index.get(method, [])
        if len(owners) == 1:
            return f"{owners[0]}.{method}"
        return None

    def _constructor_target(self, class_fid: str) -> str:
        """Edge target for ``Cls(...)``: ``__init__`` if defined, else
        the class node itself (still a graph node so taint in any method
        does not leak through bare construction)."""
        init = self._method_on(class_fid, "__init__")
        return init if init else class_fid

    # -- call graph --------------------------------------------------------

    def iter_functions(self) -> Iterator[Tuple[str, str, Dict[str, object]]]:
        """Yield ``(fid, module, function-summary)`` sorted by fid."""
        for module in sorted(self.modules):
            functions = self.modules[module].get("functions", {})
            for qual in sorted(functions):
                yield f"{module}.{qual}", module, functions[qual]

    def edges(self) -> Dict[str, List[Tuple[int, int, str]]]:
        """``caller fid -> sorted [(line, col, callee fid)]``."""
        if self._edges is not None:
            return self._edges
        out: Dict[str, List[Tuple[int, int, str]]] = {}
        for fid, module, func in self.iter_functions():
            qual = fid[len(module) + 1:]
            sites: List[Tuple[int, int, str]] = []
            for call in func.get("calls", []):
                line, col, kind = call[0], call[1], call[2]
                target = self._resolve_call(module, qual, func, kind,
                                            call[3:])
                if target is not None:
                    sites.append((line, col, target))
            out[fid] = sorted(set(sites))
        self._edges = out
        return out

    def _resolve_call(self, module, qual, func, kind, args) -> Optional[str]:
        summary = self.modules[module]
        if kind == "name":
            (name,) = args
            functions = summary.get("functions", {})
            nested = f"{qual}.<locals>.{name}"
            if nested in functions:
                return f"{module}.{nested}"
            if name in functions and functions[name]["class"] is None:
                return f"{module}.{name}"
            if name in summary.get("classes", {}):
                return self._constructor_target(f"{module}.{name}")
            resolved = self.resolve(f"{module}.{name}")
            if resolved is None and name in summary.get("imports", {}):
                resolved = self.resolve(summary["imports"][name])
            if resolved and resolved[0] == "func":
                return resolved[1]
            if resolved and resolved[0] == "class":
                return self._constructor_target(resolved[1])
            return None
        if kind == "dotted":
            (dotted,) = args
            first = dotted.split(".")[0]
            if first in summary.get("classes", {}):
                resolved = self._resolve_member(
                    module, dotted.split("."), 0
                )
            else:
                resolved = self.resolve(f"{module}.{dotted}")
                if resolved is None:
                    resolved = self.resolve(dotted)
            if resolved and resolved[0] == "func":
                return resolved[1]
            if resolved and resolved[0] == "class":
                return self._constructor_target(resolved[1])
            return None
        if kind == "self":
            (method,) = args
            cname = func.get("class")
            if cname is None:
                return None
            return self._method_on(f"{module}.{cname}", method)
        if kind == "attr":
            receiver, method = args
            typename = func.get("locals", {}).get(receiver)
            if typename:
                for class_fid in self._classes_named(typename):
                    found = self._method_on(class_fid, method)
                    if found:
                        return found
                return None
            return self._unique_method(method)
        return None

    # -- suppression lookup ------------------------------------------------

    def suppression_for(
        self, rule_id: str, relpath: str, line: int
    ) -> Optional[Suppression]:
        """Mirror of the per-file suppression resolution, driven by the
        tables captured in the module summary."""
        summary = None
        for module, rel in self.relpath_of.items():
            if rel == relpath:
                summary = self.modules[module]
                break
        if summary is None:
            return None
        tables = summary.get("suppressions", {})
        by_line = tables.get("by_line", {})
        comment_only = set(tables.get("comment_only", []))

        def covering(candidate: int) -> Optional[Suppression]:
            entry = by_line.get(str(candidate))
            if entry and ("*" in entry["rules"] or rule_id in entry["rules"]):
                return Suppression(
                    rules=tuple(entry["rules"]), reason=entry["reason"],
                    line=candidate, file_level=False,
                )
            return None

        supp = covering(line)
        if supp:
            return supp
        above = line - 1
        while above in comment_only:
            supp = covering(above)
            if supp:
                return supp
            above -= 1
        for entry in tables.get("file_level", []):
            if "*" in entry["rules"] or rule_id in entry["rules"]:
                return Suppression(
                    rules=tuple(entry["rules"]), reason=entry["reason"],
                    line=0, file_level=True,
                )
        return None

    # -- misc shared helpers ----------------------------------------------

    def fid_location(self, fid: str) -> Tuple[str, int]:
        """``(relpath, def line)`` for a function/class graph node."""
        for module in self._module_prefixes(fid):
            summary = self.modules[module]
            rest = fid[len(module) + 1:]
            func = summary.get("functions", {}).get(rest)
            if func is not None:
                return self.relpath_of[module], int(func["line"])
            cls = summary.get("classes", {}).get(rest)
            if cls is not None:
                return self.relpath_of[module], int(cls["line"])
        return fid, 1

    def _module_prefixes(self, fid: str) -> List[str]:
        parts = fid.split(".")
        return [
            ".".join(parts[:i]) for i in range(len(parts) - 1, 0, -1)
            if ".".join(parts[:i]) in self.modules
        ]

    def module_of_fid(self, fid: str) -> Optional[str]:
        prefixes = self._module_prefixes(fid)
        return prefixes[0] if prefixes else None


def _in_ordered_dirs(relpath: str) -> bool:
    posix = "/" + relpath.replace("\\", "/")
    return any(f"/{name}/" in posix for name in ORDERED_OUTPUT_DIRS)


# -- taint propagation (shared by the two transitive rules) -------------------

_TAINT_RULES = {
    "wall": ("transitive-wall-clock", "no-wall-clock", "wall-clock read"),
    "rng": ("transitive-unseeded-rng", "seeded-rng-only",
            "unseeded/global RNG use"),
}


def _taint_findings(project: Project, kind: str) -> Iterator[ProgramRawFinding]:
    rule_id, per_file_rule, noun = _TAINT_RULES[kind]

    # 1. Roots: functions with an unsanctioned direct source.  A source
    # already suppressed in place (for the per-file or the transitive
    # rule) is sanctioned — the author vouched for it — and does not
    # propagate.
    tainted: Dict[str, Tuple[WitnessHop, ...]] = {}
    for fid, module, func in project.iter_functions():
        relpath = project.relpath_of[module]
        for line, canon in sorted(func.get("taint", {}).get(kind, [])):
            sanctioned = (
                project.suppression_for(per_file_rule, relpath, line)
                or project.suppression_for(rule_id, relpath, line)
            )
            if not sanctioned and fid not in tainted:
                tainted[fid] = ((relpath, int(line), f"{canon}()"),)

    # 2. Propagate up the reverse call graph, breadth-first so every
    # witness chain is shortest; sorted worklists keep it deterministic.
    edges = project.edges()
    reverse: Dict[str, List[Tuple[str, int, int]]] = {}
    for caller in sorted(edges):
        for line, col, callee in edges[caller]:
            reverse.setdefault(callee, []).append((caller, line, col))
    frontier = sorted(tainted)
    while frontier:
        discovered: Dict[str, Tuple[WitnessHop, ...]] = {}
        for callee in frontier:
            for caller, line, col in sorted(reverse.get(callee, [])):
                if caller in tainted or caller in discovered:
                    continue
                caller_module = project.module_of_fid(caller)
                if caller_module is None:
                    continue
                caller_rel = project.relpath_of[caller_module]
                if project.suppression_for(rule_id, caller_rel, line):
                    continue  # suppressed boundary: cascade stops here
                discovered[caller] = (
                    (caller_rel, int(line), callee),
                ) + tainted[callee]
        tainted.update(discovered)
        frontier = sorted(discovered)

    # 3. Report: call sites in ordered-output code whose callee is
    # tainted.  Directly tainted functions are the per-file rule's job;
    # this rule owns the cross-function (and cross-module) hops.
    for fid, module, func in project.iter_functions():
        relpath = project.relpath_of[module]
        if not _in_ordered_dirs(relpath):
            continue
        for line, col, callee in edges.get(fid, []):
            chain = tainted.get(callee)
            if chain is None:
                continue
            source = chain[-1][2]
            yield (
                relpath, line, col,
                f"{fid.rsplit('.', 1)[-1]}() calls {callee}(), which "
                f"reaches a {noun} ({source}) "
                f"{len(chain)} call(s) away; deterministic code must not "
                f"depend on it (see the witness chain)",
                ((relpath, line, callee),) + chain,
            )


@register_program(
    "transitive-wall-clock",
    "ordered-output code must not reach a wall-clock read through any "
    "call chain, even via helpers outside the simulator layers",
    scope_note="whole program; findings in sim/dram/cxl/core/memmgmt/"
               "genomics/experiments call sites",
)
def check_transitive_wall_clock(project: Project):
    """Taint-propagate wall-clock reads through the call graph."""
    return _taint_findings(project, "wall")


@register_program(
    "transitive-unseeded-rng",
    "ordered-output code must not reach unseeded/global RNG use through "
    "any call chain",
    scope_note="whole program; findings in sim/dram/cxl/core/memmgmt/"
               "genomics/experiments call sites",
)
def check_transitive_unseeded_rng(project: Project):
    """Taint-propagate unseeded-RNG use through the call graph."""
    return _taint_findings(project, "rng")


# -- sweep-job-picklable -------------------------------------------------------

@register_program(
    "sweep-job-picklable",
    "callables handed to SweepJob/pipeline must be module-level defs: "
    "pool workers unpickle them by reference",
    scope_note="whole program; every SweepJob/pipeline construction site",
)
def check_sweep_job_picklable(project: Project):
    """Flag lambdas/closures/local defs flowing into sweep-job ctors."""
    for module in sorted(project.modules):
        summary = project.modules[module]
        relpath = project.relpath_of[module]
        for site in summary.get("job_sites", []):
            line, col, ctor, owner_qual, desc = site
            yield from _judge_callable(
                project, relpath, int(line), int(col), ctor, desc
            )


def _judge_callable(project, relpath, line, col, ctor, desc):
    kind = desc[0]
    if kind == "partial":
        yield from _judge_callable(project, relpath, line, col, ctor, desc[1])
        return
    if kind == "lambda":
        yield (
            relpath, line, col,
            f"lambda passed to {ctor}(): pool workers unpickle the "
            "callable by reference, and lambdas have none — use a "
            "module-level def",
            ((relpath, int(desc[1]), "<lambda>"),),
        )
    elif kind == "local":
        yield (
            relpath, line, col,
            f"locally defined function {desc[1]!r} passed to {ctor}(): "
            "nested defs (closures) cannot be pickled by reference — "
            "hoist it to module level",
            ((relpath, int(desc[2]), desc[1]),),
        )
    # "name"/"dotted"/"opaque": module-level defs, imported callables,
    # and parameters we cannot prove unsafe — under-approximate.


# -- schema-id-registry --------------------------------------------------------

def _resolve_schema_desc(project, module, class_name, desc, _depth=0):
    """Resolve a schema-value descriptor to a list of typed items:
    ``("id", value)`` for a concrete identifier, ``("family", key)`` for
    a ``SCHEMAS[key]`` reference, ``("any",)`` for a registry-module
    constant (e.g. ``REGISTERED_SCHEMA_IDS``).  Returns ``None`` when
    the value cannot be statically resolved."""
    if _depth > 8 or not isinstance(desc, list) or not desc:
        return None
    kind = desc[0]
    if kind == "lit":
        return [("id", desc[1])]
    if kind == "sub":
        return [("family", desc[1])]
    if kind == "tuple":
        out = []
        for element in desc[1]:
            resolved = _resolve_schema_desc(
                project, module, class_name, element, _depth + 1
            )
            if resolved is None:
                return None
            out.extend(resolved)
        return out
    if kind == "selfattr":
        if class_name is None:
            return None
        summary = project.modules.get(module, {})
        cls = summary.get("classes", {}).get(class_name)
        if cls and cls.get("schema_default") and desc[1] == "schema":
            return _resolve_schema_desc(
                project, module, class_name, cls["schema_default"],
                _depth + 1,
            )
        return None
    if kind == "ref":
        dotted = desc[1]
        summary = project.modules.get(module, {})
        first, _, rest = dotted.partition(".")
        if not rest and first in summary.get("constants", {}):
            return _resolve_schema_desc(
                project, module, class_name,
                summary["constants"][first], _depth + 1,
            )
        imports = summary.get("imports", {})
        if first in imports:
            dotted = f"{imports[first]}.{rest}" if rest else imports[first]
        resolved = project.resolve(dotted)
        if resolved and resolved[0] == "const":
            target_module, _, name = resolved[1].rpartition(".")
            target = project.modules.get(target_module, {})
            if name in target.get("constants", {}):
                return _resolve_schema_desc(
                    project, target_module, None,
                    target["constants"][name], _depth + 1,
                )
            # Constant defined in the registry module itself
            # (e.g. REGISTERED_SCHEMA_IDS) — registry-backed by design.
            if target_module.rsplit(".", 1)[-1] == "schemas":
                return [("any",)]
        return None
    return None


@register_program(
    "schema-id-registry",
    "every repro-*/N schema id at an emit/parse site must resolve to "
    "the central SCHEMAS registry",
    scope_note="whole program; active once a SCHEMAS registry module "
               "exists in the linted tree",
)
def check_schema_id_registry(project: Project):
    """Flag schema-id sites that bypass or miss the SCHEMAS registry."""
    registry: Dict[str, str] = {}
    legacy: set = set()
    registry_module = None
    for module in sorted(project.modules):
        summary = project.modules[module]
        if summary.get("schema_registry") is not None:
            registry.update(summary["schema_registry"])
            registry_module = module
        legacy.update(summary.get("legacy_schema_ids", []))
    if registry_module is None:
        return  # no registry in this tree (fixture packages) — nothing to check
    registered = set(registry.values()) | legacy
    current = set(registry.values())

    for module in sorted(project.modules):
        if module.rsplit(".", 1)[-1] == "schemas":
            continue  # the defining site itself
        summary = project.modules[module]
        relpath = project.relpath_of[module]
        reg_rel = project.relpath_of[registry_module]
        witness: Tuple[WitnessHop, ...] = ((reg_rel, 1, "SCHEMAS"),)
        for line, col, value in summary.get("schema_literals", []):
            if value not in registered:
                yield (
                    relpath, int(line), int(col),
                    f"schema id {value!r} is not in the SCHEMAS registry "
                    f"({registry_module}); register it (or fix the typo) "
                    "before emitting/parsing it",
                    witness,
                )
        for line, col, site_kind, desc in summary.get("schema_sites", []):
            owner_class = _enclosing_class(summary, int(line))
            resolved = _resolve_schema_desc(
                project, module, owner_class, desc
            )
            if resolved is None:
                yield (
                    relpath, int(line), int(col),
                    "schema id at this "
                    + ("emit" if site_kind == "emit" else "parse")
                    + " site does not statically resolve to the SCHEMAS "
                    "registry; use a registry-backed constant",
                    witness,
                )
                continue
            allowed = registered if site_kind == "check" else current
            for item in resolved:
                if item[0] == "any":
                    continue
                if item[0] == "family":
                    if item[1] not in registry:
                        yield (
                            relpath, int(line), int(col),
                            f"SCHEMAS[{item[1]!r}] names an unregistered "
                            f"schema family; known: {sorted(registry)}",
                            witness,
                        )
                    continue
                value = item[1]
                if value not in allowed:
                    hint = (" (superseded id: parse sites may accept it, "
                            "emit sites must not)"
                            if value in registered else "")
                    yield (
                        relpath, int(line), int(col),
                        f"schema id {value!r} is not registered for "
                        f"{site_kind} sites{hint}",
                        witness,
                    )


def _enclosing_class(summary, line: int) -> Optional[str]:
    """Best-effort: the class whose method spans ``line`` (by def line)."""
    best: Optional[Tuple[int, str]] = None
    for qual in sorted(summary.get("functions", {})):
        func = summary["functions"][qual]
        cname = func.get("class")
        if cname is None:
            continue
        def_line = int(func["line"])
        if def_line <= line and (best is None or def_line > best[0]):
            best = (def_line, cname)
    return best[1] if best else None


# -- export-doc-sync -----------------------------------------------------------

_BACKTICK_RE = re.compile(r"`([^`]+)`")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)*")
_SECTION_RE = re.compile(r"^#{2,3}\s+`(repro(?:\.[a-z_0-9]+)*)`")


def _doc_tokens(text: str):
    """Yield ``(line_no, section, token)`` for first-column table tokens."""
    section = None
    for line_no, line in enumerate(text.splitlines(), start=1):
        match = _SECTION_RE.match(line)
        if match:
            section = match.group(1)
            continue
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if not cells or set(cells[0]) <= {"-", ":", " "}:
            continue
        for raw in _BACKTICK_RE.findall(cells[0]):
            token = raw.split("(")[0].strip().rstrip(".")
            if not token or not _IDENT_RE.fullmatch(token):
                continue
            yield line_no, section, token


@register_program(
    "export-doc-sync",
    "package __init__ exports must be documented in docs/API.md, and "
    "documented names must exist in the code",
    scope_note="whole program; needs docs/API.md next to the lint root",
)
def check_export_doc_sync(project: Project):
    """Two-way sync between ``__all__`` exports and docs/API.md."""
    if project.api_doc is None:
        return
    doc_text = Path(project.api_doc).read_text(encoding="utf-8")
    doc_rel = Path(project.api_doc).name

    # Forward: every exported name must appear inside some backtick span.
    documented_words = set()
    for span in _BACKTICK_RE.findall(doc_text):
        for ident in _IDENT_RE.findall(span):
            documented_words.add(ident)
            # `core.hwmodel.PE_HARDWARE` also documents `PE_HARDWARE`.
            documented_words.update(ident.split("."))
    for module in sorted(project.modules):
        summary = project.modules[module]
        if not summary.get("is_init"):
            continue
        exports = summary.get("exports")
        if not exports:
            continue
        relpath = project.relpath_of[module]
        line = int(summary.get("exports_line", 1))
        for name in sorted(set(exports)):
            if name not in documented_words:
                yield (
                    relpath, line, 0,
                    f"{module}.{name} is exported via __all__ but never "
                    f"mentioned in docs/API.md — document it (or stop "
                    "exporting it)",
                    ((f"docs/{doc_rel}", 1, name),),
                )

    # Reverse: first-column table tokens must exist in the code.
    name_owners: Dict[str, set] = {}
    method_owners: Dict[str, set] = {}
    for module in sorted(project.modules):
        summary = project.modules[module]
        for name in summary.get("defs", []):
            name_owners.setdefault(name, set()).add(module)
        for cname in sorted(summary.get("classes", {})):
            cls = summary["classes"][cname]
            for member in list(cls["methods"]) + list(cls.get("attrs", [])):
                method_owners.setdefault(member, set()).add(
                    f"{module}.{cname}"
                )
    for line_no, section, token in _doc_tokens(doc_text):
        if _doc_token_exists(project, section, token,
                             name_owners, method_owners):
            continue
        if section is None or section not in project.modules:
            continue  # heading names no analyzed package — nothing to anchor
        relpath = project.relpath_of[section]
        yield (
            relpath, 1, 0,
            f"docs/API.md line {line_no} documents {token!r} under "
            f"`{section}`, but no such name exists in the analyzed "
            "code — fix the doc or restore the name",
            ((f"docs/{doc_rel}", line_no, token),),
        )


def _doc_token_exists(project, section, token, name_owners, method_owners):
    candidates = [token]
    if section:
        candidates.append(f"{section}.{token}")
    if not token.startswith("repro."):
        candidates.append(f"repro.{token}")
    for candidate in candidates:
        if candidate in project.modules:
            return True
        if project.resolve(candidate) is not None:
            return True
    head = token.split(".")[0]
    tail = token.split(".")[-1]
    scope = section or "repro"
    for owner in name_owners.get(head, ()):  # defined anywhere in section
        if owner == scope or owner.startswith(scope + "."):
            return True
    for owner in method_owners.get(tail, ()):  # method/attr in section
        if owner.startswith(scope + "."):
            return True
    if "." in token:
        # Qualified like Class.method: accept if the class exists in the
        # section and the member exists on any class of that name.
        first, _, member = token.partition(".")
        for owner in name_owners.get(first, ()):
            if owner.startswith(scope):
                if member in method_owners or member in name_owners:
                    return True
    return False


# -- entry point ---------------------------------------------------------------

def analyze(
    summaries: Sequence[Tuple[str, Dict[str, object]]],
    rules: Sequence[ProgramRule],
    api_doc: Optional[Path] = None,
) -> List[Finding]:
    """Run the selected whole-program rules over the module summaries.

    Returns :class:`Finding` objects (suppression already resolved via
    the per-file ``# repro: allow[...]`` tables captured in each
    summary), sorted by the standard finding key.
    """
    project = Project(summaries, api_doc=api_doc)
    findings: List[Finding] = []
    for rule in sorted(rules, key=lambda r: r.id):
        for relpath, line, col, message, paths in rule.check(project):
            supp = project.suppression_for(rule.id, relpath, line)
            findings.append(Finding(
                rule.id, relpath, line, col, message,
                suppressed=supp is not None,
                reason=supp.reason if supp is not None else "",
                paths=tuple(tuple(hop) for hop in paths),
            ))
    findings.sort(key=Finding.sort_key)
    return findings
