"""SARIF 2.1.0 export of a lint report, for CI inline annotations.

The canonical machine-readable artifact stays the ``repro-lint/2`` JSON
(:meth:`repro.analysis.LintReport.to_dict`); this module renders the
same findings in the minimal SARIF subset that code-review UIs ingest
(``tool.driver.rules``, ``results`` with a ``physicalLocation``, and the
cross-file witness chain as ``relatedLocations``).  Output is fully
deterministic: rules and results are emitted in the report's sorted
order and no timestamps are recorded.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.framework import (
    PROGRAM_RULES,
    RULES,
    Finding,
    LintReport,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    meta = RULES.get(rule_id) or PROGRAM_RULES.get(rule_id)
    descriptor: Dict[str, object] = {"id": rule_id}
    if meta is not None:
        descriptor["shortDescription"] = {"text": meta.summary}
        descriptor["properties"] = {"scope": meta.scope_note}
    return descriptor


def _location(path: str, line: int, col: int) -> Dict[str, object]:
    region: Dict[str, object] = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": region,
        },
    }


def _result(finding: Finding) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "note" if finding.suppressed else "error",
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    if finding.paths:
        related: List[Dict[str, object]] = []
        for path, line, symbol in finding.paths:
            hop = _location(path, line, 0)
            hop["message"] = {"text": symbol}
            related.append(hop)
        result["relatedLocations"] = related
    if finding.suppressed:
        result["suppressions"] = [{
            "kind": "inSource",
            "justification": finding.reason,
        }]
    return result


def to_sarif(report: LintReport) -> Dict[str, object]:
    """Render a :class:`LintReport` as a SARIF 2.1.0 log dict."""
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "docs/ANALYSIS.md",
                    "rules": [
                        _rule_descriptor(rule_id)
                        for rule_id in report.rules_run
                    ],
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": [_result(f) for f in report.findings],
        }],
    }
