"""The built-in simulator-specific lint rules.

Each rule targets a bug class that has historically broken deterministic
cycle-level simulators (see docs/ANALYSIS.md for rationale and worked
examples per rule):

========================== ====================================================
``no-wall-clock``          wall-clock reads inside simulation code
``seeded-rng-only``        RNGs constructed without an explicit seed
``no-set-iteration-order`` hash-order-dependent set iteration in sim layers
``int-cycle-arithmetic``   true division / ``float()`` on cycle counters
``nonneg-schedule-delay``  negative or un-guarded delays to ``Engine.schedule``
``trace-category-registry``non-literal / unknown trace categories at
                           instrument sites
``telemetry-event-registry`` non-literal / unknown ledger event names at
                           emit sites
``no-dict-mutation-in-iteration`` resizing a mapping while iterating it
``no-mutable-default-arg`` shared mutable default arguments
``no-id-order``            ``id()`` (address-dependent) in ordering-sensitive
                           simulator layers
========================== ====================================================

Rules yield ``(line, col, message)``; scoping, suppressions, and reports
are the framework's job (:mod:`repro.analysis.framework`).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.framework import (
    Module,
    RawFinding,
    excluding,
    in_dirs,
    register,
)
from repro.obs.recorder import TRACE_CATEGORIES
from repro.obs.telemetry.ledger import LEDGER_EVENTS

#: The event-ordering-sensitive simulator layers: everything that runs
#: inside (or schedules onto) the discrete-event engine.
SIM_DIRS = ("sim", "dram", "cxl", "core", "memmgmt")

#: Layers whose *outputs* feed fingerprinted results even though they run
#: host-side: the genomics index structures (shared across runs by the
#: cross-run cache, so any iteration-order dependence would leak between
#: sweep points) and the experiment/scenario layer (job keys and
#: collection order define the bench fingerprint traversal).  The
#: ordering rules cover these in addition to :data:`SIM_DIRS`.
ORDERED_OUTPUT_DIRS = SIM_DIRS + ("genomics", "experiments")


# -- shared AST helpers --------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _imports(tree: ast.Module) -> Dict[str, str]:
    """Map each locally bound import alias to its canonical dotted origin.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter`` -> ``{"perf_counter":
    "time.perf_counter"}``.  Relative imports are repo-internal and
    ignored on purpose.
    """
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    out[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def _canonical(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a call target through the file's imports.

    Returns ``None`` unless the chain's first segment is an imported
    name, so a local variable that happens to be called ``time`` never
    false-positives.
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    first, _, rest = dotted.partition(".")
    origin = imports.get(first)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin


# -- no-wall-clock -------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register(
    "no-wall-clock",
    "simulation code must not read the wall clock; results depend only on "
    "simulated time (Engine.now)",
    scope=excluding("perf/", "repro/__main__.py", "repro/obs/export.py",
                    "repro/obs/telemetry/"),
    scope_note="src/repro except repro/perf, repro/__main__.py, "
               "repro/obs/export.py, repro/obs/telemetry/ (fleet "
               "telemetry measures host wall time by design and never "
               "touches simulated state)",
)
def check_wall_clock(module: Module) -> Iterator[RawFinding]:
    """Flag wall-clock reads (time.*, datetime.now) in simulation code."""
    imports = _imports(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        canon = _canonical(node.func, imports)
        if canon in _WALL_CLOCK_CALLS:
            yield (
                node.lineno, node.col_offset,
                f"wall-clock read {canon}() in simulator code: timing must "
                "come from the engine clock, not the host",
            )


# -- seeded-rng-only -----------------------------------------------------------

_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
})
_GLOBAL_NUMPY_FUNCS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "binomial",
})


@register(
    "seeded-rng-only",
    "RNGs must be constructed with an explicit seed; interpreter-global "
    "RNG state is banned",
)
def check_seeded_rng(module: Module) -> Iterator[RawFinding]:
    """Flag unseeded RNG construction and interpreter-global RNG use."""
    imports = _imports(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        canon = _canonical(node.func, imports)
        if canon is None:
            continue
        if canon == "random.Random" and not node.args and not node.keywords:
            yield (
                node.lineno, node.col_offset,
                "random.Random() without an explicit seed: identical runs "
                "would diverge",
            )
        elif (canon == "numpy.random.default_rng"
              and not node.args and not node.keywords):
            yield (
                node.lineno, node.col_offset,
                "np.random.default_rng() without an explicit seed: "
                "identical runs would diverge",
            )
        elif canon.startswith("random."):
            func = canon.split(".", 1)[1]
            if "." not in func and func in _GLOBAL_RANDOM_FUNCS:
                yield (
                    node.lineno, node.col_offset,
                    f"random.{func}() uses the interpreter-global RNG; use "
                    "a local random.Random(seed) instead",
                )
        elif canon.startswith("numpy.random."):
            func = canon.rsplit(".", 1)[1]
            if func in _GLOBAL_NUMPY_FUNCS:
                yield (
                    node.lineno, node.col_offset,
                    f"np.random.{func}() uses numpy's global RNG; use "
                    "np.random.default_rng(seed) instead",
                )


# -- no-set-iteration-order ----------------------------------------------------

_ITERATING_BUILTINS = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed", "next",
})


class _SetOrderScope(ast.NodeVisitor):
    """Per-scope tracker: which local names currently hold a set, and
    where a set expression is iterated without ``sorted(...)``."""

    def __init__(self, emit) -> None:
        self.emit = emit
        self.env: set = set()

    # -- set-expression classification ------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.env
        return False

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        name = _terminal_name(target)
        return name in ("Set", "FrozenSet", "set", "frozenset", "MutableSet")

    def _describe(self, node: ast.AST) -> str:
        name = _terminal_name(node)
        return f"set {name!r}" if name else "a set expression"

    def _flag(self, node: ast.AST) -> None:
        self.emit((
            node.lineno, node.col_offset,
            f"iterating {self._describe(node)} has hash-seed-dependent "
            "order; wrap it in sorted(...) before it can influence "
            "simulation or output order",
        ))

    # -- scope boundaries ---------------------------------------------------

    def _enter_subscope(self, body) -> None:
        sub = _SetOrderScope(self.emit)
        for stmt in body:
            sub.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        self._enter_subscope(node.body)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_subscope(node.body)

    # -- environment updates ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.env.add(target.id)
                else:
                    self.env.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        if isinstance(node.target, ast.Name):
            if self._annotation_is_set(node.annotation) or (
                node.value is not None and self._is_set_expr(node.value)
            ):
                self.env.add(node.target.id)
            else:
                self.env.discard(node.target.id)

    # -- iteration sites ----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter)
        else:
            self.visit(node.iter)
        if isinstance(node.target, ast.Name):
            self.env.discard(node.target.id)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def _check_generators(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag(gen.iter)
            else:
                self.visit(gen.iter)
            for cond in gen.ifs:
                self.visit(cond)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_generators(node)
        self.visit(node.elt)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_generators(node)
        self.visit(node.elt)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # Dict insertion order leaks the iteration order, so building a
        # dict from a set is just as order-dependent as a list.
        self._check_generators(node)
        self.visit(node.key)
        self.visit(node.value)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a *set* from a set is order-independent: do not flag
        # the generators, but keep walking for nested iteration sites.
        for gen in node.generators:
            self.visit(gen.iter)
            for cond in gen.ifs:
                self.visit(cond)
        self.visit(node.elt)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ITERATING_BUILTINS
                and node.args and self._is_set_expr(node.args[0])):
            self._flag(node.args[0])
            for arg in node.args[1:]:
                self.visit(arg)
        else:
            self.generic_visit(node)


@register(
    "no-set-iteration-order",
    "iterating a set in the simulator layers is hash-seed-dependent; "
    "wrap in sorted(...)",
    scope=in_dirs(*ORDERED_OUTPUT_DIRS),
    scope_note="sim/, dram/, cxl/, core/, memmgmt/, genomics/, "
               "experiments/",
)
def check_set_iteration(module: Module) -> List[RawFinding]:
    """Flag iteration over set-typed values in order-sensitive layers."""
    out: List[RawFinding] = []
    scope = _SetOrderScope(out.append)
    for stmt in module.tree.body:
        scope.visit(stmt)
    return out


# -- int-cycle-arithmetic ------------------------------------------------------

_CYCLE_NAME = re.compile(r"(?:^|_)(?:cycles?|now|ts)$")


def _cycle_operand(node: ast.AST) -> Optional[str]:
    """A cycle-suffixed identifier inside an arithmetic expression, if
    any — recurses through +/-/*/,// and unary ops so ``(a_cycles +
    b_cycles) / 2`` is caught, not just ``a_cycles / 2``."""
    name = _terminal_name(node)
    if name is not None:
        return name if _CYCLE_NAME.search(name) else None
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
    ):
        return _cycle_operand(node.left) or _cycle_operand(node.right)
    if isinstance(node, ast.UnaryOp):
        return _cycle_operand(node.operand)
    return None


@register(
    "int-cycle-arithmetic",
    "cycle counters are integers: use // not /, and never float(); "
    "float derates belong in reporting code",
    scope=in_dirs(*SIM_DIRS),
    scope_note="sim/, dram/, cxl/, core/, memmgmt/",
)
def check_int_cycle_arithmetic(module: Module) -> Iterator[RawFinding]:
    """Flag true division / float() on cycle-valued names in timing code."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            name = _cycle_operand(node.left) or _cycle_operand(node.right)
            if name is not None:
                yield (
                    node.lineno, node.col_offset,
                    f"true division on cycle-valued {name!r}: use // "
                    "for cycle arithmetic (float results drift; only "
                    "derived reporting metrics may divide, with a "
                    "suppression explaining so)",
                )
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Name)
              and node.func.id == "float" and node.args):
            name = _terminal_name(node.args[0])
            if name is not None and _CYCLE_NAME.search(name):
                yield (
                    node.lineno, node.col_offset,
                    f"float() applied to cycle-valued {name!r}: cycle "
                    "counters must stay integral inside the simulator",
                )


# -- nonneg-schedule-delay -----------------------------------------------------

#: Engine methods taking a *relative* delay as their first argument.
#: ``schedule_cancellable`` (handle-returning) and ``reschedule``
#: (handle-moving) share ``schedule``'s delay semantics, so the rule
#: covers all three; ``schedule_at`` takes an absolute time and has its
#: own in-engine guard.
_DELAY_METHODS = frozenset({"schedule", "schedule_cancellable", "reschedule"})


@register(
    "nonneg-schedule-delay",
    "delays passed to Engine.schedule/schedule_cancellable/reschedule "
    "must be provably non-negative (no negative literals, no bare "
    "subtraction)",
)
def check_schedule_delay(module: Module) -> Iterator[RawFinding]:
    """Flag negative or un-guarded-subtraction delays passed to schedule()."""
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DELAY_METHODS and node.args):
            continue
        delay = node.args[0]
        if node.func.attr == "reschedule":
            # reschedule(handle, delay): the delay is the second argument.
            if len(node.args) < 2:
                continue
            delay = node.args[1]
        if (isinstance(delay, ast.Constant)
                and isinstance(delay.value, (int, float))
                and delay.value < 0):
            yield (
                node.lineno, node.col_offset,
                f"literal negative delay {delay.value!r} passed to "
                "schedule(); the engine cannot travel back in time",
            )
        elif isinstance(delay, ast.UnaryOp) and isinstance(delay.op, ast.USub):
            yield (
                node.lineno, node.col_offset,
                "negated delay passed to schedule(); delays must be "
                "non-negative",
            )
        elif isinstance(delay, ast.BinOp) and isinstance(delay.op, ast.Sub):
            yield (
                node.lineno, node.col_offset,
                "un-guarded subtraction passed to schedule(); wrap in "
                "max(0, ...) or guard explicitly so the delay cannot go "
                "negative",
            )


# -- trace-category-registry ---------------------------------------------------

_RECORDER_METHODS = frozenset({
    "complete", "instant", "counter", "async_begin", "async_end",
})


def _looks_like_recorder(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and ("tracer" in name or "recorder" in name)


@register(
    "trace-category-registry",
    "trace categories at instrument sites must be string literals from "
    "repro.obs.TRACE_CATEGORIES",
)
def check_trace_categories(module: Module) -> Iterator[RawFinding]:
    """Require literal, registry-known categories at instrument sites."""
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORDER_METHODS
                and _looks_like_recorder(node.func.value)
                and node.args):
            continue
        cat = node.args[0]
        if not (isinstance(cat, ast.Constant) and isinstance(cat.value, str)):
            yield (
                node.lineno, node.col_offset,
                f"trace category passed to {node.func.attr}() must be a "
                "string literal so the profiler's stitcher can rely on the "
                "registry",
            )
        elif cat.value not in TRACE_CATEGORIES:
            yield (
                node.lineno, node.col_offset,
                f"unknown trace category {cat.value!r}; known categories: "
                f"{', '.join(TRACE_CATEGORIES)} (extend "
                "repro.obs.recorder.TRACE_CATEGORIES first)",
            )


# -- telemetry-event-registry --------------------------------------------------

def _looks_like_ledger(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and ("ledger" in name or "writer" in name)


@register(
    "telemetry-event-registry",
    "ledger event names at emit sites must be string literals from "
    "repro.obs.telemetry.LEDGER_EVENTS",
)
def check_ledger_events(module: Module) -> Iterator[RawFinding]:
    """Require literal, registry-known event names at ledger emit sites.

    The run ledger's value is that any campaign is reconstructable after
    the fact, which only holds if the event vocabulary is closed: a
    computed or unregistered name at an ``emit()`` site would produce
    lines ``read_ledger``/``status`` cannot classify.  Same discipline as
    ``trace-category-registry``, applied to the fleet-telemetry layer.
    """
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and _looks_like_ledger(node.func.value)
                and node.args):
            continue
        event = node.args[0]
        if not (isinstance(event, ast.Constant)
                and isinstance(event.value, str)):
            yield (
                node.lineno, node.col_offset,
                "ledger event passed to emit() must be a string literal so "
                "the ledger's event vocabulary stays closed and "
                "machine-checkable",
            )
        elif event.value not in LEDGER_EVENTS:
            yield (
                node.lineno, node.col_offset,
                f"unknown ledger event {event.value!r}; registered events: "
                f"{', '.join(LEDGER_EVENTS)} (extend "
                "repro.obs.telemetry.ledger.LEDGER_EVENTS first)",
            )


# -- no-dict-mutation-in-iteration ---------------------------------------------

_CONTAINER_MUTATORS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault",
    "add", "discard", "remove",
})


@register(
    "no-dict-mutation-in-iteration",
    "do not resize a mapping/set while iterating it; collect changes "
    "first or iterate a copy",
)
def check_dict_mutation(module: Module) -> Iterator[RawFinding]:
    """Flag resizing a mapping/set while iterating that same container."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.For):
            continue
        container = node.iter
        if (isinstance(container, ast.Call)
                and isinstance(container.func, ast.Attribute)
                and container.func.attr in ("items", "keys", "values")
                and not container.args):
            container = container.func.value
        key = _dotted(container)
        if key is None:
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (isinstance(target, ast.Subscript)
                                and _dotted(target.value) == key):
                            yield (
                                sub.lineno, sub.col_offset,
                                f"assignment into {key!r} while iterating "
                                "it can resize the container mid-loop",
                            )
                elif isinstance(sub, ast.Delete):
                    for target in sub.targets:
                        if (isinstance(target, ast.Subscript)
                                and _dotted(target.value) == key):
                            yield (
                                sub.lineno, sub.col_offset,
                                f"del on {key!r} while iterating it",
                            )
                elif (isinstance(sub, ast.Call)
                      and isinstance(sub.func, ast.Attribute)
                      and sub.func.attr in _CONTAINER_MUTATORS
                      and _dotted(sub.func.value) == key):
                    yield (
                        sub.lineno, sub.col_offset,
                        f"{key}.{sub.func.attr}() while iterating {key!r}",
                    )


# -- no-mutable-default-arg ----------------------------------------------------

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
})


@register(
    "no-mutable-default-arg",
    "mutable default arguments are shared across calls (and across "
    "simulated systems); default to None and build inside",
)
def check_mutable_defaults(module: Module) -> Iterator[RawFinding]:
    """Flag mutable default arguments (one instance shared across calls)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_FACTORIES):
                mutable = True
            if mutable:
                yield (
                    default.lineno, default.col_offset,
                    "mutable default argument: one instance is shared by "
                    "every call; use None and construct in the body",
                )


# -- no-id-order ---------------------------------------------------------------

@register(
    "no-id-order",
    "id() is an interpreter address: it varies run-to-run and must never "
    "influence ordering in the simulator layers",
    scope=in_dirs(*ORDERED_OUTPUT_DIRS),
    scope_note="sim/, dram/, cxl/, core/, memmgmt/, genomics/, "
               "experiments/",
)
def check_id_order(module: Module) -> Iterator[RawFinding]:
    """Flag id() in the ordering-sensitive simulator layers."""
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id" and len(node.args) == 1):
            yield (
                node.lineno, node.col_offset,
                "id() is address-dependent and differs between runs; it "
                "may back identity-membership tables only (suppress with "
                "a justification), never ordering or iteration",
            )
