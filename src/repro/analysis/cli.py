"""``python -m repro lint``: run the simulator-aware static-analysis pass.

Usage::

    python -m repro lint                      # lint src/repro, exit 1 on findings
    python -m repro lint --json lint.json     # also write the machine report
    python -m repro lint --rule no-wall-clock # run a subset of rules
    python -m repro lint --list-rules         # what exists, with scopes
    python -m repro lint path/to/file.py dir/ # explicit targets

Exit status: 0 when no unsuppressed findings remain, 1 otherwise, 2 on
usage errors.  See docs/ANALYSIS.md for the rule catalogue and the
suppression syntax (``# repro: allow[rule-id] -- why``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.framework import RULES, lint_paths


def _print_rules() -> None:
    width = max(len(rule_id) for rule_id in RULES)
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        print(f"  {rule_id:<{width}}  {rule.summary}")
        print(f"  {'':<{width}}  scope: {rule.scope_note}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro lint``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Simulator-aware static analysis: determinism, "
                    "cycle-safety, and trace-discipline lints.",
    )
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: the in-tree repro package)")
    parser.add_argument("--json", dest="json_out", metavar="FILE",
                        default=None,
                        help="write the machine-readable report "
                             "(schema repro-lint/1) to FILE")
    parser.add_argument("--rule", dest="rules", action="append",
                        metavar="ID", default=None,
                        help="run only this rule (repeatable); "
                             "default: all rules")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    if args.rules:
        unknown = sorted(set(args.rules) - set(RULES))
        if unknown:
            parser.error(
                f"unknown rule ids {unknown}; known: {sorted(RULES)}"
            )

    targets = [Path(p) for p in args.paths] if args.paths else None
    if targets:
        missing = [str(p) for p in targets if not p.exists()]
        if missing:
            parser.error(f"no such file or directory: {missing}")

    report = lint_paths(targets, rules=args.rules)
    for finding in report.findings:
        if finding.suppressed:
            if args.show_suppressed:
                print(f"{finding.location}: suppressed[{finding.rule}]: "
                      f"{finding.reason}")
            continue
        print(f"{finding.location}: {finding.rule}: {finding.message}")

    if args.json_out:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        Path(args.json_out).write_text(payload + "\n", encoding="utf-8")

    active = report.active
    print(f"[lint] {report.files_scanned} files, "
          f"{len(report.rules_run)} rules: "
          f"{len(active)} finding(s), {len(report.suppressed)} suppressed")
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
