"""``python -m repro lint``: run the simulator-aware static-analysis pass.

Usage::

    python -m repro lint                      # per-file + whole-program rules
    python -m repro lint --json lint.json     # also write the machine report
    python -m repro lint --sarif lint.sarif   # SARIF 2.1.0 for CI annotations
    python -m repro lint --rule no-wall-clock # run a subset of rules
    python -m repro lint --changed            # per-file rules on touched files
    python -m repro lint --no-program         # per-file rules only
    python -m repro lint --no-cache           # ignore the warm-lint cache
    python -m repro lint --list-rules         # what exists, with scopes
    python -m repro lint path/to/file.py dir/ # explicit targets

Exit status: 0 when no unsuppressed findings remain, 1 otherwise, 2 on
usage errors.  See docs/ANALYSIS.md for the rule catalogue (per-file and
whole-program), the suppression syntax
(``# repro: allow[rule-id] -- why``), and the ``repro-lint/2`` report
schema with its cross-file witness chains.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.framework import (
    PROGRAM_RULES,
    RULES,
    default_root,
    lint_paths,
)


def _print_rules() -> None:
    catalogue = [(rule_id, RULES[rule_id].summary, RULES[rule_id].scope_note)
                 for rule_id in sorted(RULES)]
    catalogue += [
        (rule_id, PROGRAM_RULES[rule_id].summary,
         PROGRAM_RULES[rule_id].scope_note)
        for rule_id in sorted(PROGRAM_RULES)
    ]
    width = max(len(rule_id) for rule_id, _, _ in catalogue)
    for rule_id, summary, scope_note in catalogue:
        print(f"  {rule_id:<{width}}  {summary}")
        print(f"  {'':<{width}}  scope: {scope_note}")


def _changed_relpaths() -> Optional[List[str]]:
    """Repo relpaths (relative to src/) of git-modified python files."""
    src_dir = default_root().parent
    repo_root = src_dir.parent
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo_root), "diff", "--name-only", "HEAD"],
            capture_output=True, text=True, check=True, timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    changed: List[str] = []
    for name in proc.stdout.splitlines():
        name = name.strip()
        if not name.endswith(".py"):
            continue
        absolute = (repo_root / name).resolve()
        try:
            changed.append(absolute.relative_to(src_dir.resolve()).as_posix())
        except ValueError:
            continue  # outside src/ — not lintable by the default target
    return sorted(set(changed))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro lint``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Simulator-aware static analysis: determinism, "
                    "cycle-safety, trace-discipline, and whole-program "
                    "(call-graph) lints.",
    )
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             "(default: the in-tree repro package)")
    parser.add_argument("--json", dest="json_out", metavar="FILE",
                        default=None,
                        help="write the machine-readable report "
                             "(schema repro-lint/2) to FILE")
    parser.add_argument("--sarif", dest="sarif_out", metavar="FILE",
                        default=None,
                        help="write a SARIF 2.1.0 log to FILE "
                             "(for CI inline annotations)")
    parser.add_argument("--rule", dest="rules", action="append",
                        metavar="ID", default=None,
                        help="run only this rule (repeatable); "
                             "default: all rules")
    parser.add_argument("--no-program", action="store_true",
                        help="skip the whole-program (call-graph) rules")
    parser.add_argument("--changed", action="store_true",
                        help="report per-file findings only for files "
                             "touched per 'git diff --name-only HEAD' "
                             "(whole-program rules still see everything)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the warm-lint cache")
    parser.add_argument("--cache-file", metavar="FILE", default=None,
                        help="cache location (default: "
                             ".repro-lint-cache.json at the repo root, "
                             "or $REPRO_LINT_CACHE)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    if args.rules:
        known = set(RULES) | set(PROGRAM_RULES)
        unknown = sorted(set(args.rules) - known)
        if unknown:
            parser.error(
                f"unknown rule ids {unknown}; known: {sorted(known)}"
            )

    targets = [Path(p) for p in args.paths] if args.paths else None
    if targets:
        missing = [str(p) for p in targets if not p.exists()]
        if missing:
            parser.error(f"no such file or directory: {missing}")

    changed_only = None
    if args.changed:
        changed_only = _changed_relpaths()
        if changed_only is None:
            print("[lint] --changed: git unavailable, linting everything",
                  file=sys.stderr)

    cache = None
    if not args.no_cache and args.rules is None:
        from repro.analysis.cache import LintCache

        cache_path = Path(args.cache_file) if args.cache_file else None
        cache = LintCache(cache_path)

    report = lint_paths(
        targets, rules=args.rules,
        program=not args.no_program,
        cache=cache,
        changed_only=changed_only,
    )
    if cache is not None:
        cache.save()

    for finding in report.findings:
        if finding.suppressed:
            if args.show_suppressed:
                print(f"{finding.location}: suppressed[{finding.rule}]: "
                      f"{finding.reason}")
            continue
        print(f"{finding.location}: {finding.rule}: {finding.message}")
        for path, line, symbol in finding.paths[1:]:
            print(f"    via {path}:{line}: {symbol}")

    if args.json_out:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        Path(args.json_out).write_text(payload + "\n", encoding="utf-8")
    if args.sarif_out:
        from repro.analysis.sarif import to_sarif

        payload = json.dumps(to_sarif(report), indent=2, sort_keys=True)
        Path(args.sarif_out).write_text(payload + "\n", encoding="utf-8")

    active = report.active
    print(f"[lint] {report.files_scanned} files, "
          f"{len(report.rules_run)} rules: "
          f"{len(active)} finding(s), {len(report.suppressed)} suppressed")
    return 1 if active else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
