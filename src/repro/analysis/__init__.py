"""repro.analysis — the simulator-aware static-analysis (lint) pass.

A self-contained, stdlib-only AST lint framework plus a rule set written
for this codebase's determinism contract: no wall-clock reads in
simulation code, explicit RNG seeds, no hash-order-dependent set
iteration in the event-ordering layers, integer cycle arithmetic,
non-negative schedule delays, trace categories drawn from the known
registry, and the classic Python footguns (dict mutation during
iteration, mutable default arguments, ``id()``-derived ordering).

Entry points:

* ``python -m repro lint`` (see :mod:`repro.analysis.cli`) — the CLI,
  wired into ``make lint`` and CI.
* :func:`lint_paths` / :func:`lint_file` / :func:`lint_source` — the
  programmatic API; :data:`RULES` is the registry.

docs/ANALYSIS.md documents every rule with rationale and examples.
"""

from repro.analysis.framework import (
    BARE_SUPPRESSION,
    LINT_SCHEMA,
    PARSE_ERROR,
    RULES,
    Finding,
    LintReport,
    Module,
    Rule,
    default_root,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)
from repro.analysis.rules import SIM_DIRS

__all__ = [
    "BARE_SUPPRESSION",
    "LINT_SCHEMA",
    "PARSE_ERROR",
    "RULES",
    "SIM_DIRS",
    "Finding",
    "LintReport",
    "Module",
    "Rule",
    "default_root",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
