"""repro.analysis — the simulator-aware static-analysis (lint) pass.

A self-contained, stdlib-only AST lint framework plus a rule set written
for this codebase's determinism contract: no wall-clock reads in
simulation code, explicit RNG seeds, no hash-order-dependent set
iteration in the event-ordering layers, integer cycle arithmetic,
non-negative schedule delays, trace categories drawn from the known
registry, and the classic Python footguns (dict mutation during
iteration, mutable default arguments, ``id()``-derived ordering).

On top of the per-file rules sits a whole-program layer
(:mod:`repro.analysis.program`): every file is reduced to a module
summary, the summaries are assembled into a project-wide symbol table
and approximate call graph, and interprocedural rules — transitive
wall-clock/RNG taint, sweep-job picklability, schema-id registry
discipline, export/doc sync — run over the graph.  Their findings carry
cross-file witness chains (report schema ``repro-lint/2``) and honour
the same suppression comments.

Entry points:

* ``python -m repro lint`` (see :mod:`repro.analysis.cli`) — the CLI,
  wired into ``make lint`` and CI; ``--no-program`` skips the
  whole-program layer, ``--changed`` scopes per-file rules to
  git-touched files, ``--sarif`` exports SARIF 2.1.0.
* :func:`lint_paths` / :func:`lint_file` / :func:`lint_source` — the
  programmatic API; :data:`RULES` and :data:`PROGRAM_RULES` are the
  registries.

docs/ANALYSIS.md documents every rule with rationale and examples.
"""

from repro.analysis.framework import (
    BARE_SUPPRESSION,
    LINT_SCHEMA,
    PARSE_ERROR,
    PROGRAM_RULES,
    RULES,
    Finding,
    LintReport,
    Module,
    ProgramRule,
    Rule,
    default_root,
    lint_file,
    lint_paths,
    lint_source,
    register,
    register_program,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers the rule set)
from repro.analysis.rules import ORDERED_OUTPUT_DIRS, SIM_DIRS
from repro.analysis import program as _program  # noqa: F401  (registers program rules)
from repro.analysis.cache import LintCache
from repro.analysis.program import Project, summarize_source
from repro.analysis.sarif import to_sarif

__all__ = [
    "BARE_SUPPRESSION",
    "LINT_SCHEMA",
    "ORDERED_OUTPUT_DIRS",
    "PARSE_ERROR",
    "PROGRAM_RULES",
    "RULES",
    "SIM_DIRS",
    "Finding",
    "LintCache",
    "LintReport",
    "Module",
    "ProgramRule",
    "Project",
    "Rule",
    "default_root",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "register_program",
    "summarize_source",
    "to_sarif",
]
