"""Static-analysis framework: rule registry, suppressions, and reports.

The simulator's correctness contract — bit-identical results for a given
configuration and workload — is enforced at runtime by the perf harness
(``python -m repro bench``) and the profiler's fingerprint checks, but
nothing *prevents* the bug classes that break it (wall-clock reads in
simulation code, unseeded RNGs, hash-order-dependent set iteration, float
drift on cycle counters).  This package is the static guardrail: a small
AST-based lint pass with rules written specifically for this codebase, no
third-party linter required.

Architecture
------------
* :func:`register` adds a :class:`Rule` to the global :data:`RULES`
  registry.  A rule is a callable ``check(module) -> iterable of
  (line, col, message)`` plus a *scope* predicate over repo-relative
  paths, so e.g. the cycle-arithmetic rule only applies to timing
  modules.  The built-in rule set lives in :mod:`repro.analysis.rules`.
* :func:`lint_source` parses one file, runs every in-scope rule, and
  resolves suppressions; :func:`lint_paths` walks directories and
  aggregates a :class:`LintReport` with a stable, machine-readable
  ``to_dict()`` form (schema :data:`LINT_SCHEMA`).
* Suppressions are inline comments::

      risky_line()  # repro: allow[rule-id] -- why this one is safe

  placed on the offending line or alone on the line directly above it.
  ``# repro: allow-file[rule-id] -- why`` anywhere in a file suppresses
  the rule for the whole file.  Every suppression must carry an
  explanation after the bracket; a bare ``allow`` (or one naming an
  unknown rule) is itself reported under :data:`BARE_SUPPRESSION`, so
  "silence the linter without saying why" fails CI.

Everything here is stdlib-only and deterministic: files and findings are
sorted, and the pass never consults the clock or any RNG.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.schemas import SCHEMAS

#: Version tag of the JSON report layout (``LintReport.to_dict()``).
#: v2 adds the optional per-finding ``paths`` witness chain emitted by
#: the whole-program rules (:mod:`repro.analysis.program`).
LINT_SCHEMA = SCHEMAS["lint"]

#: Suppressions shorter than this (after the bracket) count as unexplained.
MIN_REASON_CHARS = 8

#: Pseudo-rule ids emitted by the framework itself (not registrable).
BARE_SUPPRESSION = "bare-suppression"
PARSE_ERROR = "parse-error"


#: One hop of a cross-file witness chain: (path, line, symbol).
WitnessHop = Tuple[str, int, str]


@dataclass(frozen=True)
class Finding:
    """One lint hit, suppressed or not, at a source location.

    ``paths`` is the cross-file witness chain attached by whole-program
    rules: each hop is ``(path, line, symbol)`` leading from the flagged
    site to the root cause (e.g. the function that actually reads the
    wall clock).  Per-file rules leave it empty.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""
    paths: Tuple[WitnessHop, ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule, "path": self.path,
            "line": self.line, "col": self.col, "message": self.message,
        }
        if self.paths:
            out["paths"] = [
                {"path": hop[0], "line": hop[1], "symbol": hop[2]}
                for hop in self.paths
            ]
        if self.suppressed:
            out["reason"] = self.reason
        return out


@dataclass
class Module:
    """One parsed source file, as handed to every in-scope rule."""

    relpath: str
    source: str
    tree: ast.Module
    #: ``line -> comment text`` (including the leading ``#``).
    comments: Dict[int, str]
    #: Lines whose only content is a comment (suppression carriers).
    comment_only_lines: frozenset


RawFinding = Tuple[int, int, str]


@dataclass(frozen=True)
class Rule:
    """A registered lint rule (see :func:`register`)."""

    id: str
    summary: str
    check: Callable[[Module], Iterable[RawFinding]]
    scope: Callable[[str], bool]
    scope_note: str


#: The global rule registry, populated by :mod:`repro.analysis.rules`.
RULES: Dict[str, Rule] = {}


def register(
    rule_id: str,
    summary: str,
    *,
    scope: Optional[Callable[[str], bool]] = None,
    scope_note: str = "all of src/repro",
):
    """Decorator: add ``func`` to :data:`RULES` under ``rule_id``."""
    if not re.fullmatch(r"[a-z][a-z0-9-]*", rule_id):
        raise ValueError(f"rule id must be kebab-case, got {rule_id!r}")
    if rule_id in (BARE_SUPPRESSION, PARSE_ERROR):
        raise ValueError(f"{rule_id!r} is reserved for the framework")

    def decorator(func: Callable[[Module], Iterable[RawFinding]]):
        if rule_id in RULES or rule_id in PROGRAM_RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = Rule(
            id=rule_id,
            summary=summary,
            check=func,
            scope=scope if scope is not None else (lambda rel: True),
            scope_note=scope_note,
        )
        return func

    return decorator


#: A raw whole-program finding: (relpath, line, col, message, witness chain).
ProgramRawFinding = Tuple[str, int, int, str, Tuple[WitnessHop, ...]]


@dataclass(frozen=True)
class ProgramRule:
    """A registered whole-program (interprocedural) lint rule.

    Unlike :class:`Rule`, the check runs once per lint pass over the
    project-wide view (:class:`repro.analysis.program.Project`) rather
    than once per file, so it can follow call chains and import edges
    across module boundaries.
    """

    id: str
    summary: str
    check: Callable[[object], Iterable[ProgramRawFinding]]
    scope_note: str


#: Whole-program rule registry, populated by :mod:`repro.analysis.program`.
PROGRAM_RULES: Dict[str, ProgramRule] = {}


def register_program(
    rule_id: str,
    summary: str,
    *,
    scope_note: str = "whole program",
):
    """Decorator: add ``func`` to :data:`PROGRAM_RULES` under ``rule_id``."""
    if not re.fullmatch(r"[a-z][a-z0-9-]*", rule_id):
        raise ValueError(f"rule id must be kebab-case, got {rule_id!r}")
    if rule_id in (BARE_SUPPRESSION, PARSE_ERROR):
        raise ValueError(f"{rule_id!r} is reserved for the framework")

    def decorator(func: Callable[[object], Iterable[ProgramRawFinding]]):
        if rule_id in RULES or rule_id in PROGRAM_RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        PROGRAM_RULES[rule_id] = ProgramRule(
            id=rule_id, summary=summary, check=func, scope_note=scope_note,
        )
        return func

    return decorator


def in_dirs(*names: str) -> Callable[[str], bool]:
    """Scope helper: path contains one of these directory components."""
    def predicate(relpath: str) -> bool:
        posix = "/" + relpath.replace("\\", "/")
        return any(f"/{name}/" in posix for name in names)
    return predicate


def excluding(*suffixes_or_dirs: str) -> Callable[[str], bool]:
    """Scope helper: everywhere except these path suffixes / directories."""
    def predicate(relpath: str) -> bool:
        posix = "/" + relpath.replace("\\", "/")
        for pattern in suffixes_or_dirs:
            if pattern.endswith("/"):
                if f"/{pattern}" in posix or posix.startswith("/" + pattern):
                    return False
            elif posix.endswith("/" + pattern):
                return False
        return True
    return predicate


# -- suppression comments ------------------------------------------------------

_ALLOW_RE = re.compile(
    r"repro:\s*allow(?P<file>-file)?\[(?P<rules>[^\]]*)\]"
    r"\s*(?:[-—–:]+\s*)?(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    rules: Tuple[str, ...]
    reason: str
    line: int
    file_level: bool

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def _extract_comments(source: str) -> Tuple[Dict[int, str], frozenset]:
    comments: Dict[int, str] = {}
    comment_only: set = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
                if tok.line.strip().startswith("#"):
                    comment_only.add(tok.start[0])
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # ast.parse already vetted the file; best effort here
    return comments, frozenset(comment_only)


def _parse_suppressions(
    comments: Dict[int, str],
) -> Tuple[Dict[int, Suppression], List[Suppression], List[Finding]]:
    """Split comments into line-level and file-level suppressions, plus
    hygiene findings for unexplained or unknown-rule suppressions."""
    by_line: Dict[int, Suppression] = {}
    file_level: List[Suppression] = []
    hygiene: List[RawFinding] = []
    for line in sorted(comments):
        match = _ALLOW_RE.search(comments[line])
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("rules").split(",")
            if part.strip()
        )
        supp = Suppression(
            rules=ids,
            reason=match.group("reason").strip(),
            line=line,
            file_level=match.group("file") is not None,
        )
        if not ids:
            hygiene.append((line, 0, "suppression names no rule ids"))
        for rule_id in ids:
            if (rule_id != "*" and rule_id not in RULES
                    and rule_id not in PROGRAM_RULES):
                hygiene.append(
                    (line, 0, f"suppression names unknown rule {rule_id!r}")
                )
        if len(supp.reason) < MIN_REASON_CHARS:
            hygiene.append((
                line, 0,
                "suppression lacks an explanatory comment: write "
                "'# repro: allow[rule-id] -- why this is safe'",
            ))
        if supp.file_level:
            file_level.append(supp)
        else:
            by_line[line] = supp
    findings = [
        Finding(BARE_SUPPRESSION, "", line, col, message)
        for line, col, message in hygiene
    ]
    return by_line, file_level, findings


def _find_suppression(
    rule_id: str,
    line: int,
    by_line: Dict[int, Suppression],
    file_level: Sequence[Suppression],
    comment_only: frozenset,
) -> Optional[Suppression]:
    supp = by_line.get(line)
    if supp is not None and supp.covers(rule_id):
        return supp
    # Walk upward through the contiguous block of comment-only lines
    # directly above the finding, so a suppression whose explanation
    # wraps onto several comment lines still applies.
    above = line - 1
    while above in comment_only:
        supp = by_line.get(above)
        if supp is not None and supp.covers(rule_id):
            return supp
        above -= 1
    for supp in file_level:
        if supp.covers(rule_id):
            return supp
    return None


# -- running the pass ----------------------------------------------------------

def _select_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    """Per-file rules matching the request (program ids pass through)."""
    if rule_ids is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    known = set(RULES) | set(PROGRAM_RULES)
    unknown = sorted(set(rule_ids) - known)
    if unknown:
        raise KeyError(f"unknown rule ids {unknown}; known: {sorted(known)}")
    return [
        RULES[rule_id]
        for rule_id in sorted(set(rule_ids)) if rule_id in RULES
    ]


def _select_program_rules(
    rule_ids: Optional[Sequence[str]],
) -> List[ProgramRule]:
    if rule_ids is None:
        return [PROGRAM_RULES[rule_id] for rule_id in sorted(PROGRAM_RULES)]
    return [
        PROGRAM_RULES[rule_id]
        for rule_id in sorted(set(rule_ids)) if rule_id in PROGRAM_RULES
    ]


def lint_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file's source text; ``relpath`` drives rule scoping.

    Returns every finding, suppressed ones included (marked); callers
    filter on :attr:`Finding.suppressed` for the pass/fail decision.
    """
    selected = _select_rules(rules)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            PARSE_ERROR, relpath, exc.lineno or 1, exc.offset or 0,
            f"syntax error: {exc.msg}",
        )]
    comments, comment_only = _extract_comments(source)
    module = Module(
        relpath=relpath, source=source, tree=tree,
        comments=comments, comment_only_lines=comment_only,
    )
    by_line, file_level, hygiene = _parse_suppressions(comments)
    findings: List[Finding] = []
    if rules is None:
        # Suppression hygiene only runs with the full rule set: a filtered
        # run (--rule X) should not complain about other rules' comments.
        findings.extend(
            Finding(f.rule, relpath, f.line, f.col, f.message)
            for f in hygiene
        )
    for rule in selected:
        if not rule.scope(relpath):
            continue
        for line, col, message in rule.check(module):
            supp = _find_suppression(
                rule.id, line, by_line, file_level, comment_only
            )
            findings.append(Finding(
                rule.id, relpath, line, col, message,
                suppressed=supp is not None,
                reason=supp.reason if supp is not None else "",
            ))
    findings.sort(key=Finding.sort_key)
    return findings


def default_root() -> Path:
    """The in-tree ``repro`` package directory (the default lint target)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _relpath_for(
    path: Path,
    base: Optional[Path],
    fallback: Optional[Path] = None,
) -> str:
    path = path.resolve()
    candidates = [base, default_root().parent, Path.cwd(), fallback]
    for root in candidates:
        if root is None:
            continue
        try:
            return path.relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_file(
    path: Path,
    relpath: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one file on disk (see :func:`lint_source`)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        relpath if relpath is not None else _relpath_for(path, None),
        rules=rules,
    )


def _iter_py_files(paths: Sequence[Path]):
    """Yield ``(file, owning_target_dir)`` pairs in sorted order.

    The owning directory is the explicitly passed target the file was
    found under (``None`` for directly named files); it serves as the
    last-resort base for repo-relative path computation so lints of
    out-of-tree directories (test fixtures) still get stable, relative
    module paths instead of absolute ones.
    """
    for path in sorted(Path(p).resolve() for p in paths):
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub, path
        elif path.suffix == ".py":
            yield path, None


@dataclass
class LintReport:
    """Aggregate result of one lint run over a set of paths."""

    root: str
    files_scanned: int
    rules_run: Tuple[str, ...]
    findings: List[Finding] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Unsuppressed findings — the ones that fail the run."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def to_dict(self) -> Dict[str, object]:
        per_rule: Dict[str, Dict[str, object]] = {}
        for rule_id in self.rules_run:
            meta = RULES.get(rule_id) or PROGRAM_RULES.get(rule_id)
            per_rule[rule_id] = {
                "summary": meta.summary if meta else "",
                "scope": meta.scope_note if meta else "",
                "active": 0,
                "suppressed": 0,
            }
        for finding in self.findings:
            entry = per_rule.setdefault(
                finding.rule,
                {"summary": "", "scope": "", "active": 0, "suppressed": 0},
            )
            entry["suppressed" if finding.suppressed else "active"] += 1
        return {
            "schema": LINT_SCHEMA,
            "root": self.root,
            "files_scanned": self.files_scanned,
            "rules": per_rule,
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def _find_api_doc(targets: Sequence[Path], base: Optional[Path]):
    """Locate ``docs/API.md`` relative to the lint roots (or ``None``)."""
    candidates: List[Path] = []
    if base is not None:
        candidates.extend([base, base.parent])
    for target in targets:
        directory = target if target.is_dir() else target.parent
        candidates.extend([directory, directory.parent,
                           directory.parent.parent])
    for directory in candidates:
        doc = Path(directory) / "docs" / "API.md"
        if doc.is_file():
            return doc
    return None


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
    *,
    program: bool = True,
    cache=None,
    changed_only: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories (default: the in-tree ``repro`` package).

    ``program=True`` (the default) additionally runs the whole-program
    rules in :data:`PROGRAM_RULES` over a project-wide call graph built
    from every scanned file — see :mod:`repro.analysis.program`.

    ``cache`` accepts a :class:`repro.analysis.cache.LintCache`; it is
    consulted only for full-rule-set runs (``rules is None``) and stores
    per-file findings plus the program-analysis module summary keyed by
    file content, so warm re-lints skip parsing entirely.

    ``changed_only`` restricts *per-file* findings to the given repo
    relpaths (``--changed`` mode); whole-program rules still see the
    full graph, since a cross-module regression can be introduced by a
    file that did not itself change.
    """
    if paths is None:
        root = default_root()
        targets: List[Path] = [root]
        base: Optional[Path] = root.parent
    else:
        targets = [Path(p) for p in paths]
        base = None
    selected_file_rules = _select_rules(rules)  # validates unknown ids too
    selected_program = _select_program_rules(rules) if program else []
    need_summaries = bool(selected_program)
    cache_usable = cache is not None and rules is None
    changed = (None if changed_only is None
               else {str(rel) for rel in changed_only})

    findings: List[Finding] = []
    summaries: List[Tuple[str, Dict[str, object]]] = []
    files_scanned = 0
    for path, owner in _iter_py_files(targets):
        files_scanned += 1
        relpath = _relpath_for(path, base, owner)
        source = path.read_text(encoding="utf-8")
        entry = cache.lookup(relpath, source) if cache_usable else None
        if entry is not None:
            file_findings, summary = entry
        else:
            file_findings = lint_source(source, relpath, rules=rules)
            summary = None
            if need_summaries or cache_usable:
                from repro.analysis.program import summarize_source

                summary = summarize_source(source, relpath)
            if cache_usable:
                cache.store(relpath, source, file_findings, summary)
        if changed is None or relpath in changed:
            findings.extend(file_findings)
        if need_summaries and summary is not None:
            summaries.append((relpath, summary))
    if selected_program:
        from repro.analysis.program import analyze

        findings.extend(analyze(
            summaries, selected_program,
            api_doc=_find_api_doc(targets, base),
        ))
    findings.sort(key=Finding.sort_key)
    return LintReport(
        root=str(base if base is not None else Path.cwd()),
        files_scanned=files_scanned,
        rules_run=tuple(sorted(
            [rule.id for rule in selected_file_rules]
            + [rule.id for rule in selected_program]
        )),
        findings=findings,
    )
