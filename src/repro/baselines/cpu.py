"""Analytic CPU baseline (Table I's 48-thread Xeon E5-2680 v3).

The paper normalizes everything to software baselines — BWA-MEM (FM
seeding), SMALT (hash seeding), BFCounter (k-mer counting), Shouji
(pre-alignment) — running on a 48-thread Xeon.  Those numbers only serve as
a normalization constant, so the model is analytic rather than simulated:

* count the algorithm's operations functionally (the same generators that
  drive the accelerator simulation),
* charge a per-operation wall time calibrated against published software
  throughput (dependent random DRAM access + software overhead per
  operation dominates; see EXPERIMENTS.md for the calibration note),
* divide by the thread count, floor by the platform's random-access memory
  bandwidth,
* charge package + DRAM power for the duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

from repro.core.config import Algorithm
from repro.core.metrics import Report
from repro.genomics.index_cache import get_cache
from repro.genomics.kmer import iter_kmers
from repro.genomics.workloads import SeedingWorkload, make_prealign_pairs


@dataclass(frozen=True)
class CpuConfig:
    """Table I CPU row + per-operation software costs."""

    threads: int = 48
    #: DDR4 channels and per-channel random-access effective bandwidth.
    channels: int = 4
    random_lines_per_us_per_channel: float = 60.0  # 64 B lines, ~3.8 GB/s
    #: Package + active DRAM power.
    package_w: float = 120.0
    dram_w: float = 15.0
    #: Per-operation single-thread software cost in nanoseconds.
    #:
    #: CALIBRATION (the one free constant of the reproduction, see
    #: EXPERIMENTS.md): these are amortized full-pipeline costs on the
    #: paper's tens-of-gigabase datasets, anchored so that the *baseline
    #: accelerators* reproduce their published CPU gaps — MEDAL ~120x the
    #: 48-thread CPU on FM seeding (Fig. 12: 144.18x vanilla / 1.20x MEDAL),
    #: ~122x on hash seeding (Fig. 14), NEST ~85x on k-mer counting
    #: (Fig. 15), and BEACON-D ~362x on pre-alignment (Fig. 16, which has
    #: no NDP baseline).  Every BEACON-vs-baseline ratio is then *measured*,
    #: not calibrated.
    op_ns: Dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.op_ns is None:
            object.__setattr__(self, "op_ns", {
                Algorithm.FM_SEEDING.value: 44_500.0,
                Algorithm.HASH_SEEDING.value: 55_000.0,
                Algorithm.KMER_COUNTING.value: 13_500.0,
                Algorithm.PREALIGNMENT.value: 305_000.0,
            })


class CpuModel:
    """Analytic software baseline producing the same :class:`Report` type."""

    backend_description = ("analytic 48-thread Xeon software baseline "
                           "(BWA-MEM / SMALT / BFCounter / Shouji)")

    def __init__(self, config: CpuConfig = CpuConfig()) -> None:
        self.config = config

    # -- operation counting (functional) --------------------------------------------
    #
    # The indexes come from the cross-run cache: the CPU baseline walks the
    # exact FM/hash index a sweep's accelerator runs already built for the
    # same reference, so within one matrix point the construction cost is
    # paid once, not once per backend.

    def _fm_ops(self, workload: SeedingWorkload) -> tuple:
        fm = get_cache().fm_index(workload.reference)
        steps = 0
        lines = 0
        for read in workload.reads:
            for access in fm.search_trace(read):
                steps += 1
                lines += len(access.blocks)
        return steps, lines

    def _hash_ops(self, workload: SeedingWorkload, k: int = 13,
                  bucket_load: int = 4) -> tuple:
        positions = len(workload.reference) - k + 1
        index = get_cache().hash_index(workload.reference, k=k, stride=1,
                                       num_buckets=max(64, positions // bucket_load))
        probes = 0
        lines = 0
        for read in workload.reads:
            for query in index.seed_read(read):
                probes += 1
                lines += 1 + -(-len(query.location_addrs) * 4 // 64)
        return probes, lines

    def _kmer_ops(self, workload: SeedingWorkload, k: int = 15) -> tuple:
        kmers = sum(max(0, len(read) - k + 1) for read in workload.reads)
        return kmers, kmers * 4  # h = 4 counter lines touched per k-mer

    def _prealign_ops(self, workload: SeedingWorkload, max_edits: int = 3,
                      candidates_per_read: int = 4) -> tuple:
        pairs = make_prealign_pairs(workload, max_edits, candidates_per_read)
        window_lines = -(-(workload.spec.read_length + 2 * max_edits) // (64 * 4))
        return len(pairs), len(pairs) * max(1, window_lines)

    # -- the model --------------------------------------------------------------------

    def _report(self, algorithm: Algorithm, dataset: str,
                ops: int, lines: int, tasks: int) -> Report:
        cfg = self.config
        compute_ns = ops * cfg.op_ns[algorithm.value] / cfg.threads
        bandwidth_ns = lines / (
            cfg.channels * cfg.random_lines_per_us_per_channel / 1000.0
        )
        runtime_ns = max(compute_ns, bandwidth_ns)
        total_w = cfg.package_w + cfg.dram_w
        total_nj = total_w * runtime_ns * 1e-9 * 1e9
        dram_nj = total_nj * cfg.dram_w / total_w
        # Report in DRAM cycles of the accelerators' clock so speedups are
        # straight runtime_ns ratios.
        tck_ns = 1.25
        return Report(
            label=f"cpu-{algorithm.value}",
            system="cpu48",
            algorithm=algorithm.value,
            dataset=dataset,
            runtime_cycles=int(runtime_ns / tck_ns),
            tck_ns=tck_ns,
            energy_dram_nj=dram_nj,
            energy_comm_nj=0.0,
            energy_compute_nj=total_nj - dram_nj,
            tasks_completed=tasks,
            mem_requests=lines,
            extra={"ops": float(ops), "bandwidth_bound": float(
                bandwidth_ns > compute_ns)},
        )

    def run_fm_seeding(self, workload: SeedingWorkload) -> Report:
        ops, lines = self._fm_ops(workload)
        return self._report(Algorithm.FM_SEEDING, workload.name, ops, lines,
                            len(workload.reads))

    def run_hash_seeding(self, workload: SeedingWorkload, **kwargs) -> Report:
        ops, lines = self._hash_ops(workload, **kwargs)
        return self._report(Algorithm.HASH_SEEDING, workload.name, ops, lines,
                            len(workload.reads))

    def run_kmer_counting(self, workload: SeedingWorkload, k: int = 15,
                          **_ignored) -> Report:
        ops, lines = self._kmer_ops(workload, k)
        return self._report(Algorithm.KMER_COUNTING, workload.name, ops, lines,
                            len(workload.reads))

    def run_prealignment(self, workload: SeedingWorkload, max_edits: int = 3,
                         candidates_per_read: int = 4) -> Report:
        ops, lines = self._prealign_ops(workload, max_edits, candidates_per_read)
        return self._report(Algorithm.PREALIGNMENT, workload.name, ops, lines,
                            ops)

    def run_algorithm(self, algorithm: Algorithm, workload: SeedingWorkload,
                      **kwargs) -> Report:
        runners = {
            Algorithm.FM_SEEDING: self.run_fm_seeding,
            Algorithm.HASH_SEEDING: self.run_hash_seeding,
            Algorithm.KMER_COUNTING: self.run_kmer_counting,
            Algorithm.PREALIGNMENT: self.run_prealignment,
        }
        return runners[algorithm](workload, **kwargs)
