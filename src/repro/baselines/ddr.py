"""Shared base for the DDR-DIMM NDP baselines (MEDAL / NEST).

Topology (Table I: 2 DDR channels, customized DIMMs only): the host fronts
``num_switches`` DDR channels, each a multidrop bus shared by
``dimms_per_switch`` customized DIMMs.  Every DIMM carries an NDP module
(same PEs as BEACON, Section VI-A) and supports MEDAL-style fine-grained
single-chip access.  All inter-DIMM traffic is host-mediated: onto the
shared channel, through the host memory controller, back down a channel —
the 12x intra/inter bandwidth gap of Fig. 1.

The baselines use their papers' *fixed* address mapping (everything striped
across all DIMMs, chip-interleaved fine-grained) — no data packing, no
device bias, no BEACON placement.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.beacon import BeaconSystem
from repro.core.config import BeaconConfig, OptimizationFlags
from repro.core.ndp_module import NdpModule
from repro.dram.dimm import DimmKind
from repro.memmgmt.placement import PlacementPlanner


class DdrNdpSystem(BeaconSystem):
    """DDR-DIMM NDP accelerator: host + shared channels + custom DIMMs."""

    variant = "ddr-ndp"
    pe_hw_key = "BEACON"
    backend_description = ("generic DDR-DIMM NDP substrate: shared DDR "
                           "channels, host-mediated inter-DIMM traffic")

    def __init__(self, config: BeaconConfig = BeaconConfig(), label: str = "") -> None:
        # The baselines have no BEACON optimizations; the flags only exist
        # so the shared machinery (comm flags, planner) stays uniform.
        super().__init__(config=config, flags=OptimizationFlags.vanilla(),
                         label=label)

    def _build_topology(self) -> None:
        cfg = self.config
        fabric = self.pool.fabric
        fabric.add_host()
        for c in range(cfg.num_switches):
            channel = f"ch{c}"
            fabric.add_ddr_channel_node(channel)
            for j in range(cfg.dimms_per_switch):
                node = f"m{c}.{j}"
                index = self.pool.add_dimm(node, channel, DimmKind.DDR_CUSTOM)
                # is_cxlg here means "fine-grained-capable accelerator DIMM";
                # the baselines customize every DIMM (Section VI-A: "all the
                # DIMMs in the NDP baselines are customized DIMMs").
                self.allocator.register_dimm(
                    index, node, channel, is_cxlg=True, tenant_bytes=0,
                )
                self.ndp_modules.append(
                    NdpModule(
                        self.engine, f"ndp{index}", self.root, node=node,
                        num_pes=cfg.baseline_pes_per_dimm, pool=self.pool,
                        region_map=self.allocator.region_map,
                    )
                )
        # MEDAL/NEST ship tasks to the DIMM owning the data (one small
        # one-way message over the channel) instead of fetching remote data.
        peers = {module.node: module for module in self.ndp_modules}
        for module in self.ndp_modules:
            module.migration_peers = peers

    def _make_planner(self) -> PlacementPlanner:
        return PlacementPlanner(
            self.allocator, self.config.geometry,
            optimized=False,
            fine_grained_chips=self.config.fine_grained_chips,
            baseline_fixed=True,
        )

    def idealized_twin(self) -> "DdrNdpSystem":
        """Same system with idealized communication (the Fig. 3 study)."""
        twin = type(self)(config=self.config_with_ideal_comm(),
                          label=f"{self.label}-ideal")
        return twin

    def config_with_ideal_comm(self) -> BeaconConfig:
        return self.config.idealized()


def ddr_baseline_config(base: BeaconConfig = BeaconConfig()) -> BeaconConfig:
    """Table I's MEDAL/NEST configuration knobs applied to a base config."""
    return replace(base)
