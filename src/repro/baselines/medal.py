"""MEDAL (Huangfu et al., MICRO 2019): DDR-DIMM NDP for DNA seeding.

MEDAL customizes DDR4 LRDIMMs with per-chip chip selects and an in-buffer
accelerator; its index is distributed across all DIMMs with a fixed address
mapping, and inter-DIMM traffic crosses the shared DDR channel through the
host — the 12x bandwidth gap BEACON's Fig. 1 highlights.  It is the
hardware baseline for FM-index and Hash-index seeding (Figs. 12 and 14).
"""

from __future__ import annotations

from repro.baselines.ddr import DdrNdpSystem


class Medal(DdrNdpSystem):
    """MEDAL: fine-grained DDR-DIMM seeding accelerator."""

    variant = "medal"
    pe_hw_key = "MEDAL"
    backend_description = ("MEDAL (MICRO'19): fine-grained DDR-DIMM NDP "
                           "baseline for FM/Hash-index DNA seeding")
