"""NEST (Huangfu et al., ICCAD 2020): DDR-DIMM NDP for k-mer counting.

NEST's defining trait is its *multi-pass*, DIMM-local flow (Section IV-D of
the BEACON paper): every DIMM builds a private counting Bloom filter over
the whole input, the filters are merged into a global one that is
replicated back to every DIMM, and counting re-processes the entire input
against the local copy.  Random filter accesses therefore never leave a
DIMM, at the price of streaming the input twice plus the merge broadcast.
It is the hardware baseline for k-mer counting (Fig. 15).
"""

from __future__ import annotations

from repro.baselines.ddr import DdrNdpSystem


class Nest(DdrNdpSystem):
    """NEST: multi-pass, DIMM-local k-mer counting accelerator."""

    variant = "nest"
    pe_hw_key = "NEST"
    backend_description = ("NEST (ICCAD'20): multi-pass, DIMM-local k-mer "
                           "counting baseline with per-DIMM Bloom filters")

    def _bloom_region_for(self, module_index: int, size: int):
        """NEST pins each NDP module's filter to its own DIMM."""
        return self.planner.bloom_filter(
            f"bloom{module_index}", size,
            home_dimm=self._module_dimm(module_index),
        )
