"""Baseline systems the paper compares against.

* :class:`~repro.baselines.cpu.CpuModel` — the 48-thread Xeon software
  baselines (BWA-MEM, SMALT, BFCounter, Shouji), as an analytic
  throughput/energy model.
* :class:`~repro.baselines.medal.Medal` — MEDAL (MICRO'19): DDR-DIMM NDP
  accelerator for FM/Hash-index DNA seeding.
* :class:`~repro.baselines.nest.Nest` — NEST (ICCAD'20): DDR-DIMM NDP
  accelerator for k-mer counting with per-DIMM Bloom filters.

The DDR baselines run on the same simulator substrate as BEACON (same DRAM
devices, same PEs per Section VI-A) but behind shared DDR channels with
host-mediated inter-DIMM communication — the topology whose communication
bottleneck motivates the paper.
"""

from repro.baselines.cpu import CpuConfig, CpuModel
from repro.baselines.ddr import DdrNdpSystem
from repro.baselines.medal import Medal
from repro.baselines.nest import Nest

__all__ = ["CpuConfig", "CpuModel", "DdrNdpSystem", "Medal", "Nest"]
