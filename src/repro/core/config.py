"""System configuration and optimization flags (Table I + Section IV).

The experiment matrix of Figs. 12-16 is "a system (BEACON-D / BEACON-S /
baseline) x a cumulative stack of optimizations"; :class:`OptimizationFlags`
encodes one point of that stack and
:meth:`OptimizationFlags.cumulative_steps` generates the whole step-by-step
sequence in the paper's order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.cxl.topology import CommParams
from repro.dram.timing import DimmGeometry, DramTiming


class Algorithm(enum.Enum):
    """The four target applications (Fig. 2), plus the extension bucket.

    ``CUSTOM`` is the Section V extension point: applications added by
    replacing the PEs (graph processing, database searching, ...) are
    accounted under it.
    """

    FM_SEEDING = "fm_seeding"
    HASH_SEEDING = "hash_seeding"
    KMER_COUNTING = "kmer_counting"
    PREALIGNMENT = "prealignment"
    CUSTOM = "custom"


#: PE computational latencies in DRAM cycles (Section VI-A: "equal to 16,
#: 10, 59, and 82 DRAM cycles").
PE_COMPUTE_CYCLES: Dict[Algorithm, int] = {
    Algorithm.FM_SEEDING: 16,
    Algorithm.HASH_SEEDING: 10,
    Algorithm.KMER_COUNTING: 59,
    Algorithm.PREALIGNMENT: 82,
}


@dataclass(frozen=True)
class OptimizationFlags:
    """One point in the cumulative optimization stack.

    Order in the paper (Figs. 12/14/15): vanilla -> + data packing ->
    + memory access optimization -> + data placement & address mapping ->
    + algorithm-specific optimization (multi-chip coalescing for FM on
    BEACON-D; single-pass counting for k-mer on BEACON-S).
    """

    data_packing: bool = False
    memory_access_opt: bool = False
    data_placement: bool = False
    multi_chip_coalescing: bool = False
    single_pass_kmer: bool = False

    @classmethod
    def vanilla(cls) -> "OptimizationFlags":
        """CXL-vanilla: the naive NDP near the pool, nothing enabled."""
        return cls()

    @classmethod
    def all_for(cls, system: str, algorithm: Algorithm) -> "OptimizationFlags":
        """Full BEACON configuration for a (system, algorithm) pair."""
        steps = cls.cumulative_steps(system, algorithm)
        return steps[-1][1]

    @classmethod
    def cumulative_steps(
        cls, system: str, algorithm: Algorithm
    ) -> List[Tuple[str, "OptimizationFlags"]]:
        """The paper's step-by-step configurations, in order.

        ``system`` is ``"beacon-d"`` or ``"beacon-s"``.
        """
        if system not in ("beacon-d", "beacon-s"):
            raise ValueError(f"unknown system {system!r}")
        steps: List[Tuple[str, OptimizationFlags]] = [("CXL-vanilla", cls())]
        current = cls()

        def push(label: str, **changes) -> None:
            nonlocal current
            current = replace(current, **changes)
            steps.append((label, current))

        push("+data packing", data_packing=True)
        push("+memory access opt", memory_access_opt=True)
        push("+placement & mapping", data_placement=True)
        if system == "beacon-d" and algorithm is Algorithm.FM_SEEDING:
            push("+multi-chip coalescing", multi_chip_coalescing=True)
        if system == "beacon-s" and algorithm is Algorithm.KMER_COUNTING:
            push("+single-pass counting", single_pass_kmer=True)
        return steps


@dataclass(frozen=True)
class BeaconConfig:
    """Structural configuration (Table I's BEACON rows)."""

    #: Pool shape: 2 switches, 4 DIMMs each = 8 x 64 GiB = 512 GiB.
    num_switches: int = 2
    dimms_per_switch: int = 4
    #: BEACON-D: CXLG-DIMMs per switch (the rest stay unmodified).
    cxlg_per_switch: int = 1
    #: PEs per accelerator module (Section VI-A).
    pes_per_cxlg: int = 128
    pes_per_switch: int = 256
    #: PEs per customized DDR-DIMM in the MEDAL/NEST baselines (the total
    #: PE population then matches BEACON-D's, per Section VI-A's "same area
    #: overhead" fairness rule: 8 x 32 = 2 x 128).
    baseline_pes_per_dimm: int = 32
    #: Multi-chip coalescing group width (Section IV-D, "fine-tuned").
    coalesce_chips: int = 8
    #: Chip-group width for fine-grained access *without* coalescing
    #: (MEDAL-style single chip).
    fine_grained_chips: int = 1
    #: Share of a hot region the planner pushes onto CXLG-DIMMs.  The
    #: profile skew means this fraction of *blocks* covers a far larger
    #: fraction of *accesses*; a CXLG-DIMM holds 64 GiB (an entire BWA-MEM
    #: FM-index fits in 64 GiB), so a high default is realistic.
    near_fraction: float = 0.85
    #: Atomic Engines per switch (BEACON-D; BEACON-S reuses its PEs).
    atomic_engines_per_switch: int = 64
    #: Cycles an Atomic Engine spends on the RMW arithmetic.
    atomic_compute_cycles: int = 4
    comm: CommParams = field(default_factory=CommParams)
    geometry: DimmGeometry = field(default_factory=DimmGeometry)
    timing: DramTiming = field(default_factory=DramTiming)

    def with_flags(self, flags: OptimizationFlags) -> "BeaconConfig":
        """Fold the communication-side flags into the comm parameters."""
        comm = replace(
            self.comm,
            data_packing=flags.data_packing,
            device_bias=flags.memory_access_opt,
        )
        return replace(self, comm=comm)

    def idealized(self) -> "BeaconConfig":
        """Idealized-communication twin (Fig. 3 / %-of-ideal rows)."""
        return replace(self, comm=self.comm.idealized())

    def scaled(self, factor: int = 8) -> "BeaconConfig":
        """Shrink the PE population by ``factor`` for scaled simulations.

        The workload generators shrink the datasets by orders of magnitude
        (see :mod:`repro.genomics.workloads`); shrinking the PE counts by
        the same spirit keeps the systems in the paper's *throughput-bound*
        operating regime (tasks per PE >> 1, memory latency hidden by task
        switching) instead of an artificial latency-bound regime where no
        bandwidth optimization could matter.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            pes_per_cxlg=max(1, self.pes_per_cxlg // factor),
            pes_per_switch=max(1, self.pes_per_switch // factor),
            baseline_pes_per_dimm=max(1, self.baseline_pes_per_dimm // factor),
            atomic_engines_per_switch=max(1, self.atomic_engines_per_switch // factor),
        )

    @property
    def total_dimms(self) -> int:
        return self.num_switches * self.dimms_per_switch

    @property
    def total_pes_d(self) -> int:
        return self.num_switches * self.cxlg_per_switch * self.pes_per_cxlg

    @property
    def total_pes_s(self) -> int:
        return self.num_switches * self.pes_per_switch
