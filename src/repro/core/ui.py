"""The BEACON framework User-Interface (Section V, "Programming Burden").

"The end-users only need to provide the related information, e.g.,
application, algorithm, dataset size, input task number, and task
parameters, to the User-Interface (UI) of the BEACON framework.  No coding
and no programming are required for the end-users."

:class:`BeaconUI` is that surface: a job description in, a report out.
Each job builds a fresh fully-optimized system of the requested variant,
places the data through the memory-management framework, and runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.beacon import BeaconD, BeaconS
from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.core.metrics import Report
from repro.genomics.workloads import SeedingWorkload, DatasetSpec

#: Application names accepted by the UI, as the paper's end-users would
#: phrase them, mapped to the algorithm enum.
APPLICATIONS: Dict[str, Algorithm] = {
    "fm-seeding": Algorithm.FM_SEEDING,
    "dna-seeding": Algorithm.FM_SEEDING,
    "hash-seeding": Algorithm.HASH_SEEDING,
    "kmer-counting": Algorithm.KMER_COUNTING,
    "k-mer-counting": Algorithm.KMER_COUNTING,
    "pre-alignment": Algorithm.PREALIGNMENT,
    "prealignment": Algorithm.PREALIGNMENT,
}


@dataclass
class JobRequest:
    """What an end-user submits: data plus knobs, no code."""

    application: str
    reference: str
    reads: Sequence[str]
    parameters: Dict[str, object] = field(default_factory=dict)

    def algorithm(self) -> Algorithm:
        try:
            return APPLICATIONS[self.application.lower()]
        except KeyError:
            raise ValueError(
                f"unknown application {self.application!r}; "
                f"available: {sorted(set(APPLICATIONS))}"
            ) from None


class BeaconUI:
    """Submit genome-analysis jobs to a BEACON pool without programming."""

    def __init__(
        self,
        variant: str = "beacon-d",
        config: Optional[BeaconConfig] = None,
        label: str = "beacon-ui",
    ) -> None:
        if variant not in ("beacon-d", "beacon-s"):
            raise ValueError(f"variant must be beacon-d or beacon-s, got {variant!r}")
        self.variant = variant
        self.config = config or BeaconConfig()
        self.label = label
        self.history: List[Report] = []

    def _build_system(self, algorithm: Algorithm):
        cls = BeaconD if self.variant == "beacon-d" else BeaconS
        flags = OptimizationFlags.all_for(self.variant, algorithm)
        return cls(config=self.config, flags=flags,
                   label=f"{self.label}:{algorithm.value}")

    def submit(self, job: JobRequest) -> Report:
        """Run one job to completion and return its report."""
        algorithm = job.algorithm()
        if not job.reads:
            raise ValueError("job needs at least one read")
        read_length = len(job.reads[0])
        workload = SeedingWorkload(
            spec=DatasetSpec(
                name=str(job.parameters.get("dataset", "user")),
                label="user dataset",
                genome_length=len(job.reference),
                num_reads=len(job.reads),
                read_length=read_length,
                gc_content=0.5,
                seed=int(job.parameters.get("seed", 0)),
            ),
            reference=job.reference,
            reads=list(job.reads),
            read_origins=list(job.parameters.get("read_origins", [])),
        )
        system = self._build_system(algorithm)
        if algorithm is Algorithm.KMER_COUNTING:
            report = system.run_kmer_counting(
                workload,
                k=int(job.parameters.get("k", 15)),
                num_counters=int(job.parameters.get("num_counters", 1 << 16)),
            )
            self.last_kmer_filter = system.kmer_global_filter
        elif algorithm is Algorithm.PREALIGNMENT:
            if not workload.read_origins:
                raise ValueError(
                    "pre-alignment jobs need parameters['read_origins'] "
                    "(candidate locations from a seeding job)"
                )
            report = system.run_prealignment(
                workload,
                max_edits=int(job.parameters.get("max_edits", 3)),
                candidates_per_read=int(
                    job.parameters.get("candidates_per_read", 4)),
            )
            self.last_prealign_results = system.prealign_results
        elif algorithm is Algorithm.HASH_SEEDING:
            report = system.run_hash_seeding(
                workload,
                k=int(job.parameters.get("k", 13)),
                bucket_load=int(job.parameters.get("bucket_load", 4)),
            )
        else:
            report = system.run_fm_seeding(workload)
        self.history.append(report)
        return report
