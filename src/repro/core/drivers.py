"""Workload drivers: one runner per target application, system-agnostic.

Layer 2 of the stack (see docs/ARCHITECTURE.md).  A *driver* owns
everything algorithm-specific about executing one application on a built
system: constructing (or fetching from the cross-run
:mod:`~repro.genomics.index_cache`) the index structures, asking the
memory-management framework to place them, turning every read into a
:class:`~repro.core.task.Task` whose generator runs the real algorithm,
and handing the task shards to the system's dispatch machinery.

The split with :class:`~repro.core.beacon.BeaconSystem` is deliberate:

* the **system** owns the machine — topology, fabric, NDP modules,
  allocator/planner, report assembly — plus the variant hooks drivers
  consult (``kmer_single_pass_default``, ``_bloom_region_for``,
  ``_transfer_filters``);
* the **driver** owns the workload — indexes, tasks, pass structure.

Any registered backend that exposes the system machinery can run any
driver, which is what lets MEDAL/NEST (different topology, same
machinery) and future backends share these four implementations
unchanged.

Determinism contract: drivers are faithful extractions of the original
``BeaconSystem.run_*`` bodies — task creation order, allocation order,
and dispatch order are preserved exactly, so simulated results are
bit-identical to the pre-refactor monolith (the perf harness enforces
this).  Index structures obtained from the cache are immutable;
the counting Bloom filters the simulation mutates are always
constructed fresh (:func:`repro.genomics.index_cache.fresh_bloom_filter`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import Algorithm
from repro.core.metrics import Report
from repro.core.task import (
    BloomAccessor,
    FmIndexAccessor,
    HashIndexAccessor,
    ReferenceAccessor,
    Task,
    fm_seeding_steps,
    hash_seeding_steps,
    kmer_insert_steps,
    kmer_query_steps,
    prealign_steps,
)
from repro.genomics.fm_index import FMIndex
from repro.genomics.index_cache import fresh_bloom_filter, get_cache
from repro.genomics.prealign import ShoujiFilter
from repro.genomics.workloads import SeedingWorkload, make_prealign_pairs
from repro.memmgmt.framework import AllocationRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.beacon import BeaconSystem


def profile_fm_blocks(fm: FMIndex, reads: Sequence[str],
                      sample_fraction: float = 0.1) -> np.ndarray:
    """Access-frequency profile used for hot-block placement.

    The framework profiles a sample of the input (the paper's "data
    type information ... provided to the BEACON framework"): early
    backward-search steps hammer a small set of occ blocks, and those
    belong on the CXLG-DIMMs.
    """
    counts = np.zeros(fm.num_blocks, dtype=np.int64)
    sample = reads[: max(1, int(len(reads) * sample_fraction))]
    for read in sample:
        for step in fm.search_trace(read):
            for block in step.blocks:
                counts[block] += 1
    return counts


class WorkloadDriver:
    """Base class: run one algorithm's workload on a built system.

    Subclasses set :attr:`algorithm` and implement :meth:`run`, which
    must consume the system (single-shot), build and place the
    algorithm's data structures, dispatch the task shards, and return
    the system's finished :class:`~repro.core.metrics.Report`.
    """

    #: The algorithm this driver implements.
    algorithm: ClassVar[Algorithm]

    def run(self, system: "BeaconSystem", workload: SeedingWorkload,
            **kwargs) -> Report:
        """Execute the workload on ``system``; returns its report."""
        raise NotImplementedError


class FmSeedingDriver(WorkloadDriver):
    """FM-index based DNA seeding (BWA-MEM's kernel)."""

    algorithm = Algorithm.FM_SEEDING

    def run(self, system: "BeaconSystem",
            workload: SeedingWorkload) -> Report:
        """FM-index based DNA seeding over one dataset."""
        system._consume()
        cache = get_cache()
        fm = cache.fm_index(workload.reference)
        hot = (
            cache.fm_hot_profile(
                fm, workload.reads[: max(1, int(len(workload.reads) * 0.1))],
                lambda: profile_fm_blocks(fm, workload.reads),
            )
            if system.flags.data_placement
            else None
        )
        region = system._allocate(
            AllocationRequest(
                application="dna_seeding", algorithm="fm_backward_search",
                dataset=workload.name, size_bytes=fm.size_bytes,
            ),
            lambda: system.planner.fm_index(
                "fm_index", fm.num_blocks, FMIndex.BLOCK_BYTES, hot
            ),
        )
        accessor = FmIndexAccessor(fm, region)
        tasks = [
            Task(
                algorithm=Algorithm.FM_SEEDING,
                steps=fm_seeding_steps(accessor, read),
                payload_bytes=system._task_payload(read),
            )
            for read in workload.reads
        ]
        system._dispatch_and_run(system._shard(tasks))
        return system._finish_report(
            Algorithm.FM_SEEDING, workload.name, len(tasks)
        )


class HashSeedingDriver(WorkloadDriver):
    """Hash-index (SMALT-style) DNA seeding."""

    algorithm = Algorithm.HASH_SEEDING

    def run(self, system: "BeaconSystem", workload: SeedingWorkload,
            k: int = 13, bucket_load: int = 4) -> Report:
        """Hash-index (SMALT-style) DNA seeding over one dataset."""
        system._consume()
        positions = len(workload.reference) - k + 1
        index = get_cache().hash_index(
            workload.reference, k=k, stride=1,
            num_buckets=max(64, positions // bucket_load),
        )
        directory = system._allocate(
            AllocationRequest(
                application="dna_seeding", algorithm="hash_index",
                dataset=workload.name, size_bytes=index.directory_bytes,
            ),
            lambda: system.planner.hash_directory(
                "hash_dir", index.directory_bytes
            ),
        )
        locations = system._allocate(
            AllocationRequest(
                application="dna_seeding", algorithm="hash_index",
                dataset=workload.name, size_bytes=index.locations_bytes,
            ),
            lambda: system.planner.hash_locations(
                "hash_loc", index.locations_bytes
            ),
        )
        accessor = HashIndexAccessor(index, directory, locations)
        tasks = [
            Task(
                algorithm=Algorithm.HASH_SEEDING,
                steps=hash_seeding_steps(accessor, read),
                payload_bytes=system._task_payload(read),
            )
            for read in workload.reads
        ]
        system._dispatch_and_run(system._shard(tasks))
        return system._finish_report(
            Algorithm.HASH_SEEDING, workload.name, len(tasks)
        )


class KmerCountingDriver(WorkloadDriver):
    """k-mer counting: single-pass global filter or NEST's multi-pass flow.

    The pass structure is selected by the system (its
    ``single_pass_kmer`` flag or ``kmer_single_pass_default`` variant
    trait); Bloom-filter *placement* goes through the system's
    ``_bloom_region_for`` hook so NEST can pin filters to DIMMs.  The
    functional filters are exposed on the system afterwards as
    ``system.kmer_filters`` (per module) / ``system.kmer_global_filter``.
    """

    algorithm = Algorithm.KMER_COUNTING

    def run(self, system: "BeaconSystem", workload: SeedingWorkload,
            k: int = 15, num_counters: int = 1 << 18) -> Report:
        """k-mer counting: single-pass when the flag is set, else multi-pass."""
        system._consume()
        if system.flags.single_pass_kmer or system.kmer_single_pass_default:
            return self._run_single_pass(system, workload, k, num_counters)
        return self._run_multi_pass(system, workload, k, num_counters)

    def _run_single_pass(self, system: "BeaconSystem", workload,
                         k: int, num_counters: int) -> Report:
        bloom = fresh_bloom_filter(num_counters)
        region = system._allocate(
            AllocationRequest(
                application="kmer_counting", algorithm="single_pass",
                dataset=workload.name, size_bytes=bloom.size_bytes,
            ),
            lambda: system.planner.bloom_filter(
                "bloom_global", bloom.size_bytes, home_switch=None
            ),
        )
        accessor = BloomAccessor(bloom, region)
        shards = system._shard(workload.reads)
        tasks_per_module = [
            [
                Task(
                    algorithm=Algorithm.KMER_COUNTING,
                    steps=kmer_insert_steps(accessor, read, k),
                    payload_bytes=system._task_payload(read),
                )
                for read in shard
            ]
            for shard in shards
        ]
        system._dispatch_and_run(tasks_per_module)
        system.kmer_global_filter = bloom
        system.kmer_filters = [bloom]
        return system._finish_report(
            Algorithm.KMER_COUNTING, workload.name, len(workload.reads)
        )

    def _run_multi_pass(self, system: "BeaconSystem", workload,
                        k: int, num_counters: int) -> Report:
        """NEST's flow: local build (pass 1) -> merge/broadcast -> recount
        (pass 2).  Both passes process the entire input (Section IV-D)."""
        locals_ = [
            fresh_bloom_filter(num_counters) for _ in system.ndp_modules
        ]
        regions = []
        for m, bloom in enumerate(locals_):
            regions.append(
                system._allocate(
                    AllocationRequest(
                        application="kmer_counting", algorithm="multi_pass",
                        dataset=workload.name, size_bytes=bloom.size_bytes,
                    ),
                    lambda m=m, bloom=bloom: system._bloom_region_for(
                        m, bloom.size_bytes
                    ),
                )
            )
        shards = system._shard(workload.reads)
        # Pass 1: every module builds its local filter over its shard.
        pass1 = [
            [
                Task(
                    algorithm=Algorithm.KMER_COUNTING,
                    steps=kmer_insert_steps(
                        BloomAccessor(locals_[m], regions[m]), read, k
                    ),
                    payload_bytes=system._task_payload(read),
                )
                for read in shard
            ]
            for m, shard in enumerate(shards)
        ]
        system._dispatch_and_run(pass1)
        # Merge: locals -> host, merge, broadcast the global filter back.
        global_filter = fresh_bloom_filter(num_counters)
        for bloom in locals_:
            global_filter.merge(bloom)
        system._transfer_filters(locals_[0].size_bytes)
        # Pass 2: every module re-processes its shard against its own copy
        # of the global filter (plain reads: abundance queries).
        pass2 = [
            [
                Task(
                    algorithm=Algorithm.KMER_COUNTING,
                    steps=kmer_query_steps(
                        BloomAccessor(global_filter, regions[m]), read, k
                    ),
                    payload_bytes=system._task_payload(read),
                )
                for read in shard
            ]
            for m, shard in enumerate(shards)
        ]
        system._dispatch_and_run(pass2)
        system.kmer_global_filter = global_filter
        system.kmer_filters = locals_
        return system._finish_report(
            Algorithm.KMER_COUNTING, workload.name, 2 * len(workload.reads)
        )


class PrealignmentDriver(WorkloadDriver):
    """Shouji-style DNA pre-alignment over seeding candidates."""

    algorithm = Algorithm.PREALIGNMENT

    def run(self, system: "BeaconSystem", workload: SeedingWorkload,
            max_edits: int = 3, candidates_per_read: int = 4) -> Report:
        """Shouji-style pre-alignment over seeding candidates."""
        system._consume()
        pairs = make_prealign_pairs(workload, max_edits, candidates_per_read)
        ref_bytes = -(-len(workload.reference) // 4)
        region = system._allocate(
            AllocationRequest(
                application="prealignment", algorithm="shouji",
                dataset=workload.name, size_bytes=ref_bytes,
            ),
            lambda: system.planner.reference("reference", ref_bytes),
        )
        accessor = ReferenceAccessor(region)
        shouji = ShoujiFilter(max_edits=max_edits)
        system.prealign_results = []
        tasks = [
            Task(
                algorithm=Algorithm.PREALIGNMENT,
                steps=prealign_steps(
                    accessor, shouji, pair, pair.window_start,
                    system.prealign_results,
                ),
                payload_bytes=system._task_payload(pair.read),
            )
            for pair in pairs
        ]
        system._dispatch_and_run(system._shard(tasks))
        return system._finish_report(
            Algorithm.PREALIGNMENT, workload.name, len(tasks)
        )


#: Algorithm -> shared driver instance.  Drivers are stateless (all state
#: lives on the system or in locals), so one instance serves every run.
DRIVERS: Dict[Algorithm, WorkloadDriver] = {
    driver.algorithm: driver
    for driver in (
        FmSeedingDriver(),
        HashSeedingDriver(),
        KmerCountingDriver(),
        PrealignmentDriver(),
    )
}


def driver_for(algorithm: Algorithm) -> WorkloadDriver:
    """The shared driver instance for ``algorithm`` (KeyError if none)."""
    return DRIVERS[algorithm]
