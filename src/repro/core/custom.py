"""Extension to other applications (Section V).

The paper notes BEACON "can be easily extended as a practical,
cost-effective, and scalable accelerator for other memory-bound
applications, such as image processing, graph processing, and database
searching, by replacing the PEs within the NDP module".  This module is
that extension point: a :class:`CustomApplication` describes a new
fixed-function engine (name + compute latency) and produces tasks from a
user-supplied step generator, which the unchanged NDP machinery executes
against regions the user allocates through the memory-management framework.

Example — an in-memory database index probe accelerator::

    app = CustomApplication(name="db_probe", compute_cycles=24)
    region = system.allocate_custom_region(
        "btree", size_bytes=1 << 20, spatially_local=False)
    tasks = [app.task(probe_steps(region, key)) for key in keys]
    report = system.run_custom(app, tasks)

See ``examples/database_search.py`` for a complete runnable scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.config import Algorithm
from repro.core.task import ComputeStep, MemStep, Step, Task


@dataclass(frozen=True)
class CustomApplication:
    """A replacement PE: fixed-function engine for a new application."""

    name: str
    #: The engine's per-operation latency in DRAM cycles (what Design
    #: Compiler synthesis would report for the new fixed-function block).
    compute_cycles: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application needs a name")
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")

    def task(self, steps: Iterator[Step], payload_bytes: int = 32) -> Task:
        """Wrap a user step generator in a schedulable task.

        Custom tasks are accounted under the GENERIC algorithm bucket; the
        step generator decides the memory behaviour, exactly as the
        built-in engines do.
        """
        return Task(
            algorithm=Algorithm.CUSTOM,
            steps=steps,
            payload_bytes=payload_bytes,
        )

    def compute(self) -> ComputeStep:
        """One engine operation."""
        return ComputeStep(self.compute_cycles)


def probe_steps(app: CustomApplication, addresses, region_base: int,
                access_bytes: int = 8) -> Iterator[Step]:
    """Generic dependent-pointer-chase step generator.

    Walks ``addresses`` (region-local offsets) one at a time with an engine
    operation between accesses — the access pattern of index traversals in
    database searching (Kocberber et al., the paper's citation [40]).
    """
    from repro.core.task import AccessSpec
    from repro.dram.request import DataClass

    for offset in addresses:
        yield app.compute()
        yield MemStep([
            AccessSpec(addr=region_base + offset, size=access_bytes,
                       data_class=DataClass.GENERIC)
        ])
