"""Tasks and task-step generation.

A **task** is "a DNA sequence to be processed with related information"
(Section IV-B).  Execution is *execution-driven*: each task wraps a Python
generator that runs the real algorithm (from :mod:`repro.genomics`) and
yields alternating compute/memory steps; the PEs execute those steps
against the simulated pool, so the addresses are the algorithm's actual
addresses and the functional results (seeds found, counters incremented,
filter verdicts) are real.

Step protocol
-------------
* :class:`ComputeStep` — the PE is busy for N cycles.
* :class:`MemStep` — issue the listed accesses in parallel; the task parks
  in the Task Scheduler's incoming queue (freeing its PE) until every
  operand returns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, NamedTuple, Optional, Sequence, Union

from repro.core.config import PE_COMPUTE_CYCLES, Algorithm
from repro.dram.request import AccessKind, DataClass
from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.fm_index import FMIndex
from repro.genomics.hash_index import HashIndex
from repro.genomics.kmer import iter_kmers
from repro.genomics.prealign import PrealignResult, ShoujiFilter
from repro.genomics.workloads import PrealignPair
from repro.memmgmt.regions import Region


# The step records are NamedTuples rather than frozen dataclasses: the
# step generators allocate one per simulated compute/memory step, and
# tuple construction avoids the per-field ``object.__setattr__`` cost
# frozen dataclasses pay on that path.


class AccessSpec(NamedTuple):
    """One memory access a task step needs."""

    addr: int
    size: int
    kind: AccessKind = AccessKind.READ
    data_class: DataClass = DataClass.GENERIC


class ComputeStep(NamedTuple):
    """PE-busy computation for ``cycles`` DRAM cycles."""

    cycles: int


class MemStep(NamedTuple):
    """Parallel memory accesses; the task resumes when all complete."""

    accesses: Sequence[AccessSpec]


Step = Union[ComputeStep, MemStep]

_task_ids = itertools.count()


@dataclass
class Task:
    """A unit of work scheduled onto the PEs."""

    algorithm: Algorithm
    steps: Iterator[Step]
    payload_bytes: int = 32
    task_id: int = field(default_factory=lambda: next(_task_ids))
    on_done: Optional[Callable[["Task"], None]] = None
    #: Outstanding operand count while parked (Task Scheduler scoreboard).
    waiting_operands: int = 0
    started_at: Optional[int] = None
    finished_at: Optional[int] = None
    #: Per-(task, module) callback cache filled in by the NDP module so a
    #: task's thousands of compute resumptions and operand returns reuse
    #: two callables instead of allocating a closure per event.  ``cb_owner``
    #: identifies the module the cached pair is bound to; task migration
    #: (MEDAL) moves tasks between modules, which invalidates the pair.
    cb_owner: object = None
    resume_cb: Optional[Callable[[], None]] = None
    operand_cb: Optional[Callable[..., None]] = None


# ---------------------------------------------------------------------------
# Region accessors: genomics data structure <-> pool virtual addresses.
# ---------------------------------------------------------------------------


class FmIndexAccessor:
    """FM-index blocks inside a region."""

    def __init__(self, fm: FMIndex, region: Region) -> None:
        self.fm = fm
        self.region = region

    def block_addr(self, block: int) -> int:
        return self.region.base + self.fm.block_address(block)


class HashIndexAccessor:
    """Hash directory + location store across two regions."""

    def __init__(self, index: HashIndex, directory: Region, locations: Region) -> None:
        self.index = index
        self.directory = directory
        self.locations = locations

    def header_addr(self, bucket: int) -> int:
        return self.directory.base + self.index.header_address(bucket)

    def location_addr(self, byte_offset_in_store: int) -> int:
        return self.locations.base + byte_offset_in_store


class BloomAccessor:
    """Counting Bloom filter counters inside a region.

    Counters are sub-byte; an access touches the byte holding the slot.
    """

    def __init__(self, bloom: CountingBloomFilter, region: Region) -> None:
        self.bloom = bloom
        self.region = region

    def slot_addr(self, slot: int) -> int:
        return self.region.base + (slot * self.bloom.counter_bits) // 8


class ReferenceAccessor:
    """Reference genome bases (2-bit packed) inside a region."""

    def __init__(self, region: Region, bases_per_byte: int = 4) -> None:
        self.region = region
        self.bases_per_byte = bases_per_byte

    def window_specs(self, start: int, length: int) -> List[AccessSpec]:
        """64 B-chunked reads covering ``length`` bases at ``start``."""
        first_byte = start // self.bases_per_byte
        last_byte = (start + length - 1) // self.bases_per_byte
        total = last_byte - first_byte + 1
        specs = []
        for off in range(0, total, 64):
            specs.append(
                AccessSpec(
                    addr=self.region.base + first_byte + off,
                    size=min(64, total - off),
                    data_class=DataClass.REFERENCE_WINDOW,
                )
            )
        return specs


# ---------------------------------------------------------------------------
# Per-algorithm step generators.
# ---------------------------------------------------------------------------


def fm_seeding_steps(accessor: FmIndexAccessor, read: str) -> Iterator[Step]:
    """FM-index seeding: one backward-search step per read symbol.

    Each step costs the FM engine's 16 cycles and two 32 B occ-block reads
    (deduplicated when top/bot share a block), exactly MEDAL/BEACON's
    kernel.
    """
    compute = PE_COMPUTE_CYCLES[Algorithm.FM_SEEDING]
    for step in accessor.fm.search_trace(read):
        yield ComputeStep(compute)
        yield MemStep(
            [
                AccessSpec(
                    addr=accessor.block_addr(block),
                    size=FMIndex.BLOCK_BYTES,
                    data_class=DataClass.FM_INDEX_BLOCK,
                )
                for block in step.blocks
            ]
        )


def hash_seeding_steps(accessor: HashIndexAccessor, read: str) -> Iterator[Step]:
    """Hash-index seeding: hash -> directory read -> stream the bucket.

    A bucket's matching locations are contiguous in the location store, so
    the streaming reads are spatially local (the layout the data-aware
    mapping keeps row-major).
    """
    compute = PE_COMPUTE_CYCLES[Algorithm.HASH_SEEDING]
    for query in accessor.index.seed_read(read):
        yield ComputeStep(compute)
        yield MemStep(
            [
                AccessSpec(
                    addr=accessor.header_addr(query.bucket),
                    size=8,
                    data_class=DataClass.HASH_DIRECTORY,
                )
            ]
        )
        if query.location_addrs:
            store_base = query.location_addrs[0] - accessor.index.directory_bytes
            total = len(query.location_addrs) * 4
            yield MemStep(
                [
                    AccessSpec(
                        addr=accessor.location_addr(store_base + off),
                        size=min(64, total - off),
                        data_class=DataClass.HASH_LOCATIONS,
                    )
                    for off in range(0, total, 64)
                ]
            )


def kmer_insert_steps(accessor: BloomAccessor, read: str, k: int) -> Iterator[Step]:
    """k-mer counting insertion: hash then ``h`` atomic counter increments.

    The functional filter is updated as a side effect, so after the
    simulation the counter values are the real abundances (within Bloom
    overcount), and the RMW data-race handling of the Atomic Engines
    (Fig. 7) is exercised by every increment.
    """
    compute = PE_COMPUTE_CYCLES[Algorithm.KMER_COUNTING]
    for kmer in iter_kmers(read, k):
        yield ComputeStep(compute)
        slots = accessor.bloom.insert(kmer)
        yield MemStep(
            [
                AccessSpec(
                    addr=accessor.slot_addr(slot),
                    size=1,
                    kind=AccessKind.ATOMIC_RMW,
                    data_class=DataClass.BLOOM_COUNTER,
                )
                for slot in slots
            ]
        )


def kmer_query_steps(accessor: BloomAccessor, read: str, k: int) -> Iterator[Step]:
    """Pass-2 counting: plain reads of the merged filter's counters."""
    compute = PE_COMPUTE_CYCLES[Algorithm.KMER_COUNTING]
    for kmer in iter_kmers(read, k):
        yield ComputeStep(compute)
        slots = accessor.bloom.slots(kmer)
        yield MemStep(
            [
                AccessSpec(
                    addr=accessor.slot_addr(slot),
                    size=1,
                    data_class=DataClass.BLOOM_COUNTER,
                )
                for slot in slots
            ]
        )


def prealign_steps(
    accessor: ReferenceAccessor,
    shouji: ShoujiFilter,
    pair: PrealignPair,
    window_start: int,
    results: List[PrealignResult],
) -> Iterator[Step]:
    """Pre-alignment: fetch the candidate window, run the Shouji grid."""
    yield MemStep(accessor.window_specs(window_start, len(pair.window)))
    yield ComputeStep(PE_COMPUTE_CYCLES[Algorithm.PREALIGNMENT])
    results.append(shouji.filter(pair.read, pair.window))
