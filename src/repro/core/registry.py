"""Backend registry: every evaluated system behind one factory protocol.

Layer 1 of the stack (see docs/ARCHITECTURE.md).  The evaluation compares
six backends — BEACON-D, BEACON-S, the MEDAL and NEST DDR-DIMM NDP
baselines, the plain DDR-NDP substrate, and the analytic 48-thread CPU
model — and before this registry existed each experiment module
hand-picked constructors with its own ``if name == ...`` ladder.  Now
every backend registers a :class:`SystemFactory` under its canonical
name, and :func:`build_system` is the single construction path the
experiment runner, the scenario layer, and the CLI all share.

The protocol is intentionally tiny: a factory has a ``name``, a
``description``, and a ``build(config, flags, label="")`` returning a
fresh single-shot system (anything exposing ``run_algorithm``).  What a
factory does with ``config``/``flags`` is its own business — the DDR
baselines pin vanilla flags (their papers have no BEACON optimizations)
and the CPU model is analytic and ignores both.

Built-in factories register lazily on first lookup rather than at import
time: the baseline classes import :mod:`repro.core.beacon`, which is
part of the same package as this module, so importing them here at
module scope would create a cycle.  By the time anyone *builds* a
system, every module involved is fully initialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Protocol, Tuple

from repro.core.config import BeaconConfig, OptimizationFlags


class SystemFactory(Protocol):
    """What the registry stores: a named builder of single-shot systems."""

    name: str
    description: str

    def build(self, config: BeaconConfig, flags: OptimizationFlags,
              label: str = ""):
        """Return a fresh system ready to run exactly one workload."""
        ...


@dataclass(frozen=True)
class SimulatedSystemFactory:
    """Factory over a :class:`~repro.core.beacon.BeaconSystem` subclass.

    ``accepts_flags`` distinguishes the BEACON variants (whose
    constructor takes the optimization flags) from the DDR baselines
    (whose constructor pins vanilla flags; the flags argument is
    accepted and ignored, preserving the historical ``build_system``
    contract).
    """

    name: str
    description: str
    cls: type
    accepts_flags: bool = True
    aliases: Tuple[str, ...] = ()

    def build(self, config: BeaconConfig, flags: OptimizationFlags,
              label: str = ""):
        """Instantiate one single-shot simulated system."""
        if self.accepts_flags:
            return self.cls(config=config, flags=flags,
                            label=label or self.name)
        return self.cls(config=config, label=label or self.name)


@dataclass(frozen=True)
class AnalyticSystemFactory:
    """Factory over an analytic (non-simulated) model such as the CPU
    baseline; ``config``/``flags`` do not apply and are ignored."""

    name: str
    description: str
    make: Callable[[], object]
    aliases: Tuple[str, ...] = ()

    def build(self, config: BeaconConfig, flags: OptimizationFlags,
              label: str = ""):
        """Instantiate the analytic model (config and flags ignored)."""
        return self.make()


#: name -> factory.  Aliases resolve through :data:`_ALIASES`.
_BACKENDS: Dict[str, SystemFactory] = {}
_ALIASES: Dict[str, str] = {}
_builtins_registered = False


def register_backend(factory: SystemFactory,
                     aliases: Tuple[str, ...] = ()) -> SystemFactory:
    """Add ``factory`` to the registry (its declared aliases included).

    Raises ``ValueError`` on a name or alias collision — two backends
    answering to one name would make ``build_system`` ambiguous.
    """
    names = (factory.name,) + tuple(aliases) \
        + tuple(getattr(factory, "aliases", ()))
    for name in names:
        if name in _BACKENDS or name in _ALIASES:
            raise ValueError(f"backend name {name!r} is already registered")
    _BACKENDS[factory.name] = factory
    for alias in names[1:]:
        _ALIASES[alias] = factory.name
    return factory


def _ensure_builtins() -> None:
    """Register the six evaluated backends (idempotent, import-cycle-safe)."""
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    from repro.baselines.cpu import CpuModel
    from repro.baselines.ddr import DdrNdpSystem
    from repro.baselines.medal import Medal
    from repro.baselines.nest import Nest
    from repro.core.beacon import BeaconD, BeaconS

    for cls, accepts_flags, aliases in (
        (BeaconD, True, ()),
        (BeaconS, True, ()),
        (Medal, False, ()),
        (Nest, False, ()),
        (DdrNdpSystem, False, ("ddr",)),
    ):
        register_backend(SimulatedSystemFactory(
            name=cls.variant,
            description=cls.backend_description,
            cls=cls,
            accepts_flags=accepts_flags,
            aliases=aliases,
        ))
    register_backend(AnalyticSystemFactory(
        name="cpu",
        description=CpuModel.backend_description,
        make=CpuModel,
        aliases=("cpu48",),
    ))


def get_backend(name: str) -> SystemFactory:
    """The factory registered under ``name`` (or an alias of it).

    Raises ``ValueError`` for unknown names, listing what exists.
    """
    _ensure_builtins()
    canonical = _ALIASES.get(name, name)
    try:
        return _BACKENDS[canonical]
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; registered backends: "
            f"{backend_names()}"
        ) from None


def backend_names(include_aliases: bool = False) -> List[str]:
    """Canonical backend names, registration order (aliases optional)."""
    _ensure_builtins()
    names = list(_BACKENDS)
    if include_aliases:
        names += sorted(_ALIASES)
    return names


def build_system(name: str, config: BeaconConfig,
                 flags: OptimizationFlags, label: str = ""):
    """Instantiate a (single-shot) system by registered name.

    The one construction path of the stack: the experiment runner, the
    scenario specs, and the CLI all come through here.
    """
    return get_backend(name).build(config, flags, label=label)
