"""BEACON system assembly: the machine layer of the stack.

:class:`BeaconSystem` builds one complete simulated machine — pool topology,
NDP modules, Switch-Logic, memory-management framework — for one
(variant, optimization-flags) point.  *Running* a workload on the built
machine is the job of the workload drivers (:mod:`repro.core.drivers`):
the system exposes the machinery drivers need (allocation, task
dispatch, sharding, report assembly) plus the variant hooks that make
MEDAL/NEST/BEACON-S differ (Bloom-filter placement, filter-merge
communication, the default k-mer pass structure), and thin ``run_*``
wrappers that delegate to the shared driver instances.

A system instance is single-shot: build, run one workload, read the report.
The experiment harness creates a fresh instance per matrix point — via
:func:`repro.core.registry.build_system` — which keeps runs independent
and deterministic; running a second workload on a consumed system raises
:class:`~repro.sim.engine.SimulationError`.
"""

from __future__ import annotations

from functools import partial
from typing import List, Sequence

import numpy as np

from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.core.drivers import driver_for, profile_fm_blocks
from repro.core.hwmodel import PE_HARDWARE
from repro.core.metrics import Report
from repro.core.ndp_module import NdpModule
from repro.core.switch_logic import SwitchLogicD, SwitchLogicS
from repro.core.task import Task
from repro.cxl.flit import MessageKind
from repro.cxl.topology import MemoryPool
from repro.dram.dimm import DimmKind
from repro.genomics.fm_index import FMIndex
from repro.genomics.workloads import SeedingWorkload
from repro.memmgmt.allocator import PoolAllocator
from repro.memmgmt.framework import AllocationRequest, MemoryManagementFramework
from repro.memmgmt.placement import PlacementPlanner
from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationError


class BeaconSystem:
    """One simulated accelerator system (base for BEACON-D / BEACON-S)."""

    #: Subclasses set these.
    variant: str = "beacon"
    pe_hw_key: str = "BEACON"
    #: One-line description shown by the backend registry.
    backend_description: str = "abstract BEACON system (not registered)"
    #: Whether k-mer counting uses the single-pass global-filter flow even
    #: without the BEACON-S flag.  BEACON-D's Atomic Engines make the
    #: global filter the natural flow (one pass over the input, RMWs
    #: resolved at the owning switch); NEST and BEACON-S-without-the-
    #: optimization run the multi-pass flow of Section IV-D.
    kmer_single_pass_default: bool = False

    def __init__(
        self,
        config: BeaconConfig = BeaconConfig(),
        flags: OptimizationFlags = OptimizationFlags(),
        label: str = "",
    ) -> None:
        self.config = config.with_flags(flags)
        self.flags = flags
        self.label = label or self.variant
        self.engine = Engine()
        self.root = Component(self.engine, self.label)
        self.pool = MemoryPool(
            self.engine, "pool", self.root, self.config.comm,
            geometry=self.config.geometry, timing=self.config.timing,
        )
        self.allocator = PoolAllocator()
        self.ndp_modules: List[NdpModule] = []
        self._build_topology()
        self.framework = MemoryManagementFramework(
            self.engine, "framework", self.root, self.pool, self.allocator
        )
        self.planner = self._make_planner()
        self.framework.dedicate_dimms(self.allocator.all_dimms(), owner=self.label)
        self._consumed = False

    # -- construction (variant-specific) -------------------------------------------

    def _build_topology(self) -> None:
        raise NotImplementedError

    def _make_planner(self) -> PlacementPlanner:
        cfg = self.config
        fine = (
            cfg.coalesce_chips
            if self.flags.multi_chip_coalescing
            else cfg.fine_grained_chips
        )
        return PlacementPlanner(
            self.allocator, cfg.geometry,
            optimized=self.flags.data_placement,
            fine_grained_chips=fine,
            near_fraction=cfg.near_fraction,
        )

    # -- machinery the drivers use ----------------------------------------------------

    def _allocate(self, request: AllocationRequest, build) -> object:
        response = self.framework.allocate(request, build)
        if not response.success:
            raise RuntimeError(f"allocation failed: {response.error}")
        return response.region

    def _dispatch_and_run(self, tasks_per_module: Sequence[Sequence[Task]]) -> None:
        """Stream tasks host -> NDP modules, then run to completion."""
        total = sum(len(t) for t in tasks_per_module)
        if total == 0:
            return
        fabric = self.pool.fabric
        assert fabric.host is not None
        before = sum(m.tasks_completed for m in self.ndp_modules)
        for module, tasks in zip(self.ndp_modules, tasks_per_module):
            route = fabric.route(fabric.host.name, module.node)
            submit = module.submit_task
            for task in tasks:
                fabric.send(
                    route, MessageKind.TASK, task.payload_bytes,
                    on_delivered=partial(submit, task),
                )
        self.engine.run()
        completed = sum(m.tasks_completed for m in self.ndp_modules) - before
        if completed != total:
            raise SimulationError(
                f"{self.label}: {completed}/{total} tasks completed; "
                "the simulation deadlocked"
            )

    def _shard(self, items: Sequence) -> List[List]:
        """Round-robin split across the NDP modules."""
        shards: List[List] = [[] for _ in self.ndp_modules]
        for i, item in enumerate(items):
            shards[i % len(shards)].append(item)
        return shards

    def _task_payload(self, read: str) -> int:
        """TASK message payload: 2-bit-packed read + metadata."""
        return len(read) // 4 + 8

    def _finish_report(
        self, algorithm: Algorithm, dataset: str, tasks_completed: int
    ) -> Report:
        end = self.engine.now
        for dimm in self.pool.dimms:
            dimm.energy.finalize(end)
        stats = self.root.stats
        dram_nj = (
            stats.total("energy_act_nj")
            + stats.total("energy_rw_nj")
            + stats.total("energy_refresh_nj")
            + stats.total("energy_background_nj")
        )
        comm_nj = stats.total("energy_pj") / 1000.0
        busy = sum(m.pes.total_compute_cycles for m in self.ndp_modules)
        num_pes = sum(m.pes.num_pes for m in self.ndp_modules)
        compute_nj = PE_HARDWARE[self.pe_hw_key].compute_energy_nj(
            busy_cycles=busy, total_cycles=end,
            tck_ns=self.config.timing.tck_ns, num_pes=num_pes,
        )
        return Report(
            label=self.label,
            system=self.variant,
            algorithm=algorithm.value,
            dataset=dataset,
            runtime_cycles=end,
            tck_ns=self.config.timing.tck_ns,
            energy_dram_nj=dram_nj,
            energy_comm_nj=comm_nj,
            energy_compute_nj=compute_nj,
            tasks_completed=tasks_completed,
            mem_requests=int(stats.total("mem_requests")),
            wire_bytes=stats.total("wire_bytes"),
            useful_bytes=stats.total("useful_bytes"),
            extra={
                "pe_utilization": float(np.mean(
                    [m.pes.utilization(end) for m in self.ndp_modules]
                )) if self.ndp_modules else 0.0,
                "local_requests": stats.total("local_requests"),
                "host_detours": stats.total("detour_messages"),
                "in_switch_turnarounds": stats.total("in_switch_turnarounds"),
                "dram_activations": float(sum(
                    d.total_activations for d in self.pool.dimms
                )),
            },
        )

    def _consume(self) -> None:
        if self._consumed:
            raise SimulationError(
                f"{self.label}: {type(self).__name__} instances are "
                "single-shot and this one already ran a workload (its event "
                "engine is drained and its statistics are final); build a "
                "fresh system per run via repro.core.registry.build_system"
            )
        self._consumed = True

    # -- variant hooks the k-mer driver consults -----------------------------------

    def _bloom_region_for(self, module_index: int, size: int):
        """Placement home of one module's Bloom filter (variant hook)."""
        module = self.ndp_modules[module_index]
        home_switch = self.pool.owner_switch(self._module_dimm(module_index)) \
            if module.node in self.pool.dimm_nodes else module.node
        return self.planner.bloom_filter(
            f"bloom{module_index}", size, home_switch=home_switch
        )

    def _module_dimm(self, module_index: int) -> int:
        module = self.ndp_modules[module_index]
        return self.pool.dimm_nodes.index(module.node)

    def _transfer_filters(self, filter_bytes: int) -> None:
        """Merge-phase communication: locals to the host, global back out."""
        fabric = self.pool.fabric
        assert fabric.host is not None
        pending = {"n": 2 * len(self.ndp_modules)}

        def arrived() -> None:
            pending["n"] -= 1

        for module in self.ndp_modules:
            up = fabric.route(module.node, fabric.host.name)
            down = fabric.route(fabric.host.name, module.node)
            fabric.send(up, MessageKind.CONTROL, filter_bytes, on_delivered=arrived)
            fabric.send(down, MessageKind.CONTROL, filter_bytes, on_delivered=arrived)
        self.engine.run()
        if pending["n"]:
            raise SimulationError("filter merge transfers did not complete")

    # -- workload runners (delegating to repro.core.drivers) -------------------------

    def _profile_fm_blocks(self, fm: FMIndex, reads: Sequence[str],
                           sample_fraction: float = 0.1) -> np.ndarray:
        """Access-frequency profile used for hot-block placement (see
        :func:`repro.core.drivers.profile_fm_blocks`)."""
        return profile_fm_blocks(fm, reads, sample_fraction)

    def run_fm_seeding(self, workload: SeedingWorkload) -> Report:
        """FM-index based DNA seeding over one dataset."""
        return driver_for(Algorithm.FM_SEEDING).run(self, workload)

    def run_hash_seeding(
        self,
        workload: SeedingWorkload,
        k: int = 13,
        bucket_load: int = 4,
    ) -> Report:
        """Hash-index (SMALT-style) DNA seeding over one dataset."""
        return driver_for(Algorithm.HASH_SEEDING).run(
            self, workload, k=k, bucket_load=bucket_load
        )

    def run_kmer_counting(
        self,
        workload: SeedingWorkload,
        k: int = 15,
        num_counters: int = 1 << 18,
    ) -> Report:
        """k-mer counting: single-pass when the flag is set, else multi-pass.

        Returns the report; the functional filters are exposed afterwards as
        ``self.kmer_filters`` (per module) / ``self.kmer_global_filter``.
        """
        return driver_for(Algorithm.KMER_COUNTING).run(
            self, workload, k=k, num_counters=num_counters
        )

    def run_prealignment(
        self,
        workload: SeedingWorkload,
        max_edits: int = 3,
        candidates_per_read: int = 4,
    ) -> Report:
        """Shouji-style pre-alignment over seeding candidates."""
        return driver_for(Algorithm.PREALIGNMENT).run(
            self, workload, max_edits=max_edits,
            candidates_per_read=candidates_per_read,
        )

    # -- Section V extension point -----------------------------------------------------------------

    def allocate_custom_region(self, name: str, size_bytes: int,
                               spatially_local: bool = False):
        """Allocate a region for a custom application (Section V).

        ``spatially_local`` picks between the two data-aware mapping
        families: row-major placement for streaming/sequential structures,
        or fine-grained interleaving for random-probe structures.
        """
        build = (
            (lambda: self.planner.reference(name, size_bytes))
            if spatially_local
            else (lambda: self.planner.hash_directory(name, size_bytes))
        )
        return self._allocate(
            AllocationRequest(application="custom", algorithm="custom",
                              dataset=name, size_bytes=size_bytes),
            build,
        )

    def run_custom(self, app, tasks: Sequence[Task]) -> Report:
        """Run a custom application's tasks on the unchanged NDP machinery."""
        self._consume()
        tasks = list(tasks)
        self._dispatch_and_run(self._shard(tasks))
        return self._finish_report(Algorithm.CUSTOM, app.name, len(tasks))

    # -- generic dispatch --------------------------------------------------------------------------

    def run_algorithm(self, algorithm: Algorithm, workload: SeedingWorkload,
                      **kwargs) -> Report:
        """Run any of the four applications by enum (harness convenience)."""
        return driver_for(algorithm).run(self, workload, **kwargs)


class BeaconD(BeaconSystem):
    """BEACON-D: Processing-In-DIMM on CXLG-DIMMs (Fig. 4 (a))."""

    variant = "beacon-d"
    pe_hw_key = "BEACON"
    backend_description = ("BEACON-D: Processing-In-DIMM NDP modules on "
                           "CXLG-DIMMs (Fig. 4 (a))")
    kmer_single_pass_default = True

    def _build_topology(self) -> None:
        cfg = self.config
        fabric = self.pool.fabric
        fabric.add_host()
        self.switch_logics: List[SwitchLogicD] = []
        for s in range(cfg.num_switches):
            switch = fabric.add_switch(f"sw{s}")
            self.switch_logics.append(
                SwitchLogicD(
                    self.engine, f"swlogic{s}", self.root, switch, self.pool,
                    num_atomic_engines=cfg.atomic_engines_per_switch,
                    atomic_compute_cycles=cfg.atomic_compute_cycles,
                )
            )
            for j in range(cfg.dimms_per_switch):
                is_cxlg = j < cfg.cxlg_per_switch
                node = f"d{s}.{j}"
                index = self.pool.add_dimm(
                    node, f"sw{s}",
                    DimmKind.CXLG if is_cxlg else DimmKind.UNMODIFIED_CXL,
                )
                self.allocator.register_dimm(
                    index, node, f"sw{s}", is_cxlg=is_cxlg,
                    tenant_bytes=1 << 20,
                )
                if is_cxlg:
                    self.ndp_modules.append(
                        NdpModule(
                            self.engine, f"ndp{index}", self.root, node=node,
                            num_pes=cfg.pes_per_cxlg, pool=self.pool,
                            region_map=self.allocator.region_map,
                        )
                    )


class BeaconS(BeaconSystem):
    """BEACON-S: Processing-In-Switch, all DIMMs unmodified (Fig. 4 (b))."""

    variant = "beacon-s"
    pe_hw_key = "BEACON"
    backend_description = ("BEACON-S: Processing-In-Switch NDP modules, all "
                           "DIMMs unmodified (Fig. 4 (b))")

    def _build_topology(self) -> None:
        cfg = self.config
        fabric = self.pool.fabric
        fabric.add_host()
        self.switch_logics: List[SwitchLogicS] = []
        for s in range(cfg.num_switches):
            switch = fabric.add_switch(f"sw{s}")
            logic = SwitchLogicS(
                self.engine, f"swlogic{s}", self.root, switch, self.pool,
                region_map=self.allocator.region_map,
                num_pes=cfg.pes_per_switch,
                atomic_compute_cycles=cfg.atomic_compute_cycles,
            )
            self.switch_logics.append(logic)
            self.ndp_modules.append(logic.ndp)
            for j in range(cfg.dimms_per_switch):
                node = f"d{s}.{j}"
                index = self.pool.add_dimm(node, f"sw{s}", DimmKind.UNMODIFIED_CXL)
                self.allocator.register_dimm(
                    index, node, f"sw{s}", is_cxlg=False,
                    tenant_bytes=1 << 20,
                )
