"""Performance / energy reports.

Every experiment run produces a :class:`Report`: runtime, the three-way
energy breakdown the paper plots in Fig. 17 (computation / DRAM /
communication), and derived ratios (speedup vs a baseline report, energy
reduction, % of the idealized-communication twin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Report:
    """Outcome of one simulated run."""

    label: str
    system: str
    algorithm: str
    dataset: str
    runtime_cycles: int
    tck_ns: float
    energy_dram_nj: float
    energy_comm_nj: float
    energy_compute_nj: float
    tasks_completed: int
    mem_requests: int = 0
    wire_bytes: float = 0.0
    useful_bytes: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    # -- derived quantities ------------------------------------------------------

    @property
    def runtime_ns(self) -> float:
        return self.runtime_cycles * self.tck_ns

    @property
    def runtime_us(self) -> float:
        return self.runtime_ns / 1e3

    @property
    def total_energy_nj(self) -> float:
        return self.energy_dram_nj + self.energy_comm_nj + self.energy_compute_nj

    @property
    def comm_energy_fraction(self) -> float:
        """The Fig. 17 quantity: communication share of total energy."""
        total = self.total_energy_nj
        return self.energy_comm_nj / total if total > 0 else 0.0

    @property
    def compute_energy_fraction(self) -> float:
        total = self.total_energy_nj
        return self.energy_compute_nj / total if total > 0 else 0.0

    @property
    def bandwidth_efficiency(self) -> float:
        """Useful bytes per wire byte (what data packing improves)."""
        return self.useful_bytes / self.wire_bytes if self.wire_bytes else 0.0

    # -- comparisons ----------------------------------------------------------------

    def speedup_vs(self, other: "Report") -> float:
        """How much faster this run is than ``other`` (>1 == faster)."""
        if self.runtime_ns <= 0:
            raise ValueError("runtime must be positive")
        return other.runtime_ns / self.runtime_ns

    def energy_reduction_vs(self, other: "Report") -> float:
        """How much less energy this run uses than ``other`` (>1 == less)."""
        if self.total_energy_nj <= 0:
            raise ValueError("energy must be positive")
        return other.total_energy_nj / self.total_energy_nj

    def percent_of_ideal(self, ideal: "Report") -> float:
        """Performance as a fraction of the idealized-communication twin."""
        if self.runtime_ns <= 0:
            raise ValueError("runtime must be positive")
        return ideal.runtime_ns / self.runtime_ns

    def energy_percent_of_ideal(self, ideal: "Report") -> float:
        if self.total_energy_nj <= 0:
            raise ValueError("energy must be positive")
        return ideal.total_energy_nj / self.total_energy_nj

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.label}: {self.runtime_us:.1f} us, "
            f"{self.total_energy_nj / 1e3:.1f} uJ "
            f"(comm {self.comm_energy_fraction:.1%}, "
            f"compute {self.compute_energy_fraction:.1%}), "
            f"{self.tasks_completed} tasks"
        )

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-ready) with the derived metrics included."""
        return {
            "label": self.label,
            "system": self.system,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "runtime_cycles": self.runtime_cycles,
            "runtime_us": self.runtime_us,
            "tck_ns": self.tck_ns,
            "energy_dram_nj": self.energy_dram_nj,
            "energy_comm_nj": self.energy_comm_nj,
            "energy_compute_nj": self.energy_compute_nj,
            "total_energy_nj": self.total_energy_nj,
            "comm_energy_fraction": self.comm_energy_fraction,
            "tasks_completed": self.tasks_completed,
            "mem_requests": self.mem_requests,
            "wire_bytes": self.wire_bytes,
            "useful_bytes": self.useful_bytes,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Report":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            label=str(data["label"]),
            system=str(data["system"]),
            algorithm=str(data["algorithm"]),
            dataset=str(data["dataset"]),
            runtime_cycles=int(data["runtime_cycles"]),        # type: ignore[arg-type]
            tck_ns=float(data["tck_ns"]),                      # type: ignore[arg-type]
            energy_dram_nj=float(data["energy_dram_nj"]),      # type: ignore[arg-type]
            energy_comm_nj=float(data["energy_comm_nj"]),      # type: ignore[arg-type]
            energy_compute_nj=float(data["energy_compute_nj"]),  # type: ignore[arg-type]
            tasks_completed=int(data["tasks_completed"]),      # type: ignore[arg-type]
            mem_requests=int(data.get("mem_requests", 0)),     # type: ignore[arg-type]
            wire_bytes=float(data.get("wire_bytes", 0.0)),     # type: ignore[arg-type]
            useful_bytes=float(data.get("useful_bytes", 0.0)),  # type: ignore[arg-type]
            extra=dict(data.get("extra", {})),                 # type: ignore[arg-type]
        )

    def save_json(self, path) -> None:
        """Write the report as JSON."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load_json(cls, path) -> "Report":
        import json

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def geometric_mean(values) -> float:
    """Geometric mean (the paper's "on average" across datasets)."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))
