"""BEACON core: the paper's contribution.

Ties the substrates together into the evaluated systems:

* :class:`~repro.core.beacon.BeaconD` — Processing-In-DIMM: NDP modules on
  CXLG-DIMMs (Fig. 4 (a)).
* :class:`~repro.core.beacon.BeaconS` — Processing-In-Switch: NDP modules in
  the CXL switches (Fig. 4 (b)).

plus the NDP module internals (PEs, Task Scheduler, Address Translator,
I/O buffer), the Switch-Logic (Bus CtrL, Data Packer, MC, Atomic Engine),
the optimization flags, and the performance/energy reports.
"""

from repro.core.config import (
    Algorithm,
    BeaconConfig,
    OptimizationFlags,
    PE_COMPUTE_CYCLES,
)
from repro.core.hwmodel import PE_HARDWARE, PeHardware
from repro.core.task import AccessSpec, ComputeStep, MemStep, Task
from repro.core.metrics import Report
from repro.core.beacon import BeaconD, BeaconS, BeaconSystem
from repro.core.drivers import DRIVERS, WorkloadDriver, driver_for
from repro.core.registry import (
    SystemFactory,
    backend_names,
    build_system,
    get_backend,
    register_backend,
)

__all__ = [
    "AccessSpec",
    "Algorithm",
    "BeaconConfig",
    "BeaconD",
    "BeaconS",
    "BeaconSystem",
    "ComputeStep",
    "DRIVERS",
    "MemStep",
    "OptimizationFlags",
    "PE_COMPUTE_CYCLES",
    "PE_HARDWARE",
    "PeHardware",
    "Report",
    "SystemFactory",
    "Task",
    "WorkloadDriver",
    "backend_names",
    "build_system",
    "driver_for",
    "get_backend",
    "register_backend",
]
