"""Switch-Logic assembly (Fig. 5 (c)).

The Switch-Logic is the block BEACON adds inside each CXL switch.  Its
constituents live elsewhere in the codebase — the Bus Controller and
Switch-Bus in :class:`repro.cxl.switch.CxlSwitch`, the Data Packers on the
fabric's channels, the per-DIMM MCs in :class:`repro.dram.controller` — so
these classes are the *composition*: what one switch of each variant hosts.

* :class:`SwitchLogicD` (BEACON-D): Bus CtrL + Data Packer + MC + dedicated
  Atomic Engines.  Computation happens down on the CXLG-DIMMs.
* :class:`SwitchLogicS` (BEACON-S): the same, plus a full NDP module — and
  the PEs double as the atomic units, so the atomic bank is sized by the
  PE count instead of a dedicated engine count.
"""

from __future__ import annotations

from typing import Optional

from repro.core.atomic_engine import AtomicEngineBank
from repro.core.ndp_module import NdpModule
from repro.cxl.switch import CxlSwitch
from repro.cxl.topology import MemoryPool
from repro.memmgmt.regions import RegionMap
from repro.sim.component import Component


class SwitchLogicD(Component):
    """BEACON-D's Switch-Logic: memory-side services only."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        switch: CxlSwitch,
        pool: MemoryPool,
        num_atomic_engines: int,
        atomic_compute_cycles: int,
    ) -> None:
        super().__init__(engine, name, parent)
        self.switch = switch
        self.atomics = AtomicEngineBank(
            engine, "atomics", self, switch.name,
            num_engines=num_atomic_engines,
            compute_cycles=atomic_compute_cycles,
        )
        pool.register_atomic_engine(switch.name, self.atomics)


class SwitchLogicS(Component):
    """BEACON-S's Switch-Logic: NDP module + PE-backed atomics."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        switch: CxlSwitch,
        pool: MemoryPool,
        region_map: RegionMap,
        num_pes: int,
        atomic_compute_cycles: int,
    ) -> None:
        super().__init__(engine, name, parent)
        self.switch = switch
        self.ndp = NdpModule(
            engine, "ndp", self, node=switch.name,
            num_pes=num_pes, pool=pool, region_map=region_map,
        )
        # "we reuse these PEs as the Atomic Engines" — same population size.
        self.atomics = AtomicEngineBank(
            engine, "atomics", self, switch.name,
            num_engines=num_pes,
            compute_cycles=atomic_compute_cycles,
        )
        pool.register_atomic_engine(switch.name, self.atomics)
