"""Address Translator (Fig. 5 (b)).

Receives memory requests from the PEs and resolves them against the memory
management framework's region map: which DIMM, which bank/row/column under
that region's mapping scheme — then forwards them toward their destination.
Translation is pipelined with PE compute in hardware, so it adds bookkeeping
but no modelled latency.
"""

from __future__ import annotations

from repro.dram.request import MemoryRequest
from repro.memmgmt.regions import RegionMap
from repro.sim.component import Component


class AddressTranslator(Component):
    """Region-map resolver bound to one NDP module's fabric node."""

    def __init__(self, engine, name: str, parent, region_map: RegionMap,
                 node: str) -> None:
        super().__init__(engine, name, parent)
        self.region_map = region_map
        self.node = node

    def translate(self, request: MemoryRequest) -> MemoryRequest:
        """Fill in ``dimm_index`` + ``coord``; returns the same request."""
        self.region_map.translate(request, requester=self.node)
        self.stats.add("translations", 1)
        if request.data_class.fine_grained:
            self.stats.add("fine_grained", 1)
        return request
