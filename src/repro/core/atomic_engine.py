"""Atomic Engines: read-modify-write without data races (Fig. 7).

Parallel k-mer counting hits the classic RMW race: many tasks increment the
same Bloom counter concurrently.  BEACON serializes the arithmetic at the
memory side: an ATOMIC_RMW request travels to the switch that owns the
target DIMM, where an Atomic Engine performs read -> arithmetic -> write
against the DIMM and only then acknowledges the requester.

BEACON-D adds dedicated Atomic Engines to the Switch-Logic; BEACON-S reuses
its in-switch PEs for the arithmetic — structurally both are a bank of
``num_engines`` units in front of the switch's MC, which is what this class
models (the BEACON-S constructor simply passes its PE count).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque

from repro.cxl.topology import MemoryPool
from repro.dram.request import AccessKind, MemoryRequest
from repro.sim.component import Component

Respond = Callable[[MemoryRequest], None]


class AtomicEngineBank(Component):
    """``num_engines`` atomic units at one switch node."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        node: str,
        num_engines: int,
        compute_cycles: int = 4,
    ) -> None:
        super().__init__(engine, name, parent)
        if num_engines <= 0:
            raise ValueError("num_engines must be positive")
        if compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")
        self.node = node
        self.num_engines = num_engines
        self.compute_cycles = compute_cycles
        self.busy = 0
        self._backlog: Deque[Callable[[], None]] = deque()

    def perform(self, pool: MemoryPool, request: MemoryRequest, respond: Respond) -> None:
        """Serve one RMW.

        The MC issues the read immediately (many RMWs stay in flight at
        once); an engine is claimed only for the arithmetic window between
        data-return and write-issue (Fig. 7 steps 3-5), so the engines
        bound the *compute* rate, not the memory round trips.
        """
        if request.kind is not AccessKind.ATOMIC_RMW:
            raise ValueError("AtomicEngineBank only serves ATOMIC_RMW requests")
        self.stats.add("rmw_ops", 1)
        read = MemoryRequest(
            addr=request.addr, size=request.size, kind=AccessKind.READ,
            data_class=request.data_class, task_id=request.task_id,
            source=self.node,
        )
        read.dimm_index = request.dimm_index
        read.coord = request.coord

        def after_read(_r: MemoryRequest) -> None:
            self._claim_engine(lambda: do_write())

        def do_write() -> None:
            write = MemoryRequest(
                addr=request.addr, size=request.size, kind=AccessKind.WRITE,
                data_class=request.data_class, task_id=request.task_id,
                source=self.node,
            )
            write.dimm_index = request.dimm_index
            write.coord = request.coord
            pool.dram_access(write, self.node, on_done=lambda _w: respond(request))

        pool.dram_access(read, self.node, on_done=after_read)

    def _claim_engine(self, after_compute: Callable[[], None]) -> None:
        """Run the arithmetic on a free engine (FIFO when all busy)."""
        if self.busy >= self.num_engines:
            self._backlog.append(after_compute)
            self.stats.add("queued", 1)
            return
        self._run_engine(after_compute)

    def _run_engine(self, after_compute: Callable[[], None]) -> None:
        self.busy += 1

        def done() -> None:
            self.busy -= 1
            after_compute()
            if self._backlog:
                self._run_engine(self._backlog.popleft())

        self.engine.schedule(self.compute_cycles, done)
