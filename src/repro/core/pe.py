"""Processing Engines.

The PEs are multi-purpose fixed-function ASIC blocks (Fig. 5 (d)): an
FM-index engine, a Hash-index engine, a KMC engine, and a DNA pre-alignment
engine behind a shared task interface.  All PEs of one NDP module are
identical, so the pool models them as a counting resource: a PE is occupied
exactly while a task computes on it, and switches to another task whenever
the current one waits on memory (Section IV-B's task switching).
"""

from __future__ import annotations

from repro.core.config import Algorithm
from repro.sim.component import Component


class PePool(Component):
    """``num_pes`` interchangeable PEs of one NDP module."""

    def __init__(self, engine, name: str, parent, num_pes: int) -> None:
        super().__init__(engine, name, parent)
        if num_pes <= 0:
            raise ValueError("num_pes must be positive")
        self.num_pes = num_pes
        self.busy = 0
        self._busy_area = 0.0       # sum of (busy PEs x cycles), for utilization
        self._last_change = 0

    def _account(self) -> None:
        self._busy_area += self.busy * (self.now - self._last_change)
        self._last_change = self.now

    @property
    def available(self) -> int:
        return self.num_pes - self.busy

    def acquire(self) -> bool:
        """Claim a PE; returns False when all are busy."""
        if self.busy >= self.num_pes:
            return False
        self._account()
        self.busy += 1
        self._trace_occupancy()
        return True

    def release(self) -> None:
        if self.busy <= 0:
            raise RuntimeError(f"{self.path}: release without acquire")
        self._account()
        self.busy -= 1
        self._trace_occupancy()

    def _trace_occupancy(self) -> None:
        """Emit the busy-PE counter track (a live utilization timeline).

        ``total`` rides along so the profiler can turn the track into a
        utilization fraction without out-of-band knowledge of the pool
        size (and Perfetto stacks the two series into a fill gauge).
        """
        tracer = self.engine.tracer
        if tracer:
            tracer.counter("ndp", "pes_busy", self.path, self.now,
                           {"busy": self.busy, "total": self.num_pes},
                           pid=self.engine.trace_id)

    def record_compute(self, algorithm: Algorithm, cycles: int) -> None:
        """Account one compute step (drives the compute-energy term)."""
        self.stats.add("compute_cycles", cycles)
        self.stats.add(f"compute_cycles.{algorithm.value}", cycles)

    @property
    def total_compute_cycles(self) -> float:
        return self.stats.get("compute_cycles")

    def utilization(self, end_cycle: int) -> float:
        """Mean fraction of PEs busy over the run."""
        if end_cycle <= 0:
            return 0.0
        area = self._busy_area + self.busy * (end_cycle - self._last_change)
        # repro: allow[int-cycle-arithmetic] -- derived reporting metric: a
        # post-run float utilization for reports, never fed back into timing.
        return area / (self.num_pes * end_cycle)
