"""Task Scheduler: the incoming/out-going task queues (Fig. 5 (b)).

Tasks waiting for memory operands sit in the **incoming queue** with a
per-task outstanding-operand count (the scoreboard); when the last operand
returns, the task moves to the **out-going queue**, from which the
dispatcher hands tasks to PEs that need work.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Set

from repro.core.task import Task
from repro.sim.component import Component


class TaskScheduler(Component):
    """Queues + operand scoreboard for one NDP module."""

    def __init__(self, engine, name: str, parent) -> None:
        super().__init__(engine, name, parent)
        self._ready: Deque[Task] = deque()
        self._waiting: Set[int] = set()
        #: Invoked whenever a task becomes ready (the dispatcher hook).
        self.on_ready: Optional[Callable[[], None]] = None

    # -- out-going queue -----------------------------------------------------------

    def push_ready(self, task: Task) -> None:
        """A new or resumed task is ready for a PE."""
        self._ready.append(task)
        self.stats.add("ready_pushes", 1)
        tracer = self.engine.tracer
        if tracer and tracer.wants("ndp"):
            # Marks the park -> ready boundary: the latency profiler splits
            # a task's non-compute time into memory stall (stall -> ready)
            # and PE wait (ready -> next compute) at this instant.
            tracer.instant(
                "ndp", "ready", self.path, self.now,
                pid=self.engine.trace_id,
                args={"task": task.task_id, "queue": len(self._ready)},
            )
        if self.on_ready is not None:
            self.on_ready()

    def pop_ready(self) -> Optional[Task]:
        if not self._ready:
            return None
        return self._ready.popleft()

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    # -- incoming queue / scoreboard ---------------------------------------------------

    def park(self, task: Task, operands: int) -> None:
        """Task waits for ``operands`` memory responses."""
        if operands <= 0:
            raise ValueError("operands must be positive")
        task.waiting_operands = operands
        self._waiting.add(task.task_id)
        self.stats.add("parked", 1)

    def operand_ready(self, task: Task) -> None:
        """One of the task's operands arrived ("the data back with local
        destinations are forwarded to the Task Schedulers")."""
        if task.task_id not in self._waiting:
            raise RuntimeError(f"task {task.task_id} is not parked")
        task.waiting_operands -= 1
        if task.waiting_operands == 0:
            self._waiting.discard(task.task_id)
            self.push_ready(task)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    @property
    def idle(self) -> bool:
        return not self._ready and not self._waiting
