"""The NDP module (Fig. 5 (b)): PEs + Task Scheduler + Address Translator
+ I/O buffer, bound to one fabric node.

The same module is instantiated on CXLG-DIMMs (BEACON-D), inside CXL
switches (BEACON-S), and on the customized DDR-DIMMs of the MEDAL/NEST
baselines — the paper uses "the same PEs ... in the NDP baselines and
BEACON" (Section VI-A), and so do we.

Execution loop: a ready task claims a PE and advances through its step
generator.  Compute steps hold the PE; a memory step issues its accesses
through the Address Translator into the pool and parks the task (the PE is
released and immediately redispatched — the paper's task switching).  When
the last operand returns, the Task Scheduler re-queues the task.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, Optional

from repro.core.address_translator import AddressTranslator
from repro.core.pe import PePool
from repro.core.task import ComputeStep, MemStep, Task
from repro.core.task_scheduler import TaskScheduler
from repro.cxl.flit import MessageKind
from repro.cxl.topology import MemoryPool
from repro.dram.request import MemoryRequest
from repro.memmgmt.regions import RegionMap
from repro.sim.component import Component


class NdpModule(Component):
    """One NDP module at fabric node ``node``."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        node: str,
        num_pes: int,
        pool: MemoryPool,
        region_map: RegionMap,
    ) -> None:
        super().__init__(engine, name, parent)
        self.node = node
        self.pool = pool
        self.pes = PePool(engine, "pes", self, num_pes)
        self.scheduler = TaskScheduler(engine, "sched", self)
        self.translator = AddressTranslator(engine, "xlat", self, region_map, node)
        self.scheduler.on_ready = self._dispatch
        self.tasks_completed = 0
        #: System-level hook fired on every task completion.
        self.on_task_done: Optional[Callable[[Task], None]] = None
        #: MEDAL-style task migration: DIMM-node -> NdpModule peers.  When
        #: set, a memory step whose data lives on a peer's DIMM ships the
        #: *task* there (one small one-way message) instead of round-tripping
        #: the data — the prior work's answer to the inter-DIMM bottleneck.
        self.migration_peers: Optional[Dict[str, "NdpModule"]] = None
        self._dispatch_pending = False

    # -- task entry -------------------------------------------------------------

    def submit_task(self, task: Task) -> None:
        """Accept a task (typically delivered as a TASK message)."""
        if task.started_at is None:
            task.started_at = self.now
            tracer = self.engine.tracer
            if tracer:
                tracer.async_begin(
                    "ndp", "task", self.path, self.now, task.task_id,
                    pid=self.engine.trace_id,
                    args={"algorithm": task.algorithm.value,
                          "node": self.node},
                )
        self.stats.add("tasks_submitted", 1)
        self.scheduler.push_ready(task)

    # -- dispatch loop -------------------------------------------------------------

    def _dispatch(self) -> None:
        # Collapse bursts of readiness notifications into one pass per cycle.
        if self._dispatch_pending:
            return
        self._dispatch_pending = True
        self.engine.schedule(0, self._dispatch_now)

    def _dispatch_now(self) -> None:
        self._dispatch_pending = False
        while self.scheduler.ready_count and self.pes.acquire():
            task = self.scheduler.pop_ready()
            assert task is not None
            self._advance(task)

    def _bind_task(self, task: Task) -> None:
        """Cache this module's resume/operand callbacks on the task.

        A task advances through thousands of compute resumptions and
        operand returns; binding two partials once per (task, module) pair
        replaces a closure allocation per event.  Migration hands tasks to
        a different module, so the owner is re-checked at use sites.
        """
        task.cb_owner = self
        task.resume_cb = partial(self._advance, task)
        task.operand_cb = partial(self._operand_ready, task)

    def _operand_ready(self, task: Task, _request: MemoryRequest) -> None:
        self.scheduler.operand_ready(task)

    def _advance(self, task: Task) -> None:
        """Run the task on its PE until it parks or finishes."""
        try:
            step = next(task.steps)
        except StopIteration:
            self._complete(task)
            return
        if isinstance(step, ComputeStep):
            self.pes.record_compute(task.algorithm, step.cycles)
            tracer = self.engine.tracer
            if tracer and tracer.wants("ndp"):
                tracer.complete(
                    "ndp", "compute", self.pes.path, self.now, step.cycles,
                    pid=self.engine.trace_id,
                    args={"task": task.task_id,
                          "algorithm": task.algorithm.value},
                )
            if task.cb_owner is not self:
                self._bind_task(task)
            self.engine.schedule(step.cycles, task.resume_cb)
            return
        if isinstance(step, MemStep):
            target = self._migration_target(step)
            if target is not None:
                self._migrate(task, step, target)
                return
            self._issue_mem_step(task, step)
            return
        raise TypeError(f"unknown step type {type(step).__name__}")

    # -- MEDAL-style task migration ------------------------------------------------

    def _migration_target(self, step: MemStep) -> Optional["NdpModule"]:
        """Peer module co-located with this step's data, if migrating."""
        if self.migration_peers is None or not step.accesses:
            return None
        first = step.accesses[0]
        try:
            dimm_index, _coord = self.translator.region_map.resolve(
                first.addr, requester=self.node
            )
        except KeyError:
            return None
        node = self.pool.dimm_nodes[dimm_index]
        if node == self.node:
            return None
        return self.migration_peers.get(node)

    def _migrate(self, task: Task, step: MemStep, target: "NdpModule") -> None:
        """Ship the task (sequence + state, one small message) to ``target``."""
        self.stats.add("task_migrations", 1)
        tracer = self.engine.tracer
        if tracer:
            tracer.instant(
                "ndp", "migrate", self.path, self.now,
                pid=self.engine.trace_id,
                args={"task": task.task_id, "to": target.node},
            )
        self.pes.release()
        self._dispatch()
        fabric = self.pool.fabric
        route = fabric.route(self.node, target.node)
        fabric.send(
            route, MessageKind.TASK, task.payload_bytes + 16,
            on_delivered=lambda: target._resume_migrated(task, step),
        )

    def _resume_migrated(self, task: Task, step: MemStep) -> None:
        """Continue a migrated task here: run its pending memory step.

        No PE is held at this point — the task claims one of *this*
        module's PEs through the normal dispatch path once its operands
        return.
        """
        self.stats.add("tasks_received", 1)
        self._issue_mem_step(task, step, holds_pe=False)

    def _issue_mem_step(self, task: Task, step: MemStep, holds_pe: bool = True) -> None:
        accesses = list(step.accesses)
        if not accesses:
            if holds_pe:
                # Nothing to wait for; keep running on the same PE.
                self._advance(task)
            else:
                self.scheduler.push_ready(task)
            return
        self.scheduler.park(task, operands=len(accesses))
        tracer = self.engine.tracer
        if tracer:
            tracer.instant(
                "ndp", "stall", self.path, self.now,
                pid=self.engine.trace_id,
                args={"task": task.task_id, "reason": "mem",
                      "operands": len(accesses)},
            )
        if holds_pe:
            # The PE switches to another task while this one waits.
            self.pes.release()
            self._dispatch()
        if task.cb_owner is not self:
            self._bind_task(task)
        operand_cb = task.operand_cb
        stat_add = self.stats.add
        stat_add("mem_requests", len(accesses))
        translate = self.translator.translate
        pool = self.pool
        dimm_nodes = pool.dimm_nodes
        node = self.node
        task_id = task.task_id
        local = 0
        for spec in accesses:
            request = MemoryRequest(
                addr=spec.addr,
                size=spec.size,
                kind=spec.kind,
                data_class=spec.data_class,
                task_id=task_id,
                source=node,
                on_complete=operand_cb,
            )
            translate(request)
            if request.dimm_index is not None and (
                dimm_nodes[request.dimm_index] == node
            ):
                local += 1
            pool.access(request, node)
        if local:
            stat_add("local_requests", local)

    def _complete(self, task: Task) -> None:
        task.finished_at = self.now
        self.pes.release()
        self.tasks_completed += 1
        self.stats.add("tasks_completed", 1)
        tracer = self.engine.tracer
        if tracer:
            tracer.async_end("ndp", "task", self.path, self.now,
                             task.task_id, pid=self.engine.trace_id)
        if task.on_done is not None:
            task.on_done(task)
        if self.on_task_done is not None:
            self.on_task_done(task)
        self._dispatch()
