"""PE hardware cost model (Table II).

The paper synthesizes its PEs with Design Compiler at 28 nm and reports
area, dynamic power, and leakage power against MEDAL's and NEST's PEs.
Synthesis is outside this reproduction's scope, so Table II's numbers are
embedded as constants; they feed the compute-energy term of the energy
model (dynamic power x busy time + leakage x total time) and the Table II
regeneration bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PeHardware:
    """One architecture's PE cost (28 nm, pre-layout Design Compiler)."""

    area_um2: float
    dynamic_power_mw: float
    leakage_power_uw: float

    def compute_energy_nj(self, busy_cycles: float, total_cycles: float,
                          tck_ns: float, num_pes: int) -> float:
        """Energy of ``num_pes`` PEs over a run.

        Dynamic power is charged only while a PE computes; leakage is
        charged on every PE for the whole run.
        """
        busy_s = busy_cycles * tck_ns * 1e-9
        total_s = total_cycles * tck_ns * 1e-9
        dynamic_nj = self.dynamic_power_mw * 1e-3 * busy_s * 1e9
        leakage_nj = self.leakage_power_uw * 1e-6 * total_s * num_pes * 1e9
        return dynamic_nj + leakage_nj


#: Table II verbatim.
PE_HARDWARE: Dict[str, PeHardware] = {
    "MEDAL": PeHardware(area_um2=8941.39, dynamic_power_mw=10.57,
                        leakage_power_uw=36.16),
    "NEST": PeHardware(area_um2=16721.12, dynamic_power_mw=8.12,
                       leakage_power_uw=24.83),
    "BEACON": PeHardware(area_um2=14090.23, dynamic_power_mw=9.48,
                         leakage_power_uw=18.97),
}


def beacon_overhead_vs(previous: str) -> Dict[str, float]:
    """BEACON's PE cost relative to a prior design (Table II analysis)."""
    beacon = PE_HARDWARE["BEACON"]
    other = PE_HARDWARE[previous]
    return {
        "area_ratio": beacon.area_um2 / other.area_um2,
        "dynamic_power_ratio": beacon.dynamic_power_mw / other.dynamic_power_mw,
        "leakage_power_ratio": beacon.leakage_power_uw / other.leakage_power_uw,
    }
