"""Deterministic discrete-event engine.

Events are kept in a pluggable :class:`~repro.sim.scheduler.Scheduler`
(binary heap or calendar queue, see :mod:`repro.sim.scheduler`); ordering
is by timestamp, FIFO within a cycle with respect to scheduling order.
That keeps every simulation in this repository exactly reproducible — the
same configuration and workload always produce the same cycle counts and
energy totals, under either scheduler implementation.

The run loop dispatches in *cycle batches*: the scheduler hands over one
populated cycle's FIFO bucket as a live list, and the engine drains it by
index without re-touching the priority structure per event.  Events
scheduled for the current cycle while the batch drains append to the same
live list, which reproduces the historical heap's ``(time, seq)`` pop
order exactly.
"""

from __future__ import annotations

import contextlib
import gc
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.sim.scheduler import EventHandle, Scheduler, create_scheduler


class SimulationError(RuntimeError):
    """Raised for invalid use of the engine (e.g. scheduling in the past)."""


def _integral_time(time: Any, delay: Any) -> int:
    """Coerce a non-``int`` event time to ``int``, rejecting fractions.

    Event times are integer DRAM cycles; a fractional delay would silently
    land on a wrong cycle (the old engine truncated via ``int(delay)``).
    Integral floats and numpy integers are accepted and normalized.
    """
    try:
        coerced = int(time)
        exact = coerced == time
    except (TypeError, ValueError, OverflowError):
        coerced, exact = 0, False
    if not exact:
        raise SimulationError(
            f"non-integral delay {delay!r}: event times are integer DRAM "
            "cycles (round explicitly at the call site)"
        )
    return coerced


class Engine:
    """Event-driven simulator with integer cycle timestamps.

    ``scheduler`` selects the priority structure: a registry name
    (``"heap"``/``"wheel"``), a ready :class:`Scheduler` instance, or
    ``None`` to honour the ``REPRO_SCHEDULER`` environment variable
    (default ``wheel``).  Results are bit-identical across schedulers.

    Example
    -------
    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(5, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [5]
    """

    #: Process-wide event counter across every engine instance; the perf
    #: harness (``python -m repro bench``) reads deltas of this to report
    #: events/sec for a whole experiment campaign.
    _global_events_executed: int = 0

    #: Process-wide scheduler occupancy totals, keyed by scheduler name.
    #: Each :meth:`run` folds its scheduler's counter deltas in here, so
    #: the perf harness can report batching behaviour (events per populated
    #: cycle, largest batch) for a whole campaign without reaching into
    #: individual engines.
    _global_occupancy: dict = {}

    #: Recorder newly constructed engines adopt (see :mod:`repro.obs`).
    #: ``None`` keeps tracing disabled; instrument sites throughout the
    #: simulator guard with ``if engine.tracer:`` so a disabled run pays
    #: one attribute read per site.  Set via ``repro.obs.install`` /
    #: ``TraceSession`` rather than directly.
    default_tracer = None

    #: Monotonic engine counter; doubles as the trace ``pid`` so each
    #: single-shot system appears as its own process on a shared timeline.
    _next_trace_id: int = 0

    @classmethod
    def global_events_executed(cls) -> int:
        """Total events executed by all engines in this process."""
        return cls._global_events_executed

    @classmethod
    def reset_process_counters(cls) -> None:
        """Zero the process-wide event and occupancy counters.

        The perf harness calls this at the start of each measured run so
        events/sec never mixes in counts inherited from earlier work in
        the same process (or, under ``fork``-based multiprocessing, from
        the parent at fork time).
        """
        cls._global_events_executed = 0
        cls._global_occupancy = {}

    @classmethod
    def process_occupancy(cls) -> dict:
        """Scheduler occupancy totals since :meth:`reset_process_counters`.

        Maps scheduler name to ``events_enqueued`` / ``cycles_started`` /
        ``max_batch`` / ``avg_batch`` aggregated over every completed
        :meth:`run` in this process.
        """
        report = {}
        for name, totals in cls._global_occupancy.items():
            cycles = totals["cycles_started"]
            report[name] = {
                "events_enqueued": totals["events_enqueued"],
                "cycles_started": cycles,
                "max_batch": totals["max_batch"],
                # repro: allow[int-cycle-arithmetic] -- derived reporting
                # ratio for the bench payload; never feeds back into timing.
                "avg_batch": totals["events_enqueued"] / cycles if cycles else 0.0,
            }
        return report

    @classmethod
    @contextlib.contextmanager
    def record_delay_histogram(cls) -> Iterator[Dict[int, int]]:
        """Count every scheduled delay, process-wide, while active.

        Profiling aid behind ``python -m repro profile --delays`` — the
        measured delay distribution is what the calendar scheduler's
        bucketing is tuned against.  Purely observational: the wrapped
        scheduling methods record the delay then delegate, so event order
        and results are untouched.  Zero cost when inactive: the hot
        ``schedule`` path carries no histogram branch; the counting
        wrappers are installed on the class only while the context is
        entered (which also makes the context non-reentrant and
        process-global, like the tracer).  Yields the live histogram
        mapping delay (cycles) -> times scheduled.
        """
        histogram: Dict[int, int] = {}
        plain, absolute, cancellable = (
            cls.schedule, cls.schedule_at, cls.schedule_cancellable)

        def counting_schedule(self, delay, callback):
            histogram[delay] = histogram.get(delay, 0) + 1
            return plain(self, delay, callback)

        def counting_schedule_at(self, time, callback):
            delay = time - self.now
            histogram[delay] = histogram.get(delay, 0) + 1
            return absolute(self, time, callback)

        def counting_schedule_cancellable(self, delay, callback):
            histogram[delay] = histogram.get(delay, 0) + 1
            return cancellable(self, delay, callback)

        cls.schedule = counting_schedule
        cls.schedule_at = counting_schedule_at
        cls.schedule_cancellable = counting_schedule_cancellable
        try:
            yield histogram
        finally:
            cls.schedule = plain
            cls.schedule_at = absolute
            cls.schedule_cancellable = cancellable

    def __init__(self, scheduler: Union[str, Scheduler, None] = None) -> None:
        #: Current simulation time in DRAM cycles.  A plain attribute on
        #: purpose: this is the single most-read value in the simulator
        #: and a property costs a descriptor call per read.  Only the run
        #: loop writes it.
        self.now: int = 0
        self._scheduler: Scheduler = create_scheduler(scheduler)
        #: Bound push, saving a descriptor walk on every schedule call.
        self._push = self._scheduler.push
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: This engine's trace recorder (``None`` = tracing off).  Purely
        #: observational: recording never schedules events or mutates
        #: simulated state, so results are bit-identical either way.
        self.tracer = Engine.default_tracer
        #: Identity of this engine on a shared trace timeline.
        self.trace_id: int = Engine._next_trace_id
        Engine._next_trace_id += 1
        #: High-water marks of this engine's scheduler counters already
        #: folded into :attr:`_global_occupancy` (see :meth:`run`).
        self._occ_enqueued_folded: int = 0
        self._occ_cycles_folded: int = 0

    @property
    def scheduler(self) -> Scheduler:
        """The priority structure backing this engine (read-only)."""
        return self._scheduler

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently waiting in the queue (cancelled
        handles still count until their cycle comes up)."""
        return len(self._scheduler)

    def schedule(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be a non-negative integral number of cycles; a
        fractional delay raises :class:`SimulationError` (it would
        otherwise silently land on the wrong cycle).  A delay of zero runs
        the callback later in the current cycle, after already-queued
        events for this cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        time = self.now + delay
        if type(time) is not int:
            time = _integral_time(time, delay)
        self._push(time, callback)

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; current cycle is {self.now}"
            )
        if type(time) is not int:
            time = _integral_time(time, time - self.now)
        self._push(time, callback)

    def schedule_cancellable(
        self, delay: int, callback: Callable[[], Any]
    ) -> EventHandle:
        """Like :meth:`schedule`, returning a cancellable handle.

        ``handle.cancel()`` retracts the event in O(1) without touching
        the priority structure; a cancelled event's callback is skipped
        when its cycle arrives (the empty dispatch slot still counts as an
        executed event, like the fire-and-bail wakeups it replaces).  Use
        this for timeout/wakeup events usually superseded before firing.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        time = self.now + delay
        if type(time) is not int:
            time = _integral_time(time, delay)
        handle = EventHandle(callback)
        self._push(time, handle)
        return handle

    def reschedule(self, handle: Optional[EventHandle], delay: int) -> EventHandle:
        """Supersede ``handle`` (if any) with a fresh one ``delay`` from now.

        Cancels the old handle and schedules its callback again — or, when
        ``handle`` is ``None``, this is just :meth:`schedule_cancellable`.
        """
        if handle is None:
            raise SimulationError("reschedule() needs a handle to supersede")
        handle.cancel()
        return self.schedule_cancellable(delay, handle.fn)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds ``until``
            (the clock is then advanced to ``until``).
        max_events:
            Safety valve for runaway simulations; executes at most
            ``max_events`` events, then raises :class:`SimulationError`
            if work is still pending (a run that finishes in exactly
            ``max_events`` events returns normally).

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        sched = self._scheduler
        budget = -1
        if max_events is not None:
            # The historical loop checked `executed >= max_events` after
            # each event, so a non-positive budget still ran one event.
            budget = max_events if max_events > 0 else 1
        # Event dispatch allocates heavily (messages, requests, partials)
        # but the objects are acyclic and die young; pausing the cyclic
        # collector for the duration of the drain removes periodic
        # whole-heap scans from the hot loop.  Purely an allocator
        # setting — simulation order and results are unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # Bound methods hoisted out of the loop: three attribute walks per
        # populated cycle add up over hundreds of thousands of cycles.
        next_time = sched.next_time
        start_cycle = sched.start_cycle
        finish_cycle = sched.finish_cycle
        try:
            while not self._stopped:
                time = next_time()
                if time is None:
                    break
                if until is not None and time > until:
                    self.now = until
                    break
                self.now = time
                # Drain this cycle's FIFO by index; same-cycle schedules
                # append to `batch` and are picked up by the same sweep.
                batch = start_cycle()
                i = 0
                aborted = False
                if budget < 0:
                    # Common case (no max_events): the only per-event
                    # bookkeeping is the stop flag; the executed count is
                    # settled in one add after the sweep.  ``len(batch)``
                    # is re-read every iteration on purpose: same-cycle
                    # schedules grow the live list mid-drain.
                    while i < len(batch):
                        event = batch[i]
                        i += 1
                        if event.__class__ is EventHandle:
                            # A cancelled handle is dropped here, but still
                            # counts as a dispatched event: it occupied a
                            # queue slot and a dispatch turn, exactly like
                            # the fire-and-bail wakeup events this mechanism
                            # replaced (keeping event accounting comparable).
                            if not event.cancelled:
                                event.fn()
                        else:
                            event()
                        if self._stopped:
                            aborted = True
                            break
                    executed_this_run += i
                else:
                    while i < len(batch):
                        event = batch[i]
                        i += 1
                        if event.__class__ is EventHandle:
                            if not event.cancelled:
                                event.fn()
                        else:
                            event()
                        executed_this_run += 1
                        if self._stopped or executed_this_run == budget:
                            aborted = True
                            break
                if aborted:
                    # Keep the unconsumed remainder queued; a later run()
                    # resumes exactly where this one left off.
                    del batch[:i]
                    if not batch:
                        finish_cycle()
                    if (
                        executed_this_run == budget
                        and not self._stopped
                        and len(sched)
                    ):
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "simulation is probably not converging"
                        )
                    break
                finish_cycle()
            if until is not None and not len(sched) and self.now < until:
                self.now = until
        finally:
            if gc_was_enabled:
                gc.enable()
            self._running = False
            self._events_executed += executed_this_run
            totals = Engine._global_occupancy.get(sched.name)
            if totals is None:
                totals = Engine._global_occupancy[sched.name] = {
                    "events_enqueued": 0, "cycles_started": 0, "max_batch": 0,
                }
            # Fold this engine's not-yet-folded scheduler counters into
            # the process totals.  High-water marks (rather than a
            # run-start snapshot) also credit events scheduled *before*
            # run() and survive multiple run() calls without double
            # counting.
            totals["events_enqueued"] += (
                sched.events_enqueued - self._occ_enqueued_folded
            )
            totals["cycles_started"] += (
                sched.cycles_started - self._occ_cycles_folded
            )
            self._occ_enqueued_folded = sched.events_enqueued
            self._occ_cycles_folded = sched.cycles_started
            if sched.max_batch > totals["max_batch"]:
                totals["max_batch"] = sched.max_batch
            Engine._global_events_executed += executed_this_run
            if self.tracer:
                # Purely observational: lets the profiler use the exact
                # final clock as its utilization denominator instead of
                # approximating runtime from the last event timestamp.
                self.tracer.note_runtime(self.trace_id, self.now)
        return self.now
