"""Deterministic discrete-event engine.

Events are ``(time, sequence, callback)`` triples in a binary heap.  The
sequence number makes the ordering of same-cycle events deterministic and
FIFO with respect to scheduling order, which keeps every simulation in this
repository exactly reproducible: the same configuration and workload always
produce the same cycle counts and energy totals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid use of the engine (e.g. scheduling in the past)."""


class Engine:
    """Event-driven simulator with integer cycle timestamps.

    Example
    -------
    >>> eng = Engine()
    >>> hits = []
    >>> eng.schedule(5, lambda: hits.append(eng.now))
    >>> eng.run()
    >>> hits
    [5]
    """

    #: Process-wide event counter across every engine instance; the perf
    #: harness (``python -m repro bench``) reads deltas of this to report
    #: events/sec for a whole experiment campaign.
    _global_events_executed: int = 0

    #: Recorder newly constructed engines adopt (see :mod:`repro.obs`).
    #: ``None`` keeps tracing disabled; instrument sites throughout the
    #: simulator guard with ``if engine.tracer:`` so a disabled run pays
    #: one attribute read per site.  Set via ``repro.obs.install`` /
    #: ``TraceSession`` rather than directly.
    default_tracer = None

    #: Monotonic engine counter; doubles as the trace ``pid`` so each
    #: single-shot system appears as its own process on a shared timeline.
    _next_trace_id: int = 0

    @classmethod
    def global_events_executed(cls) -> int:
        """Total events executed by all engines in this process."""
        return cls._global_events_executed

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[Tuple[int, int, Callable[[], Any]]] = []
        self._events_executed: int = 0
        self._running: bool = False
        self._stopped: bool = False
        #: This engine's trace recorder (``None`` = tracing off).  Purely
        #: observational: recording never schedules events or mutates
        #: simulated state, so results are bit-identical either way.
        self.tracer = Engine.default_tracer
        #: Identity of this engine on a shared trace timeline.
        self.trace_id: int = Engine._next_trace_id
        Engine._next_trace_id += 1

    @property
    def now(self) -> int:
        """Current simulation time in DRAM cycles."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events currently waiting in the queue."""
        return len(self._queue)

    def schedule(self, delay: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be a non-negative integer; a delay of zero runs the
        callback later in the current cycle, after already-queued events for
        this cycle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + int(delay), self._seq, callback))

    def schedule_at(self, time: int, callback: Callable[[], Any]) -> None:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}; current cycle is {self._now}"
            )
        # repro: allow[nonneg-schedule-delay] -- the raise above guarantees
        # time >= self._now, so the subtraction cannot go negative.
        self.schedule(time - self._now, callback)

    def stop(self) -> None:
        """Stop the current :meth:`run` after the executing event returns."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the next event's timestamp exceeds ``until``
            (the clock is then advanced to ``until``).
        max_events:
            Safety valve for runaway simulations; executes at most
            ``max_events`` events, then raises :class:`SimulationError`
            if work is still pending (a run that finishes in exactly
            ``max_events`` events returns normally).

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        try:
            while self._queue and not self._stopped:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                self._events_executed += 1
                executed_this_run += 1
                if (
                    max_events is not None
                    and executed_this_run >= max_events
                    and self._queue
                    and not self._stopped
                ):
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "simulation is probably not converging"
                    )
            if until is not None and not self._queue and self._now < until:
                self._now = until
        finally:
            self._running = False
            Engine._global_events_executed += executed_this_run
            if self.tracer:
                # Purely observational: lets the profiler use the exact
                # final clock as its utilization denominator instead of
                # approximating runtime from the last event timestamp.
                self.tracer.note_runtime(self.trace_id, self._now)
        return self._now
