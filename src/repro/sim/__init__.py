"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: an event engine with integer cycle
timestamps (:class:`~repro.sim.engine.Engine`), a base class for named
components (:class:`~repro.sim.component.Component`), bounded queues used to
connect pipeline stages (:mod:`repro.sim.queueing`), and a statistics tree
(:mod:`repro.sim.stats`).

All timing in the repository is expressed in DRAM clock cycles of the
DDR4-1600 devices from Table I of the paper (tCK = 1.25 ns), so one engine
tick equals one DRAM cycle.
"""

from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationError
from repro.sim.queueing import BoundedQueue, QueueFullError
from repro.sim.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_ENV,
    SCHEDULERS,
    CalendarScheduler,
    EventHandle,
    HeapScheduler,
    Scheduler,
    create_scheduler,
)
from repro.sim.stats import StatScope

__all__ = [
    "BoundedQueue",
    "CalendarScheduler",
    "Component",
    "DEFAULT_SCHEDULER",
    "Engine",
    "EventHandle",
    "HeapScheduler",
    "QueueFullError",
    "SCHEDULERS",
    "SCHEDULER_ENV",
    "Scheduler",
    "SimulationError",
    "StatScope",
    "create_scheduler",
]
