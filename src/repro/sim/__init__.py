"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: an event engine with integer cycle
timestamps (:class:`~repro.sim.engine.Engine`), a base class for named
components (:class:`~repro.sim.component.Component`), bounded queues used to
connect pipeline stages (:mod:`repro.sim.queueing`), and a statistics tree
(:mod:`repro.sim.stats`).

All timing in the repository is expressed in DRAM clock cycles of the
DDR4-1600 devices from Table I of the paper (tCK = 1.25 ns), so one engine
tick equals one DRAM cycle.
"""

from repro.sim.component import Component
from repro.sim.engine import Engine, SimulationError
from repro.sim.queueing import BoundedQueue, QueueFullError
from repro.sim.stats import StatScope

__all__ = [
    "BoundedQueue",
    "Component",
    "Engine",
    "QueueFullError",
    "SimulationError",
    "StatScope",
]
