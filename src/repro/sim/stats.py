"""Hierarchical simulation statistics.

A :class:`StatScope` is a node in a tree of named scopes.  Each scope holds
counters (monotonic integers/floats), gauges (last value + time-weighted
average support), and histograms (value lists with summary helpers).  The
experiment harness aggregates counters across subtrees with
:meth:`StatScope.total`, which is how, for example, total DRAM energy is
summed over every bank of every DIMM in a pool.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class Histogram:
    """A lightweight value accumulator with summary statistics."""

    def __init__(self) -> None:
        self.values: List[float] = []

    def record(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Return the ``p``-th percentile (0 <= p <= 100) by nearest rank."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class StatScope:
    """A named node in the statistics tree."""

    def __init__(self, name: str, parent: Optional["StatScope"] = None) -> None:
        self.name = name
        self.parent = parent
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.children: Dict[str, "StatScope"] = {}

    # -- tree structure ----------------------------------------------------

    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def child(self, name: str) -> "StatScope":
        """Return (creating if needed) the child scope called ``name``."""
        if name not in self.children:
            self.children[name] = StatScope(name, parent=self)
        return self.children[name]

    def walk(self) -> Iterator["StatScope"]:
        """Yield this scope and every descendant, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    # -- counters ----------------------------------------------------------

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self.counters[key] = self.counters.get(key, 0.0) + amount

    def get(self, key: str, default: float = 0.0) -> float:
        return self.counters.get(key, default)

    def set(self, key: str, value: float) -> None:
        self.counters[key] = value

    def total(self, key: str) -> float:
        """Sum of counter ``key`` over this scope and all descendants."""
        return sum(scope.counters.get(key, 0.0) for scope in self.walk())

    # -- histograms ----------------------------------------------------------

    def histogram(self, key: str) -> Histogram:
        if key not in self.histograms:
            self.histograms[key] = Histogram()
        return self.histograms[key]

    def record(self, key: str, value: float) -> None:
        self.histogram(key).record(value)

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Nested plain-dict snapshot (for tests and JSON dumps)."""
        out: Dict[str, object] = dict(self.counters)
        for key, hist in self.histograms.items():
            out[f"{key}:count"] = hist.count
            out[f"{key}:mean"] = hist.mean
        for name, child in self.children.items():
            out[name] = child.as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StatScope {self.path} counters={len(self.counters)}>"
