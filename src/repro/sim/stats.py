"""Hierarchical simulation statistics.

A :class:`StatScope` is a node in a tree of named scopes.  Each scope holds
counters (monotonic integers/floats), gauges (last value + time-weighted
average support), and histograms (value lists with summary helpers).  The
experiment harness aggregates counters across subtrees with
:meth:`StatScope.total`, which is how, for example, total DRAM energy is
summed over every bank of every DIMM in a pool.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional


class Histogram:
    """A memory-bounded value accumulator with summary statistics.

    Summary aggregates (``count``, ``total``, ``mean``, ``minimum``,
    ``maximum``) are maintained as running values and are **always exact**,
    no matter how many samples are recorded.  The retained sample list
    (``values``) is capped at :data:`CAP` entries so arbitrarily long
    (e.g. traced) runs cannot grow memory without bound: up to the cap
    every sample is kept and :meth:`percentile` is exact; beyond it the
    list becomes a uniform reservoir (Vitter's Algorithm R with a fixed
    seed, so results stay deterministic for a given record sequence) and
    percentiles are estimates over the reservoir.
    """

    #: Maximum retained samples per histogram (64 Ki values ≈ 0.5 MB).
    CAP = 65536

    #: Fixed seed for the reservoir's replacement decisions.  Must never be
    #: None: an unseeded RNG would make the retained sample set (and thus
    #: percentile estimates) differ between otherwise identical runs.
    RESERVOIR_SEED = 0x5EED

    def __init__(self, cap: Optional[int] = None) -> None:
        self.cap = self.CAP if cap is None else cap
        if self.cap <= 0:
            raise ValueError("cap must be positive")
        self.values: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng: Optional[random.Random] = None

    def record(self, value: float) -> None:
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self.values) < self.cap:
            self.values.append(value)
            return
        # Reservoir sampling keeps each seen value with equal probability.
        # The seeded RNG is created lazily so bounded histograms cost
        # nothing extra, and deterministically so reruns are identical.
        if self._rng is None:
            assert self.RESERVOIR_SEED is not None, (
                "reservoir RNG must be seeded before the first replacement "
                "decision; unseeded sampling breaks run-to-run determinism"
            )
            self._rng = random.Random(self.RESERVOIR_SEED)
        slot = self._rng.randrange(self._count)
        if slot < self.cap:
            self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def saturated(self) -> bool:
        """Whether more samples were seen than the retention cap."""
        return self._count > self.cap

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100) by nearest rank.

        Exact while ``count <= cap``; a reservoir estimate afterwards.
        """
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]


class StatScope:
    """A named node in the statistics tree."""

    def __init__(self, name: str, parent: Optional["StatScope"] = None) -> None:
        self.name = name
        self.parent = parent
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.children: Dict[str, "StatScope"] = {}

    # -- tree structure ----------------------------------------------------

    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def child(self, name: str) -> "StatScope":
        """Return (creating if needed) the child scope called ``name``."""
        if name not in self.children:
            self.children[name] = StatScope(name, parent=self)
        return self.children[name]

    def walk(self) -> Iterator["StatScope"]:
        """Yield this scope and every descendant, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    # -- counters ----------------------------------------------------------

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        # Hottest method in the simulator (millions of calls per figure);
        # the try/except beats dict.get because existing keys — the common
        # case by far — cost a single subscript.  ``amount + 0.0`` keeps
        # first-write values float, matching the historical ``0.0 + amount``.
        counters = self.counters
        try:
            counters[key] += amount
        except KeyError:
            counters[key] = amount + 0.0

    def get(self, key: str, default: float = 0.0) -> float:
        return self.counters.get(key, default)

    def set(self, key: str, value: float) -> None:
        self.counters[key] = value

    def total(self, key: str) -> float:
        """Sum of counter ``key`` over this scope and all descendants."""
        return sum(scope.counters.get(key, 0.0) for scope in self.walk())

    # -- histograms ----------------------------------------------------------

    def histogram(self, key: str) -> Histogram:
        if key not in self.histograms:
            self.histograms[key] = Histogram()
        return self.histograms[key]

    def record(self, key: str, value: float) -> None:
        self.histogram(key).record(value)

    # -- reporting -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Nested plain-dict snapshot (for tests and JSON dumps)."""
        out: Dict[str, object] = dict(self.counters)
        for key, hist in self.histograms.items():
            out[f"{key}:count"] = hist.count
            out[f"{key}:mean"] = hist.mean
        for name, child in self.children.items():
            out[name] = child.as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StatScope {self.path} counters={len(self.counters)}>"
