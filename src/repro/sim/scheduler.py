"""Pluggable event schedulers for the discrete-event engine.

The engine used to own a single binary heap of ``(time, sequence,
callback)`` triples.  This module extracts that priority structure behind a
small interface so alternative implementations can be swapped in without
touching engine semantics:

* :class:`HeapScheduler` — the reference implementation: one binary heap of
  ``(time, seq, event)`` triples, exactly the engine's historical
  behaviour.
* :class:`CalendarScheduler` — a calendar queue tuned to this simulator's
  delay distribution (``python -m repro profile --delays`` shows the vast
  majority of delays land within a few hundred cycles and many events
  share a cycle): events live in per-cycle FIFO buckets keyed by absolute
  time, and only the *distinct* timestamps go through a heap.  Same-cycle
  events cost one dict lookup + list append instead of a heap push, a
  whole cycle pops with one heap pop, and empty stretches of simulated
  time are skipped without touching anything (idle fast-forward).

Both schedulers implement the same *batched dispatch* contract: the engine
asks for the next populated cycle, receives that cycle's FIFO bucket as a
live list, and drains it by index.  Events scheduled for the current cycle
while the batch is draining append to the same live list, which preserves
the engine's historical same-cycle FIFO semantics bit-for-bit — the parity
suite (``tests/test_scheduler_parity.py``) asserts byte-identical result
fingerprints between the two implementations on every bench figure.

Scheduler choice: ``Engine(scheduler=...)`` accepts a registry name or a
ready instance; the ``REPRO_SCHEDULER`` environment variable selects the
process-wide default (``wheel`` when unset).

Events themselves are *slim*: a bucket entry is either a bare callable
(zero bookkeeping allocated per event) or an :class:`EventHandle` — a
slotted two-field record returned by ``Engine.schedule_cancellable`` that
supports O(1) cancellation without removing anything from the priority
structure (the engine skips cancelled handles when their cycle arrives).
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Union


class EventHandle:
    """A cancellable scheduled event (see ``Engine.schedule_cancellable``).

    Slotted and minimal on purpose: the hot path stores bare callables in
    the scheduler buckets, and only call sites that may need to retract or
    supersede an event (controller wakeups, packer flush timers) pay for a
    handle.  Cancellation is O(1): the handle is flagged and the engine
    drops it, without running the callback, when its cycle comes up.
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Retract the event; a no-op if it already ran or was cancelled."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event can still fire."""
        return not self.cancelled


#: A scheduler bucket entry: a bare callback or a cancellable handle.
Event = Union[Callable[[], None], EventHandle]


class Scheduler:
    """Interface between the engine and a priority structure of events.

    The engine drives a scheduler through a strict cycle protocol::

        t = sched.next_time()        # earliest populated cycle (or None)
        batch = sched.start_cycle()  # live FIFO bucket for cycle t
        ...                          # engine drains batch by index;
                                     # same-cycle push() appends to batch
        sched.finish_cycle()         # bucket fully drained: discard it

    If the engine aborts mid-batch (``stop()``/``max_events``), it removes
    the consumed prefix from the live list instead of calling
    :meth:`finish_cycle`; the remainder stays queued and a later
    :meth:`next_time` resumes the same cycle.

    ``push`` must preserve FIFO order among events pushed for the same
    cycle — that ordering *is* the simulator's determinism contract.
    """

    #: Registry key (subclasses set their own).
    name = "abstract"

    def push(self, time: int, event: Event) -> None:
        raise NotImplementedError

    def next_time(self) -> Optional[int]:
        """Earliest cycle holding at least one event, or ``None``."""
        raise NotImplementedError

    def start_cycle(self) -> List[Event]:
        """The live FIFO bucket for the cycle ``next_time`` returned."""
        raise NotImplementedError

    def finish_cycle(self) -> None:
        """Discard the (fully drained) current bucket."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- occupancy accounting (sampled at cycle starts; see occupancy()) ----

    cycles_started = 0
    events_enqueued = 0
    max_batch = 0

    def occupancy(self) -> Dict[str, object]:
        """Cheap occupancy statistics for the perf harness.

        ``max_batch`` is the largest bucket size observed *at cycle start*
        (same-cycle events appended mid-drain are counted in
        ``events_enqueued`` but not re-sampled), ``avg_batch`` the mean
        events dispatched per populated cycle.
        """
        cycles = self.cycles_started
        return {
            "scheduler": self.name,
            "events_enqueued": self.events_enqueued,
            "cycles_started": cycles,
            "max_batch": self.max_batch,
            # repro: allow[int-cycle-arithmetic] -- post-run reporting
            # ratio for the bench report; never feeds back into timing.
            "avg_batch": (self.events_enqueued / cycles) if cycles else 0.0,
        }


class HeapScheduler(Scheduler):
    """Reference scheduler: one binary heap of ``(time, seq, event)``.

    This is the engine's historical data structure, kept as the baseline
    the calendar queue is verified against.  Batched dispatch pops every
    entry of the minimum timestamp into an active list in one go; pushes
    for the active cycle append to that list directly (their sequence
    numbers would have ordered them after every already-popped entry
    anyway, so FIFO order is preserved exactly).
    """

    name = "heap"

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0
        self._batch: List[Event] = []
        self._batch_time = 0

    def push(self, time: int, event: Event) -> None:
        self.events_enqueued += 1
        if self._batch and time == self._batch_time:
            self._batch.append(event)
            return
        self._seq += 1
        heappush(self._heap, (time, self._seq, event))

    def next_time(self) -> Optional[int]:
        if self._batch:
            return self._batch_time
        if self._heap:
            return self._heap[0][0]
        return None

    def start_cycle(self) -> List[Event]:
        batch = self._batch
        if not batch:
            heap = self._heap
            time = heap[0][0]
            self._batch_time = time
            while heap and heap[0][0] == time:
                batch.append(heappop(heap)[2])
        self.cycles_started += 1
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)
        return batch

    def finish_cycle(self) -> None:
        self._batch.clear()

    def __len__(self) -> int:
        return len(self._heap) + len(self._batch)


class CalendarScheduler(Scheduler):
    """Calendar queue: per-cycle FIFO buckets + a heap of distinct times.

    ``_buckets`` maps absolute cycle -> list of events in scheduling
    order; ``_times`` is a small heap of the distinct populated cycles.
    Pushing into an existing cycle never touches the heap, so the heap
    sees one entry per *cycle* rather than one per *event* — with this
    simulator's heavily clustered delays that cuts priority-structure
    traffic by the mean batch size.  Because a bucket's append order
    equals the engine's scheduling order, pop order is identical to
    :class:`HeapScheduler`'s ``(time, seq)`` order by construction.

    Drained buckets are recycled through a small freelist so steady-state
    execution allocates no per-cycle lists either.
    """

    name = "wheel"

    #: Cap on retained drained buckets (lists) for reuse.
    FREELIST_CAP = 64

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Event]] = {}
        self._times: List[int] = []
        self._free: List[List[Event]] = []

    def push(self, time: int, event: Event) -> None:
        self.events_enqueued += 1
        try:
            self._buckets[time].append(event)
        except KeyError:
            if self._free:
                bucket = self._free.pop()
                bucket.append(event)
            else:
                bucket = [event]
            self._buckets[time] = bucket
            heappush(self._times, time)

    def next_time(self) -> Optional[int]:
        times = self._times
        if times:
            return times[0]
        return None

    def start_cycle(self) -> List[Event]:
        batch = self._buckets[self._times[0]]
        self.cycles_started += 1
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)
        return batch

    def finish_cycle(self) -> None:
        time = heappop(self._times)
        bucket = self._buckets.pop(time)
        if len(self._free) < self.FREELIST_CAP:
            bucket.clear()
            self._free.append(bucket)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


#: Registry of scheduler implementations, keyed by their CLI/env names.
SCHEDULERS: Dict[str, type] = {
    HeapScheduler.name: HeapScheduler,
    CalendarScheduler.name: CalendarScheduler,
}

#: Environment variable selecting the process-wide default scheduler.
SCHEDULER_ENV = "REPRO_SCHEDULER"

#: Used when neither ``Engine(scheduler=...)`` nor the env var chooses.
DEFAULT_SCHEDULER = CalendarScheduler.name


def create_scheduler(choice: Union[str, Scheduler, None] = None) -> Scheduler:
    """Build the scheduler ``Engine`` should use.

    ``choice`` may be a registry name (``"heap"``/``"wheel"``), a ready
    :class:`Scheduler` instance (adopted as-is), or ``None`` — in which
    case the ``REPRO_SCHEDULER`` environment variable decides, falling
    back to :data:`DEFAULT_SCHEDULER`.
    """
    if isinstance(choice, Scheduler):
        return choice
    name = choice or os.environ.get(SCHEDULER_ENV) or DEFAULT_SCHEDULER
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(
            f"unknown scheduler {name!r} (known: {known}); check the "
            f"scheduler argument or the {SCHEDULER_ENV} environment variable"
        ) from None
    return cls()
