"""Bounded queues connecting pipeline stages.

Hardware queues (task queues, I/O buffers, controller request queues) are
modelled as :class:`BoundedQueue`: a FIFO with a capacity and an optional
drain callback.  Producers either test :meth:`BoundedQueue.full` first or
handle :class:`QueueFullError`; consumers register interest via
:meth:`BoundedQueue.on_push` so they wake up exactly when work arrives
(avoiding per-cycle polling, which keeps the event count low).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Raised when pushing to a full :class:`BoundedQueue`."""


class BoundedQueue(Generic[T]):
    """FIFO with bounded capacity and push notification.

    ``capacity=None`` means unbounded (used for idealized components).
    """

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._subscribers: List[Callable[[], None]] = []
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def empty(self) -> bool:
        return not self._items

    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`QueueFullError` when full."""
        if self.full():
            raise QueueFullError(f"queue '{self.name}' full (capacity={self.capacity})")
        self._items.append(item)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))
        for notify in self._subscribers:
            notify()

    def try_push(self, item: T) -> bool:
        """Append ``item`` if there is room; return whether it was queued."""
        if self.full():
            return False
        self.push(item)
        return True

    def pop(self) -> T:
        """Remove and return the oldest item."""
        if not self._items:
            raise IndexError(f"pop from empty queue '{self.name}'")
        self.pops += 1
        return self._items.popleft()

    def peek(self) -> T:
        """Return the oldest item without removing it."""
        if not self._items:
            raise IndexError(f"peek at empty queue '{self.name}'")
        return self._items[0]

    def remove(self, item: T) -> None:
        """Remove a specific item (used by FR-FCFS out-of-order issue)."""
        self._items.remove(item)
        self.pops += 1

    def items(self) -> Deque[T]:
        """The underlying deque (read-only use by schedulers)."""
        return self._items

    def on_push(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run synchronously after every push."""
        self._subscribers.append(callback)
