"""Bounded queues connecting pipeline stages.

Hardware queues (task queues, I/O buffers, controller request queues) are
modelled as :class:`BoundedQueue`: a FIFO with a capacity and an optional
drain callback.  Producers either test :meth:`BoundedQueue.full` first or
handle :class:`QueueFullError`; consumers register interest via
:meth:`BoundedQueue.on_push` so they wake up exactly when work arrives
(avoiding per-cycle polling, which keeps the event count low).
"""

from __future__ import annotations

# repro: allow-file[no-id-order] -- the tombstone table is identity-membership
# only: id(item) keys a dict that is never iterated or sorted, and holding the
# item reference pins the object so its id cannot be recycled.  FIFO order
# always comes from the deque, never from the ids.

from collections import deque
from typing import Callable, Deque, Dict, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Raised when pushing to a full :class:`BoundedQueue`."""


class BoundedQueue(Generic[T]):
    """FIFO with bounded capacity and push notification.

    ``capacity=None`` means unbounded (used for idealized components).

    Out-of-order removal (:meth:`remove`, the FR-FCFS issue path) is O(1):
    the entry is tombstoned rather than spliced out of the deque, and dead
    entries are skipped/purged lazily by ``pop``/``peek``/``items``.  The
    tombstone table maps ``id(item) -> item`` — holding the reference pins
    the object so its ``id`` cannot be recycled while the dead deque entry
    is still in place.
    """

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._items: Deque[T] = deque()
        self._dead: Dict[int, T] = {}
        # Live occupancy, maintained incrementally: the controller's
        # scheduling passes probe len()/bool() far more often than they
        # push or remove, so deriving it from the deque and tombstone
        # table on every probe showed up in profiles.
        self._live = 0
        self._subscribers: List[Callable[[], None]] = []
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def full(self) -> bool:
        return self.capacity is not None and self._live >= self.capacity

    def empty(self) -> bool:
        return not self

    def push(self, item: T) -> None:
        """Append ``item``; raises :class:`QueueFullError` when full."""
        if self.full():
            raise QueueFullError(f"queue '{self.name}' full (capacity={self.capacity})")
        self._items.append(item)
        self.pushes += 1
        self._live += 1
        if self._live > self.max_occupancy:
            self.max_occupancy = self._live
        for notify in self._subscribers:
            notify()

    def try_push(self, item: T) -> bool:
        """Append ``item`` if there is room; return whether it was queued."""
        if self.full():
            return False
        self.push(item)
        return True

    def _purge_head(self) -> None:
        """Drop tombstoned entries at the front of the deque."""
        items, dead = self._items, self._dead
        while items and id(items[0]) in dead:
            del dead[id(items.popleft())]

    def pop(self) -> T:
        """Remove and return the oldest item."""
        self._purge_head()
        if not self._items:
            raise IndexError(f"pop from empty queue '{self.name}'")
        self.pops += 1
        self._live -= 1
        return self._items.popleft()

    def peek(self) -> T:
        """Return the oldest item without removing it."""
        self._purge_head()
        if not self._items:
            raise IndexError(f"peek at empty queue '{self.name}'")
        return self._items[0]

    def remove(self, item: T) -> None:
        """Remove a specific item (used by FR-FCFS out-of-order issue).

        O(1): the entry is tombstoned in place.  The item must currently be
        in the queue; removing an absent or already-removed item raises
        :class:`ValueError` when detectable (same contract as before).
        """
        key = id(item)
        if key in self._dead:
            raise ValueError(f"item already removed from queue '{self.name}'")
        if self._items and self._items[0] is item:
            self._items.popleft()
        else:
            self._dead[key] = item
            # Keep the deque from accumulating unbounded garbage: rebuild
            # once tombstones outnumber live entries (amortized O(1)).
            if len(self._dead) > 8 and len(self._dead) * 2 >= len(self._items):
                self._items = deque(
                    i for i in self._items if id(i) not in self._dead
                )
                self._dead.clear()
        self.pops += 1
        self._live -= 1

    def items(self) -> Iterator[T]:
        """Iterate over the live items in FIFO order (read-only use by
        schedulers)."""
        if not self._dead:
            return iter(self._items)
        dead = self._dead
        return (item for item in self._items if id(item) not in dead)

    def on_push(self, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run synchronously after every push."""
        self._subscribers.append(callback)
