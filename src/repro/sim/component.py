"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Engine
from repro.sim.stats import StatScope


class Component:
    """A named component bound to an engine and a statistics scope.

    Components form a tree mirroring the hardware hierarchy (pool -> switch
    -> DIMM -> rank -> bank ...).  Each component owns a :class:`StatScope`
    nested under its parent's scope, so experiment reports can aggregate
    counters bottom-up (e.g. total DRAM activations across every DIMM).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        parent: Optional["Component"] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.parent = parent
        if parent is not None:
            self.stats = parent.stats.child(name)
        else:
            self.stats = StatScope(name)
            tracer = engine.tracer
            if tracer:
                # A root component names a whole system: label its trace
                # process and expose its stat tree to the metrics sampler.
                tracer.register_root(engine.trace_id, name, self.stats)

    @property
    def now(self) -> int:
        """Current simulation time (DRAM cycles)."""
        return self.engine.now

    @property
    def path(self) -> str:
        """Fully qualified dotted name of this component."""
        return self.stats.path

    def schedule(self, delay: int, callback) -> None:
        """Schedule ``callback`` after ``delay`` cycles."""
        self.engine.schedule(delay, callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.path} @ {self.now}>"
