"""Host model.

The host's role in the simulated pool is deliberately small — BEACON's whole
point is to keep data off the host — but it matters in three places:

* **Coherence detour** (Fig. 9 (a)/(c)): without the memory access
  optimization, every access to an unmodified CXL-DIMM crosses the host
  root complex both ways.  The detour's cost is the host's internal bus
  (finite bandwidth + processing latency) plus the extra host-link hops.
* **Framework endpoint**: memory allocation/de-allocation requests originate
  here (Section IV-C's workflow).
* **Baseline memory controller**: MEDAL/NEST inter-DIMM traffic is
  host-mediated on the DDR channels.
"""

from __future__ import annotations

from repro.cxl.link import Link, LinkParams
from repro.sim.component import Component


class Host(Component):
    """Host root complex: an internal forwarding bus plus bookkeeping."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        bus_params: LinkParams,
    ) -> None:
        super().__init__(engine, name, parent)
        #: Internal forwarding path every host-detoured message crosses.
        self.bus = Link(engine, f"{name}.bus", self, bus_params,
                        role="host_bus")

    def record_detour(self, wire_bytes: int) -> None:
        """Account one coherence-detour crossing (for the Fig. 9 analysis)."""
        self.stats.add("detour_messages", 1)
        self.stats.add("detour_bytes", wire_bytes)
        tracer = self.engine.tracer
        if tracer:
            tracer.instant("cxl", "host_detour", self.path, self.now,
                           pid=self.engine.trace_id)
