"""Serializing fabric links.

A :class:`Link` is one direction of a point-to-point channel: transfers
serialize at the link bandwidth, then arrive after the propagation latency.
The same class models CXL buses, host DDR channels (for the baselines), and
the internal Switch-Bus; only the parameters differ.  Idealized
communication — the "infinite bandwidth and zero latency" configuration of
Fig. 3 — is a link with :data:`IDEAL_LINK_PARAMS`.

Energy is accrued per wire byte (pJ/B), following the off-chip interconnect
energy numbers of CACTI-IO / Keckler et al. that the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.component import Component


@dataclass(frozen=True)
class LinkParams:
    """Bandwidth/latency/energy of one link direction."""

    #: Serialization bandwidth in bytes per DRAM cycle (1.25 ns).  A CXL x8
    #: PCIe5 port moves 32 GB/s = 40 B/cycle; a DDR4-1600 channel 12.8 GB/s
    #: = 16 B/cycle.
    bytes_per_cycle: float
    #: Propagation + protocol latency in cycles.
    latency_cycles: int
    #: Transfer energy in picojoules per byte.
    pj_per_byte: float = 0.0
    #: Infinite-bandwidth flag (idealized communication).
    ideal: bool = False

    def __post_init__(self) -> None:
        if not self.ideal and self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")


#: Fig. 3's imaginary idealized communication: instant data delivery.
IDEAL_LINK_PARAMS = LinkParams(bytes_per_cycle=1.0, latency_cycles=0,
                               pj_per_byte=0.0, ideal=True)


class Link(Component):
    """One direction of a point-to-point channel.

    ``role`` labels what the link physically is — ``"cxl_link"`` (a CXL
    port), ``"switch_bus"``, ``"host_bus"``, ``"ddr_bus"``, or the generic
    default ``"link"`` — and rides along in every ``xfer`` trace span so
    the latency-attribution stitcher can split wire time by fabric layer
    without a side-channel topology map.
    """

    def __init__(self, engine, name: str, parent, params: LinkParams,
                 role: str = "link") -> None:
        super().__init__(engine, name, parent)
        self.params = params
        self.role = role
        #: Cycle after which a new transfer would start serializing.  A
        #: plain attribute: the packer polls it on every send decision.
        self.free_at = 0
        # transfer() runs ~1M times per figure; hoist everything it needs
        # out of the params dataclass and the stats scope.  The canonical
        # bandwidths are whole bytes/cycle, so serialization can use int
        # ceil-division; a genuinely fractional bandwidth keeps the float
        # path (followed by the historical int() truncation).
        bpc = params.bytes_per_cycle
        ibpc = int(bpc) if not params.ideal else 1
        self._bpc = ibpc if ibpc == bpc else bpc
        self._pj = params.pj_per_byte
        self._counters = self.stats.counters

    def transfer(
        self,
        wire_bytes: int,
        on_delivered: Callable[[], None],
        tag: Optional[Dict[str, object]] = None,
    ) -> int:
        """Ship ``wire_bytes``; invoke ``on_delivered`` at arrival.

        Returns the delivery cycle.  Transfers serialize in submission
        order (the Bus Controllers arbitrate fairly, which FIFO order
        approximates).  ``tag`` adds caller context (request ids, message
        kind) to the emitted trace span; it is ignored when tracing is off.
        """
        if wire_bytes <= 0:
            raise ValueError("wire_bytes must be positive")
        params = self.params
        # Counter updates inlined (four per transfer, ~1M transfers per
        # figure): same accounting as ``stats.add`` without the call.  Keys
        # are created lazily on the first transfer, exactly as before, so
        # an idle link still reports no counters (diagnostics keys on
        # ``wire_bytes`` presence to find active links).
        counters = self._counters
        if "messages" not in counters:
            counters["messages"] = 0.0
            counters["wire_bytes"] = 0.0
            counters["energy_pj"] = 0.0
        counters["messages"] += 1
        counters["wire_bytes"] += wire_bytes
        counters["energy_pj"] += wire_bytes * self._pj
        engine = self.engine
        now = engine.now
        if params.ideal:
            engine.schedule(0, on_delivered)
            return now
        start = self.free_at
        if start < now:
            start = now
        serialize = int(-(-wire_bytes // self._bpc))
        free_at = start + serialize
        self.free_at = free_at
        arrive = free_at + params.latency_cycles
        if "busy_cycles" not in counters:
            counters["busy_cycles"] = 0.0
        counters["busy_cycles"] += serialize
        tracer = engine.tracer
        if tracer and tracer.wants("cxl"):
            args: Dict[str, object] = {
                "bytes": wire_bytes,
                "wait": start - now,
                "arrive": arrive,
                "role": self.role,
                "lat": params.latency_cycles,
            }
            if tag:
                args.update(tag)
            tracer.complete(
                "cxl", "xfer", self.path, start, serialize,
                pid=self.engine.trace_id, args=args,
            )
        engine.schedule_at(arrive, on_delivered)
        return arrive

    def utilization(self, end_cycle: int) -> float:
        """Fraction of cycles spent serializing, up to ``end_cycle``."""
        if end_cycle <= 0:
            return 0.0
        # repro: allow[int-cycle-arithmetic] -- derived reporting metric: a
        # post-run float fraction for reports, never fed back into timing.
        return min(1.0, self.stats.get("busy_cycles") / end_cycle)
