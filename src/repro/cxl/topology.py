"""Pool topologies, routing, and the memory-access fabric.

The systems under study differ mostly in *where computation sits* and *what
path memory traffic takes*:

* **BEACON-D** — PEs on CXLG-DIMMs; remote traffic turns around inside the
  owning CXL switch when the memory access optimization (device bias) is on,
  or detours through the host when it is off (Fig. 9 (a) vs (b)).
* **BEACON-S** — PEs in the switches; same bias behaviour (Fig. 9 (c)/(d)).
* **MEDAL/NEST** — PEs on DDR-DIMMs; every inter-DIMM transfer crosses the
  shared DDR channel twice (in and out) plus the host memory controller,
  which is the communication bottleneck BEACON removes.

A :class:`Fabric` is a tree of named nodes (host at the root, switches or
DDR channels in the middle, DIMMs at the leaves) with a
:class:`~repro.cxl.packer.PackedChannel` per direction per edge and internal
buses inside switches and the host.  :meth:`Fabric.route` walks the tree;
:meth:`MemoryPool.access` runs the full request -> DRAM -> response round
trip including controller backpressure and atomic hand-off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.cxl.flit import Message, MessageKind
from repro.cxl.host import Host
from repro.cxl.link import IDEAL_LINK_PARAMS, Link, LinkParams
from repro.cxl.packer import PackedChannel
from repro.cxl.switch import CxlSwitch
from repro.dram.controller import DimmController
from repro.dram.dimm import Dimm, DimmKind
from repro.dram.request import AccessKind, MemoryRequest
from repro.dram.timing import DimmGeometry, DramTiming
from repro.sim.component import Component

#: Wire payload of a read request / write ack (address + metadata).
READ_REQUEST_PAYLOAD = 8
WRITE_ACK_PAYLOAD = 2


@dataclass(frozen=True)
class CommParams:
    """All communication parameters of one system configuration."""

    #: CXL bus: host<->switch and switch<->DIMM (x8 PCIe5: 32 GB/s).
    cxl_link: LinkParams = LinkParams(bytes_per_cycle=40.0, latency_cycles=40,
                                      pj_per_byte=30.0)
    #: The in-switch Switch-Bus (wide, short).
    switch_bus: LinkParams = LinkParams(bytes_per_cycle=128.0, latency_cycles=6,
                                        pj_per_byte=3.0)
    #: Host root-complex forwarding path (the coherence detour cost).
    host_bus: LinkParams = LinkParams(bytes_per_cycle=64.0, latency_cycles=80,
                                      pj_per_byte=30.0)
    #: Shared DDR channel of the baseline systems (12.8 GB/s).
    ddr_channel: LinkParams = LinkParams(bytes_per_cycle=16.0, latency_cycles=20,
                                         pj_per_byte=25.0)
    #: PE -> local on-DIMM memory controller latency (cycles).
    dimm_local_latency: int = 4
    #: Data Packer enabled (Fig. 6)?
    data_packing: bool = False
    #: Memory access optimization / device bias (Fig. 9)?
    device_bias: bool = False
    #: Data Packer flush timeout in cycles.
    flush_timeout: int = 8
    #: RMW arithmetic latency of a local (same-DIMM NDP) atomic.
    atomic_compute_cycles: int = 4
    #: Replace every link with idealized communication (Fig. 3)?
    ideal: bool = False

    def resolve(self, params: LinkParams) -> LinkParams:
        """Apply the idealized-communication override."""
        return IDEAL_LINK_PARAMS if self.ideal else params

    def idealized(self) -> "CommParams":
        """A copy with infinite-bandwidth, zero-latency communication."""
        return replace(self, ideal=True, dimm_local_latency=0)


@dataclass
class Route:
    """An ordered list of channel hops between two nodes."""

    src: str
    dst: str
    hops: List[PackedChannel]
    via_host: bool

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class _RouteProgress:
    """Walks one payload along a route's hops, then fires the callback.

    One slotted walker and one :class:`Message` serve the whole route: hop
    ``i + 1`` only begins after hop ``i`` delivers, so the message is never
    on two channels at once and can be re-sent as-is.  This replaces the
    historical per-hop ``Message`` + closure pair on the hottest fabric
    path.
    """

    __slots__ = ("hops", "index", "on_delivered", "message")

    def __init__(
        self,
        hops: List[PackedChannel],
        kind: MessageKind,
        payload_bytes: int,
        destination: str,
        cargo: object,
        on_delivered: Callable[[], None],
    ) -> None:
        self.hops = hops
        self.index = 0
        self.on_delivered = on_delivered
        self.message = Message(
            kind=kind,
            payload_bytes=payload_bytes,
            destination=destination,
            cargo=cargo,
            on_delivered=self._advance,
        )

    def start(self) -> None:
        self.hops[0].send(self.message)

    def _advance(self, _message: Message) -> None:
        index = self.index + 1
        if index == len(self.hops):
            self.on_delivered()
            return
        self.index = index
        self.hops[index].send(self.message)


class Fabric(Component):
    """Tree-structured interconnect with per-edge packed channels."""

    def __init__(self, engine, name: str, parent, comm: CommParams) -> None:
        super().__init__(engine, name, parent)
        self.comm = comm
        self._parent_of: Dict[str, Optional[str]] = {}
        self._channels: Dict[Tuple[str, str], PackedChannel] = {}
        self._internal: Dict[str, PackedChannel] = {}
        self.host: Optional[Host] = None
        self.switches: Dict[str, CxlSwitch] = {}
        #: (src, dst, force_host) -> (route, switches that turn the
        #: traffic around).  Routes over a fixed topology are pure, so
        #: they are computed once; the per-call *accounting* side effects
        #: (host detour / switch turnaround counters) are replayed from
        #: the cached entry.  Cleared whenever the topology grows.
        self._route_cache: Dict[
            Tuple[str, str, bool], Tuple[Route, List[CxlSwitch]]
        ] = {}

    # -- construction -------------------------------------------------------------

    def add_host(self, name: str = "host") -> Host:
        self._route_cache.clear()
        self.host = Host(self.engine, name, self, self.comm.resolve(self.comm.host_bus))
        self._parent_of[name] = None
        self._internal[name] = self._make_channel(self.host.bus, f"{name}.buschan")
        return self.host

    def add_switch(self, name: str, uplink: Optional[LinkParams] = None) -> CxlSwitch:
        if self.host is None:
            raise RuntimeError("add_host first")
        self._route_cache.clear()
        switch = CxlSwitch(
            self.engine, name, self, self.comm.resolve(self.comm.switch_bus)
        )
        self.switches[name] = switch
        self._parent_of[name] = self.host.name
        self._internal[name] = self._make_channel(switch.bus, f"{name}.buschan")
        self._connect(self.host.name, name, uplink or self.comm.cxl_link)
        return switch

    def add_ddr_channel_node(self, name: str) -> Link:
        """A DDR channel: a mid-tree node whose *edges* share one bus.

        Returns the shared bus link so callers can attach DIMMs to it.
        The host<->channel edge is free (the channel terminates at the host
        memory controller); the host bus itself models the MC cost.
        """
        if self.host is None:
            raise RuntimeError("add_host first")
        self._route_cache.clear()
        self._parent_of[name] = self.host.name
        shared = Link(
            self.engine, f"{name}.bus", self,
            self.comm.resolve(self.comm.ddr_channel), role="ddr_bus",
        )
        self._connect(self.host.name, name, IDEAL_LINK_PARAMS)
        self._shared_buses = getattr(self, "_shared_buses", {})
        self._shared_buses[name] = shared
        return shared

    def add_dimm_node(self, name: str, parent: str,
                      downlink: Optional[LinkParams] = None) -> None:
        if parent not in self._parent_of:
            raise ValueError(f"unknown parent node {parent!r}")
        self._route_cache.clear()
        self._parent_of[name] = parent
        shared = getattr(self, "_shared_buses", {}).get(parent)
        if shared is not None:
            # DDR multidrop: every DIMM<->channel edge shares the bus link.
            self._connect_shared(parent, name, shared)
        else:
            self._connect(parent, name, downlink or self.comm.cxl_link)
        if parent in self.switches:
            self.switches[parent].attach_dimm(name)

    def _make_channel(self, link: Link, name: str) -> PackedChannel:
        return PackedChannel(
            self.engine, name, self, link,
            packing=self.comm.data_packing,
            flush_timeout=self.comm.flush_timeout,
        )

    def _connect(self, a: str, b: str, params: LinkParams) -> None:
        resolved = self.comm.resolve(params)
        for src, dst in ((a, b), (b, a)):
            link = Link(self.engine, f"{src}->{dst}", self, resolved,
                        role="cxl_link")
            self._channels[(src, dst)] = self._make_channel(link, f"{src}->{dst}.chan")

    def _connect_shared(self, a: str, b: str, shared: Link) -> None:
        for src, dst in ((a, b), (b, a)):
            self._channels[(src, dst)] = self._make_channel(
                shared, f"{src}->{dst}.chan"
            )

    # -- routing --------------------------------------------------------------------

    def _ancestors(self, node: str) -> List[str]:
        chain = [node]
        while self._parent_of[chain[-1]] is not None:
            chain.append(self._parent_of[chain[-1]])
        return chain

    def route(self, src: str, dst: str, force_host: bool = False) -> Route:
        """Channel hops from ``src`` to ``dst``.

        ``force_host`` models the missing device-bias optimization: the
        route is stretched to the host even when a switch could turn the
        traffic around locally.

        Each call also performs per-traversal *accounting* (host-detour /
        switch-turnaround counters); routes themselves are memoized over
        the fixed topology and the accounting is replayed on cache hits.
        """
        key = (src, dst, force_host)
        cached = self._route_cache.get(key)
        if cached is not None:
            route, turnarounds = cached
            if route.via_host:
                self.host.record_detour(0)
            else:
                for switch in turnarounds:
                    switch.record_turnaround()
            return route
        if src == dst:
            route = Route(src, dst, [], via_host=False)
            self._route_cache[key] = (route, [])
            return route
        up = self._ancestors(src)
        down = self._ancestors(dst)
        up_index = {n: i for i, n in enumerate(up)}
        pivot = next(n for n in down if n in up_index)
        if force_host and self.host is not None:
            pivot = self.host.name
        seq = up[: up_index[pivot] + 1] + list(reversed(down[: down.index(pivot)]))
        hops: List[PackedChannel] = []
        for i, node in enumerate(seq):
            if i > 0:
                hops.append(self._channels[(seq[i - 1], node)])
            # Traffic entering a switch or the host crosses its internal
            # bus once; DIMM and DDR-channel nodes have no internal bus.
            if node in self._internal:
                hops.append(self._internal[node])
        via_host = self.host is not None and self.host.name in seq
        turnarounds: List[CxlSwitch] = []
        if via_host and self.host is not None:
            self.host.record_detour(0)
        else:
            for node in seq[1:-1]:
                switch = self.switches.get(node)
                if switch is not None:
                    switch.record_turnaround()
                    turnarounds.append(switch)
        route = Route(src, dst, hops, via_host)
        self._route_cache[key] = (route, turnarounds)
        return route

    # -- transfer ----------------------------------------------------------------------

    def send(
        self,
        route: Route,
        kind: MessageKind,
        payload_bytes: int,
        on_delivered: Callable[[], None],
        cargo: object = None,
    ) -> None:
        """Move a payload along ``route`` hop by hop, then call back."""
        hops = route.hops
        if not hops:
            self.engine.schedule(self.comm.dimm_local_latency, on_delivered)
            return
        _RouteProgress(
            hops, kind, payload_bytes, route.dst, cargo, on_delivered
        ).start()

    def comm_energy_pj(self) -> float:
        """Total communication energy accrued on every link of the fabric."""
        return self.stats.total("energy_pj")


class _AccessFlight:
    """One non-atomic access in flight through the pool.

    Carries the response route and the caller's continuation across the
    request trip / DRAM service / response trip sequence as bound-method
    callbacks — the pool serves one of these per memory request, where
    the previous closure trio was a measurable allocation cost.
    """

    __slots__ = ("pool", "request", "route_resp", "original_cb")

    def __init__(self, pool: "MemoryPool", request: MemoryRequest,
                 route_resp: Route) -> None:
        self.pool = pool
        self.request = request
        self.route_resp = route_resp
        self.original_cb = request.on_complete

    def submit(self) -> None:
        """Request arrived at the DIMM: hand it to the controller."""
        request = self.request
        request.on_complete = self.on_dram_done
        self.pool.controllers[request.dimm_index].submit_when_possible(request)

    def on_dram_done(self, req: MemoryRequest) -> None:
        """DRAM serviced the request: send the response back."""
        payload = WRITE_ACK_PAYLOAD if req.is_write else req.size
        self.pool.fabric.send(
            self.route_resp, MessageKind.MEM_RESPONSE, payload,
            on_delivered=self.deliver, cargo=req,
        )

    def deliver(self) -> None:
        """Response arrived at the source: fire the caller's callback."""
        self.pool._finish(self.request, self.original_cb)


class MemoryPool(Component):
    """Fabric + DIMMs + controllers: the complete simulated memory system."""

    #: Retry delay when a DIMM controller queue is full.
    RETRY_CYCLES = 16

    def __init__(
        self,
        engine,
        name: str,
        parent,
        comm: CommParams,
        geometry: DimmGeometry = DimmGeometry(),
        timing: DramTiming = DramTiming(),
    ) -> None:
        super().__init__(engine, name, parent)
        self.comm = comm
        self.geometry = geometry
        self.timing = timing
        self.fabric = Fabric(engine, "fabric", self, comm)
        self.dimms: List[Dimm] = []
        self.controllers: List[DimmController] = []
        self.dimm_nodes: List[str] = []
        self._dimm_parent: Dict[int, str] = {}
        self._atomic_engines: Dict[str, object] = {}

    # -- construction ---------------------------------------------------------------

    def add_dimm(self, node_name: str, parent_node: str, kind: DimmKind) -> int:
        """Create a DIMM + controller attached at ``parent_node``."""
        index = len(self.dimms)
        dimm = Dimm(self.engine, node_name, self, kind, self.geometry, self.timing)
        controller = DimmController(self.engine, f"{node_name}.mc", self, dimm)
        self.fabric.add_dimm_node(node_name, parent_node)
        self.dimms.append(dimm)
        self.controllers.append(controller)
        self.dimm_nodes.append(node_name)
        self._dimm_parent[index] = parent_node
        return index

    def owner_switch(self, dimm_index: int) -> str:
        """Node name of the switch/channel the DIMM hangs below."""
        return self._dimm_parent[dimm_index]

    def register_atomic_engine(self, node_name: str, engine_obj) -> None:
        """Attach the component serving ATOMIC_RMW at ``node_name``.

        ``engine_obj`` must provide ``perform(pool, request, respond)``.
        """
        self._atomic_engines[node_name] = engine_obj

    # -- request-lifecycle tracing ------------------------------------------------------

    def _trace_req_begin(self, request: MemoryRequest,
                         src_node: str, dst_node: str) -> None:
        """Open the async ``req`` span anchoring this request's lifetime."""
        tracer = self.engine.tracer
        if tracer and tracer.wants("req"):
            tracer.async_begin(
                "req", "mem_req", self.path, self.now, request.req_id,
                pid=self.engine.trace_id,
                args={"task": request.task_id, "src": src_node,
                      "dst": dst_node, "kind": request.kind.value,
                      "size": request.size},
            )

    def _trace_req_end(self, request: MemoryRequest) -> None:
        """Close the async ``req`` span opened by :meth:`_trace_req_begin`."""
        tracer = self.engine.tracer
        if tracer and tracer.wants("req"):
            tracer.async_end("req", "mem_req", self.path, self.now,
                             request.req_id, pid=self.engine.trace_id)

    # -- the access path ----------------------------------------------------------------

    def access(self, request: MemoryRequest, src_node: str) -> None:
        """Run one memory access from ``src_node`` to completion.

        Handles routing (with/without device bias), controller submission
        with backpressure retry, the response trip, and atomic hand-off to
        the owning switch's Atomic Engine.
        """
        if request.dimm_index is None or request.coord is None:
            raise ValueError("request must be translated before access()")
        if request.issued_at is None:
            request.issued_at = self.now
        dst_node = self.dimm_nodes[request.dimm_index]
        self._trace_req_begin(request, src_node, dst_node)

        if request.kind is AccessKind.ATOMIC_RMW:
            if src_node != dst_node:
                self._route_atomic(request, src_node, dst_node)
            else:
                self._local_atomic(request, src_node)
            return

        force_host = not self.comm.device_bias
        if src_node == dst_node:
            force_host = False  # a PE's own DIMM is always device memory
        route_req = self.fabric.route(src_node, dst_node, force_host=force_host)
        route_resp = self.fabric.route(dst_node, src_node, force_host=force_host)

        flight = _AccessFlight(self, request, route_resp)
        req_payload = READ_REQUEST_PAYLOAD + (request.size if request.is_write else 0)
        self.fabric.send(
            route_req, MessageKind.MEM_REQUEST, req_payload,
            on_delivered=flight.submit, cargo=request,
        )

    def _finish(self, request: MemoryRequest, callback) -> None:
        request.on_complete = callback
        request.completed_at = self.now
        self._trace_req_end(request)
        if callback is not None:
            callback(request)

    def _route_atomic(self, request: MemoryRequest, src_node: str, dst_node: str) -> None:
        """Fig. 7: ship the atomic to the owning switch's Atomic Engine."""
        switch_node = self.owner_switch(request.dimm_index)
        engine_obj = self._atomic_engines.get(switch_node)
        if engine_obj is None:
            raise RuntimeError(f"no atomic engine registered at {switch_node}")
        force_host = not self.comm.device_bias
        route_req = self.fabric.route(src_node, switch_node, force_host=force_host)
        route_resp = self.fabric.route(switch_node, src_node, force_host=force_host)
        original_callback = request.on_complete

        def respond(req: MemoryRequest) -> None:
            self.fabric.send(
                route_resp, MessageKind.MEM_RESPONSE, WRITE_ACK_PAYLOAD,
                on_delivered=lambda: self._finish(req, original_callback),
                cargo=req,
            )

        def at_switch() -> None:
            engine_obj.perform(self, request, respond)

        self.fabric.send(
            route_req, MessageKind.MEM_REQUEST,
            READ_REQUEST_PAYLOAD + request.size,
            on_delivered=at_switch, cargo=request,
        )

    def _local_atomic(self, request: MemoryRequest, src_node: str) -> None:
        """RMW on the NDP module's own DIMM (BEACON-D local counters):
        read, arithmetic in the module, write back — no fabric involved."""
        original_callback = request.on_complete

        def after_read(_r: MemoryRequest) -> None:
            self.engine.schedule(self.comm.atomic_compute_cycles, do_write)

        def do_write() -> None:
            write = MemoryRequest(
                addr=request.addr, size=request.size, kind=AccessKind.WRITE,
                data_class=request.data_class, task_id=request.task_id,
                source=src_node,
            )
            write.dimm_index = request.dimm_index
            write.coord = request.coord
            self.dram_access(
                write, src_node,
                on_done=lambda _w: self._finish(request, original_callback),
            )

        read = MemoryRequest(
            addr=request.addr, size=request.size, kind=AccessKind.READ,
            data_class=request.data_class, task_id=request.task_id,
            source=src_node,
        )
        read.dimm_index = request.dimm_index
        read.coord = request.coord
        self.dram_access(read, src_node, on_done=after_read)

    # -- local (same-node) DRAM access used by atomic engines -----------------------------

    def dram_access(
        self,
        request: MemoryRequest,
        src_node: str,
        on_done: Callable[[MemoryRequest], None],
    ) -> None:
        """Switch-local DRAM round trip (switch -> DIMM -> switch).

        Used by the Atomic Engines for the read and write halves of an RMW;
        bias never matters here because the switch owns the DIMM.
        """
        dst_node = self.dimm_nodes[request.dimm_index]
        self._trace_req_begin(request, src_node, dst_node)
        route_req = self.fabric.route(src_node, dst_node, force_host=False)
        route_resp = self.fabric.route(dst_node, src_node, force_host=False)

        def delivered(req: MemoryRequest) -> None:
            self._trace_req_end(req)
            on_done(req)

        def on_dram_done(req: MemoryRequest) -> None:
            payload = WRITE_ACK_PAYLOAD if req.is_write else req.size
            self.fabric.send(
                route_resp, MessageKind.MEM_RESPONSE, payload,
                on_delivered=lambda: delivered(req), cargo=req,
            )

        def submit() -> None:
            request.on_complete = on_dram_done
            self.controllers[request.dimm_index].submit_when_possible(request)

        req_payload = READ_REQUEST_PAYLOAD + (request.size if request.is_write else 0)
        self.fabric.send(
            route_req, MessageKind.MEM_REQUEST, req_payload,
            on_delivered=submit, cargo=request,
        )
