"""Data Packer: fine-grained payload aggregation into flits (Fig. 6).

Genome analysis moves lots of tiny payloads (32 B occ blocks, 4 B hash
locations, sub-byte Bloom counters) over a fabric whose native transfer
granularity is 64 B.  Without packing, every payload rounds up to whole
flits and most wire bytes are useless.  The Data Packer sits at each link
entry: it accumulates small payloads, emits a flit once full, and flushes
after a short timeout so trickling traffic is not stalled indefinitely.

:class:`PackedChannel` is the uniform send interface used by everything
above the link layer; construction chooses packing on or off, so the
``data_packing`` optimization flag of the experiments is literally "which
channel wrapper the topology builder instantiated".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cxl.flit import FLIT_BYTES, Message
from repro.cxl.link import Link
from repro.sim.component import Component


def _wire_tag(batch: List[Message]) -> Dict[str, object]:
    """Trace-span tag for a link transfer carrying ``batch``.

    ``reqs`` lists the memory-request ids riding the wire (from each
    message's cargo, when it is a request) so the latency stitcher can
    attribute serialization time to individual requests; ``kind`` is the
    message kind when the batch is uniform.
    """
    tag: Dict[str, object] = {}
    reqs = [
        req_id
        for req_id in (
            getattr(message.cargo, "req_id", None) for message in batch
        )
        if req_id is not None
    ]
    if reqs:
        tag["reqs"] = reqs
    kinds = {message.kind.value for message in batch}
    if len(kinds) == 1:
        # repro: allow[no-set-iteration-order] -- guarded by len == 1: taking
        # the sole element of a singleton set is order-independent.
        tag["kind"] = next(iter(kinds))
    return tag


class _BatchDelivery:
    """Delivers one flushed batch of packed messages at link arrival.

    A slotted callable instead of a per-flush closure; after delivery the
    batch list is recycled into the channel's small freelist so steady-state
    packing allocates one ``_BatchDelivery`` per flush and nothing else.
    """

    __slots__ = ("channel", "batch")

    def __init__(self, channel: "PackedChannel", batch: List[Message]) -> None:
        self.channel = channel
        self.batch = batch

    def __call__(self) -> None:
        batch = self.batch
        for message in batch:
            cb = message.on_delivered
            if cb is not None:
                cb(message)
        # Delivery callbacks only ever append to the channel's *current*
        # buffer, never to this already-shipped batch, so it is safe to
        # recycle here.
        free = self.channel._free_batches
        if len(free) < PackedChannel.BATCH_FREELIST_CAP:
            batch.clear()
            free.append(batch)


class PackedChannel(Component):
    """Send interface over one link, with or without data packing."""

    #: Cap on retained drained batch lists for reuse.
    BATCH_FREELIST_CAP = 8

    def __init__(
        self,
        engine,
        name: str,
        parent,
        link: Link,
        packing: bool,
        flush_timeout: int = 8,
    ) -> None:
        super().__init__(engine, name, parent)
        if flush_timeout <= 0:
            raise ValueError("flush_timeout must be positive")
        self.link = link
        self.packing = packing
        self.flush_timeout = flush_timeout
        self._buffer: List[Message] = []
        self._buffer_bytes = 0
        self._flush_scheduled_at: Optional[int] = None
        #: Live handle for the pending timeout flush (cancellable, so a
        #: buffer-full flush retracts the timer instead of leaving a dead
        #: event in the queue).
        self._flush_handle = None
        self._free_batches: List[List[Message]] = []
        self._counters = self.stats.counters

    def send(self, message: Message) -> None:
        """Queue ``message`` for transfer; its callback fires at delivery."""
        engine = self.engine
        now = engine.now
        message.created_at = now
        # Inlined counter updates (one per send/flush, ~1M sends per
        # figure); lazily created keys, same accounting as ``stats.add``.
        counters = self._counters
        if "payload_bytes" not in counters:
            counters["payload_bytes"] = 0.0
        counters["payload_bytes"] += message.payload_bytes
        packed_bytes = message.packed_wire_bytes
        if not self.packing or packed_bytes >= FLIT_BYTES:
            # Large payloads gain nothing from packing; ship them directly.
            if "direct_messages" not in counters:
                counters["direct_messages"] = 0.0
            counters["direct_messages"] += 1
            tag = _wire_tag([message]) if engine.tracer else None
            self.link.transfer(message.unpacked_wire_bytes, message.deliver,
                               tag=tag)
            return
        link = self.link
        if not self._buffer and link.free_at <= now and engine.tracer is None:
            # Idle link, empty buffer: this message would flush alone this
            # cycle anyway (one sub-flit payload -> one flit); skip the
            # buffer round-trip.  Kept off under tracing so the flit_flush
            # instant stream is unchanged.
            if "packed_flits" not in counters:
                counters["packed_flits"] = 0.0
                counters["packed_messages"] = 0.0
            counters["packed_flits"] += 1
            counters["packed_messages"] += 1
            link.transfer(FLIT_BYTES, message.deliver)
            return
        self._buffer.append(message)
        self._buffer_bytes += packed_bytes
        if self._buffer_bytes >= FLIT_BYTES:
            self._flush()
        elif link.free_at <= now:
            # Link is idle: waiting for co-travellers would only add latency.
            self._flush()
        else:
            # Link is draining other traffic; buffer until it frees (capped
            # by the flush timeout) so packing costs no extra latency.
            self._arm_flush_timer()

    # -- packing internals ------------------------------------------------------

    def _arm_flush_timer(self) -> None:
        now = self.engine.now
        wait = self.link.free_at - now
        if wait < 1:
            wait = 1
        elif wait > self.flush_timeout:
            wait = self.flush_timeout
        deadline = now + wait
        if self._flush_scheduled_at is not None:
            if self._flush_scheduled_at <= deadline:
                return
            self._flush_handle.cancel()
        self._flush_scheduled_at = deadline
        self._flush_handle = self.engine.schedule_cancellable(
            wait, self._timeout_flush
        )

    def _timeout_flush(self) -> None:
        self._flush_scheduled_at = None
        self._flush_handle = None
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        batch = self._buffer
        batch_bytes = self._buffer_bytes
        free = self._free_batches
        self._buffer = free.pop() if free else []
        self._buffer_bytes = 0
        if self._flush_scheduled_at is not None:
            self._flush_scheduled_at = None
            self._flush_handle.cancel()
            self._flush_handle = None
        wire = -(-batch_bytes // FLIT_BYTES) * FLIT_BYTES
        counters = self._counters
        if "packed_flits" not in counters:
            counters["packed_flits"] = 0.0
            counters["packed_messages"] = 0.0
        counters["packed_flits"] += wire // FLIT_BYTES
        counters["packed_messages"] += len(batch)
        tracer = self.engine.tracer
        tag = None
        if tracer:
            tag = _wire_tag(batch)
            args: Dict[str, object] = {
                "messages": len(batch), "payload_bytes": batch_bytes,
                "wire_bytes": wire,
                # Per-request buffering time (cycles spent waiting for
                # co-travellers), aligned index-for-index with ``reqs``.
                "waits": [
                    self.now - (m.created_at or self.now)
                    for m in batch
                    if getattr(m.cargo, "req_id", None) is not None
                ],
            }
            args.update(tag)
            tracer.instant(
                "cxl", "flit_flush", self.path, self.now,
                pid=self.engine.trace_id, args=args,
            )
        if len(batch) == 1:
            # Idle-link sends flush immediately, so single-message batches
            # dominate: ship the message's own bound ``deliver`` and recycle
            # the list now instead of allocating a ``_BatchDelivery``.
            message = batch[0]
            batch.clear()
            if len(free) < PackedChannel.BATCH_FREELIST_CAP:
                free.append(batch)
            self.link.transfer(wire, message.deliver, tag=tag)
            return
        self.link.transfer(wire, _BatchDelivery(self, batch), tag=tag)

    # -- reporting ----------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def packing_efficiency(self) -> float:
        """Useful payload bytes per wire byte shipped by this channel."""
        wire = self.link.stats.get("wire_bytes")
        if wire == 0:
            return 0.0
        return self.stats.get("payload_bytes") / wire
