"""Data Packer: fine-grained payload aggregation into flits (Fig. 6).

Genome analysis moves lots of tiny payloads (32 B occ blocks, 4 B hash
locations, sub-byte Bloom counters) over a fabric whose native transfer
granularity is 64 B.  Without packing, every payload rounds up to whole
flits and most wire bytes are useless.  The Data Packer sits at each link
entry: it accumulates small payloads, emits a flit once full, and flushes
after a short timeout so trickling traffic is not stalled indefinitely.

:class:`PackedChannel` is the uniform send interface used by everything
above the link layer; construction chooses packing on or off, so the
``data_packing`` optimization flag of the experiments is literally "which
channel wrapper the topology builder instantiated".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cxl.flit import FLIT_BYTES, Message
from repro.cxl.link import Link
from repro.sim.component import Component


def _wire_tag(batch: List[Message]) -> Dict[str, object]:
    """Trace-span tag for a link transfer carrying ``batch``.

    ``reqs`` lists the memory-request ids riding the wire (from each
    message's cargo, when it is a request) so the latency stitcher can
    attribute serialization time to individual requests; ``kind`` is the
    message kind when the batch is uniform.
    """
    tag: Dict[str, object] = {}
    reqs = [
        req_id
        for req_id in (
            getattr(message.cargo, "req_id", None) for message in batch
        )
        if req_id is not None
    ]
    if reqs:
        tag["reqs"] = reqs
    kinds = {message.kind.value for message in batch}
    if len(kinds) == 1:
        # repro: allow[no-set-iteration-order] -- guarded by len == 1: taking
        # the sole element of a singleton set is order-independent.
        tag["kind"] = next(iter(kinds))
    return tag


class PackedChannel(Component):
    """Send interface over one link, with or without data packing."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        link: Link,
        packing: bool,
        flush_timeout: int = 8,
    ) -> None:
        super().__init__(engine, name, parent)
        if flush_timeout <= 0:
            raise ValueError("flush_timeout must be positive")
        self.link = link
        self.packing = packing
        self.flush_timeout = flush_timeout
        self._buffer: List[Message] = []
        self._buffer_bytes = 0
        self._flush_scheduled_at: Optional[int] = None

    def send(self, message: Message) -> None:
        """Queue ``message`` for transfer; its callback fires at delivery."""
        message.created_at = self.now
        self.stats.add("payload_bytes", message.payload_bytes)
        if not self.packing or message.packed_wire_bytes >= FLIT_BYTES:
            # Large payloads gain nothing from packing; ship them directly.
            self.stats.add("direct_messages", 1)
            tracer = self.engine.tracer
            tag = _wire_tag([message]) if tracer else None
            self.link.transfer(message.unpacked_wire_bytes, message.deliver,
                               tag=tag)
            return
        self._buffer.append(message)
        self._buffer_bytes += message.packed_wire_bytes
        if self._buffer_bytes >= FLIT_BYTES:
            self._flush()
        elif self.link.free_at <= self.now:
            # Link is idle: waiting for co-travellers would only add latency.
            self._flush()
        else:
            # Link is draining other traffic; buffer until it frees (capped
            # by the flush timeout) so packing costs no extra latency.
            self._arm_flush_timer()

    # -- packing internals ------------------------------------------------------

    def _arm_flush_timer(self) -> None:
        wait = min(self.flush_timeout, max(1, self.link.free_at - self.now))
        deadline = self.now + wait
        if self._flush_scheduled_at is not None and self._flush_scheduled_at <= deadline:
            return
        self._flush_scheduled_at = deadline
        self.engine.schedule(wait, self._timeout_flush)

    def _timeout_flush(self) -> None:
        if self._flush_scheduled_at is None or self.now < self._flush_scheduled_at:
            return
        self._flush_scheduled_at = None
        if self._buffer:
            self._flush()

    def _flush(self) -> None:
        batch = self._buffer
        batch_bytes = self._buffer_bytes
        self._buffer = []
        self._buffer_bytes = 0
        self._flush_scheduled_at = None
        wire = -(-batch_bytes // FLIT_BYTES) * FLIT_BYTES
        self.stats.add("packed_flits", wire // FLIT_BYTES)
        self.stats.add("packed_messages", len(batch))
        tracer = self.engine.tracer
        tag = None
        if tracer:
            tag = _wire_tag(batch)
            args: Dict[str, object] = {
                "messages": len(batch), "payload_bytes": batch_bytes,
                "wire_bytes": wire,
                # Per-request buffering time (cycles spent waiting for
                # co-travellers), aligned index-for-index with ``reqs``.
                "waits": [
                    self.now - (m.created_at or self.now)
                    for m in batch
                    if getattr(m.cargo, "req_id", None) is not None
                ],
            }
            args.update(tag)
            tracer.instant(
                "cxl", "flit_flush", self.path, self.now,
                pid=self.engine.trace_id, args=args,
            )

        def deliver_all() -> None:
            for message in batch:
                message.deliver()

        self.link.transfer(wire, deliver_all, tag=tag)

    # -- reporting ----------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def packing_efficiency(self) -> float:
        """Useful payload bytes per wire byte shipped by this channel."""
        wire = self.link.stats.get("wire_bytes")
        if wire == 0:
            return 0.0
        return self.stats.get("payload_bytes") / wire
