"""CXL fabric substrate: flits, links, switches, interfaces, host, topology.

Models the communication side of the memory pool: serializing full-duplex
links with CXL's 64-byte transfer granularity, the Data Packer that
aggregates fine-grained payloads into flits (Fig. 6), CXL switches with the
added Switch-Bus for in-switch routing, the host root complex (whose detour
the device-bias memory access optimization removes, Fig. 9), and topology
builders for every system the paper evaluates.
"""

from repro.cxl.flit import FLIT_BYTES, Message, MessageKind
from repro.cxl.link import IDEAL_LINK_PARAMS, Link, LinkParams
from repro.cxl.packer import PackedChannel
from repro.cxl.host import Host
from repro.cxl.switch import CxlSwitch
from repro.cxl.topology import (
    CommParams,
    Fabric,
    Route,
)

__all__ = [
    "CommParams",
    "CxlSwitch",
    "FLIT_BYTES",
    "Fabric",
    "Host",
    "IDEAL_LINK_PARAMS",
    "Link",
    "LinkParams",
    "Message",
    "MessageKind",
    "PackedChannel",
    "Route",
]
