"""Flits and messages on the CXL fabric."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

#: CXL's default data transfer granularity (Section IV-B: "the default data
#: transfer granularity in CXL is 64 Bytes").
FLIT_BYTES = 64

#: Header bytes per memory request on the wire (address + metadata).
REQUEST_HEADER_BYTES = 16
#: Header bytes prefixed to each packed payload so the unpacker can separate
#: and route it (Fig. 6's per-datum tag).
PACKED_HEADER_BYTES = 2
#: Header bytes per response message.
RESPONSE_HEADER_BYTES = 8


class MessageKind(enum.Enum):
    """What a fabric message carries."""

    MEM_REQUEST = "mem_request"     # a memory read/write command
    MEM_RESPONSE = "mem_response"   # data returning to a requester
    TASK = "task"                   # a task dispatch (read + metadata)
    CONTROL = "control"             # framework/coherence traffic


_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One logical payload travelling the fabric.

    ``payload_bytes`` is the *useful* content; how many wire bytes it costs
    depends on whether the channel packs fine-grained payloads together
    (see :class:`repro.cxl.packer.PackedChannel`).

    The wire-cost fields are fixed by ``kind``/``payload_bytes`` and read
    on every fabric hop, so they are computed once at construction rather
    than exposed as properties.
    """

    kind: MessageKind
    payload_bytes: int
    destination: str
    on_delivered: Optional[Callable[["Message"], None]] = None
    #: Arbitrary cargo (usually the MemoryRequest this message moves).
    cargo: object = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    created_at: Optional[int] = None
    #: Per-message header cost when packed into a shared flit.
    header_bytes: int = field(init=False)
    #: Wire cost contribution when sharing flits with other payloads.
    packed_wire_bytes: int = field(init=False)
    #: Wire cost without data packing: whole flits only.
    unpacked_wire_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.kind is MessageKind.MEM_REQUEST:
            header = REQUEST_HEADER_BYTES
        else:
            header = PACKED_HEADER_BYTES
        self.header_bytes = header
        total = self.payload_bytes + header
        self.packed_wire_bytes = total
        self.unpacked_wire_bytes = -(-total // FLIT_BYTES) * FLIT_BYTES

    def deliver(self) -> None:
        if self.on_delivered is not None:
            self.on_delivered(self)
