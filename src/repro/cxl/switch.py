"""CXL switch model.

A switch owns one upstream port (to the host), several downstream ports (to
CXL-DIMMs), and — in BEACON — the added **Switch-Bus** governed by a Bus
Controller, which lets traffic between two components of the same switch
turn around locally instead of travelling up to the host (Section IV-B's
in-switch data routing).  The Switch-Logic (MCs, Data Packers, Atomic
Engines, and for BEACON-S the NDP module) attaches here; its behavioural
pieces live in :mod:`repro.core.switch_logic`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cxl.link import Link, LinkParams
from repro.sim.component import Component


class CxlSwitch(Component):
    """One CXL switch: ports plus the internal Switch-Bus."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        bus_params: LinkParams,
    ) -> None:
        super().__init__(engine, name, parent)
        #: The Switch-Bus: all in-switch routing (VCS <-> Switch-Logic <->
        #: downstream ports) crosses it once per turn-around.
        self.bus = Link(engine, f"{name}.bus", self, bus_params,
                        role="switch_bus")
        #: Names of DIMM nodes attached below this switch.
        self.dimm_nodes: List[str] = []
        #: Routing table: destination node -> downstream port index (the
        #: Virtual CXL Switch binding).
        self.vcs_table: Dict[str, int] = {}

    def attach_dimm(self, node_name: str) -> int:
        """Bind a DIMM node to the next downstream port; returns the port."""
        port = len(self.dimm_nodes)
        self.dimm_nodes.append(node_name)
        self.vcs_table[node_name] = port
        return port

    def owns(self, node_name: str) -> bool:
        """Whether ``node_name`` hangs below this switch."""
        return node_name in self.vcs_table

    def record_turnaround(self) -> None:
        """Account one in-switch (host-avoiding) turn-around."""
        self.stats.add("in_switch_turnarounds", 1)
        tracer = self.engine.tracer
        if tracer:
            tracer.instant("cxl", "turnaround", self.path, self.now,
                           pid=self.engine.trace_id)
