"""Central registry of every ``repro-*/N`` artifact-schema identifier.

Each machine-readable artifact the repo emits — bench results, latency
profiles, lint reports, run ledgers, metrics snapshots, telemetry
baselines — carries a ``"schema"`` field whose value names its layout
and version.  Before this module those identifiers were string literals
scattered across the emitting modules, so nothing stopped an emit site
and its parse site from silently drifting apart, and nothing enumerated
the vocabulary for consumers.

:data:`SCHEMAS` is now the single defining site.  Emitters and parsers
re-export their constant from here (``BENCH_SCHEMA = SCHEMAS["bench"]``)
and the whole-program lint rule ``schema-id-registry``
(:mod:`repro.analysis.program`) flags any emit/parse site whose id does
not resolve to this registry — the same closed-vocabulary discipline as
``TRACE_CATEGORIES`` and ``LEDGER_EVENTS``.

Versioning: bumping an artifact's layout means adding/advancing the id
here (``repro-lint/1`` -> ``repro-lint/2``) and moving the superseded id
into :data:`LEGACY_SCHEMA_IDS` so parse sites that still *accept* the
old layout stay lint-clean while emit sites cannot regress to it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: family name -> the current schema id emitted for that artifact.
SCHEMAS: Dict[str, str] = {
    "bench": "repro-bench/3",
    "ledger": "repro-ledger/1",
    "lint": "repro-lint/2",
    "metrics": "repro-metrics/1",
    "metrics-samples": "repro-metrics-samples/1",
    "profile": "repro-profile/1",
    "telemetry": "repro-telemetry/1",
}

#: Superseded ids that parsers may still accept but emitters must not use.
LEGACY_SCHEMA_IDS: FrozenSet[str] = frozenset({
    "repro-bench/1",
    "repro-bench/2",
    "repro-lint/1",
})

#: Every id the lint rule ``schema-id-registry`` accepts at a schema site.
REGISTERED_SCHEMA_IDS: FrozenSet[str] = (
    frozenset(SCHEMAS.values()) | LEGACY_SCHEMA_IDS
)


def schema_id(family: str) -> str:
    """The current schema id for ``family``; raises on unknown families."""
    try:
        return SCHEMAS[family]
    except KeyError:
        raise KeyError(
            f"unknown schema family {family!r}; known: {sorted(SCHEMAS)}"
        ) from None
