"""Post-run system diagnostics.

Turns a finished :class:`~repro.core.beacon.BeaconSystem` into a structured
picture of where the cycles and bytes went: per-link utilization and wire
bytes, per-controller row-buffer behaviour and queue pressure, per-module
PE utilization and task statistics, packing efficiency.  This is the tool
used while calibrating the reproduction, kept as a public API because
downstream users will need the same visibility when they change the
architecture.

Relationship to the trace-driven profiler (``repro.obs.profile``): both
report link utilization, row-hit rates, and PE utilization, computed from
independent instruments — this module reads the systems' own aggregate
``StatScope`` counters after the run, while the profiler reconstructs the
same quantities from the per-event trace stream.  The two must agree (a
cross-check test holds them to a tolerance); where both report the same
quantity the **profiler is authoritative** for attribution work, because
it also carries the per-request/per-task decomposition and the diff
tooling.  This module stays the lightweight option when no recorder is
installed (diagnostics need no tracing session at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class LinkDiag:
    name: str
    wire_bytes: float
    utilization: float
    messages: int


@dataclass
class ControllerDiag:
    name: str
    issued: int
    row_hits: int
    activations: int
    row_conflicts: int
    useful_bytes: float
    accessed_bytes: float
    parked: int

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.activations
        return self.row_hits / total if total else 0.0

    @property
    def access_efficiency(self) -> float:
        """Useful bytes per DRAM byte moved (fine-grained access quality)."""
        return self.useful_bytes / self.accessed_bytes if self.accessed_bytes else 0.0


@dataclass
class ModuleDiag:
    node: str
    tasks_completed: int
    mem_requests: int
    local_fraction: float
    migrations: int


@dataclass
class SystemDiagnostics:
    runtime_cycles: int
    links: List[LinkDiag] = field(default_factory=list)
    controllers: List[ControllerDiag] = field(default_factory=list)
    modules: List[ModuleDiag] = field(default_factory=list)

    def hottest_links(self, n: int = 5) -> List[LinkDiag]:
        return sorted(self.links, key=lambda l: -l.utilization)[:n]

    def total_row_hit_rate(self) -> float:
        hits = sum(c.row_hits for c in self.controllers)
        acts = sum(c.activations for c in self.controllers)
        return hits / (hits + acts) if hits + acts else 0.0

    def bottleneck_guess(self) -> str:
        """A coarse classification of what bounds the run."""
        if not self.links:
            return "unknown"
        max_util = max(l.utilization for l in self.links)
        if max_util > 0.7:
            return f"link-bound ({self.hottest_links(1)[0].name})"
        if self.total_row_hit_rate() < 0.3 and any(
            c.issued > 0 for c in self.controllers
        ):
            return "dram-activation-bound"
        return "latency/parallelism-bound"


def collect(system) -> SystemDiagnostics:
    """Gather diagnostics from a finished system run."""
    end = system.engine.now
    diag = SystemDiagnostics(runtime_cycles=end)
    # Links live under the fabric's stat scope with a 'busy_cycles' counter.
    from repro.cxl.link import Link

    fabric_scope = system.pool.fabric.stats
    for scope in fabric_scope.walk():
        if "wire_bytes" in scope.counters:
            busy = scope.counters.get("busy_cycles", 0.0)
            diag.links.append(
                LinkDiag(
                    name=scope.path.split("fabric.")[-1],
                    wire_bytes=scope.counters["wire_bytes"],
                    utilization=min(1.0, busy / end) if end else 0.0,
                    messages=int(scope.counters.get("messages", 0)),
                )
            )
    for controller, dimm in zip(system.pool.controllers, system.pool.dimms):
        diag.controllers.append(
            ControllerDiag(
                name=controller.name,
                issued=int(controller.stats.get("issued")),
                row_hits=dimm.total_row_hits,
                activations=dimm.total_activations,
                row_conflicts=dimm.total_row_conflicts,
                useful_bytes=controller.stats.get("useful_bytes"),
                accessed_bytes=controller.stats.get("bytes_accessed"),
                parked=int(controller.stats.get("parked")),
            )
        )
    for module in system.ndp_modules:
        requests = module.stats.get("mem_requests")
        diag.modules.append(
            ModuleDiag(
                node=module.node,
                tasks_completed=module.tasks_completed,
                mem_requests=int(requests),
                local_fraction=(
                    module.stats.get("local_requests") / requests
                    if requests else 0.0
                ),
                migrations=int(module.stats.get("task_migrations", 0)),
            )
        )
    return diag


def print_diagnostics(diag: SystemDiagnostics) -> None:
    """Pretty-print a diagnostics snapshot."""
    print(f"runtime: {diag.runtime_cycles} cycles; "
          f"row-hit rate {diag.total_row_hit_rate():.1%}; "
          f"verdict: {diag.bottleneck_guess()}")
    print("hottest links:")
    for link in diag.hottest_links():
        print(f"  {link.name:28s} util {link.utilization:6.1%} "
              f"{link.wire_bytes:12,.0f} B {link.messages:8d} msgs")
    print("controllers:")
    for ctrl in diag.controllers:
        print(f"  {ctrl.name:12s} issued {ctrl.issued:7d} "
              f"hit-rate {ctrl.row_hit_rate:6.1%} "
              f"efficiency {ctrl.access_efficiency:6.1%} "
              f"parked {ctrl.parked}")
    print("NDP modules:")
    for module in diag.modules:
        print(f"  {module.node:8s} tasks {module.tasks_completed:6d} "
              f"requests {module.mem_requests:8d} "
              f"local {module.local_fraction:6.1%} "
              f"migrations {module.migrations}")
