"""Experiment harness: one module per table/figure of the paper.

Every campaign module registers a :class:`~repro.experiments.scenarios.
ScenarioSpec` describing its job fan-out, result collection, and
paper-style printout; the scenario registry (``run_scenario`` /
``main_scenario``) is the uniform entry point the perf harness and
``python -m repro run <scenario>`` share.  Each module still exposes a
``run(scale)`` returning its structured result object and a ``main()``
printing the paper-style rows, so ``python -m repro.experiments.
<figure>`` keeps working; the ``benchmarks/`` suite calls ``run`` with
the bench scale and asserts the qualitative claims (who wins, step
gains, % of ideal).

See DESIGN.md's experiment index for the figure-to-module mapping and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.runner import (
    ExperimentScale,
    StepResult,
    SweepResult,
    build_system,
    run_step_sweep,
)
from repro.experiments.scenarios import (
    ScenarioSpec,
    get_scenario,
    main_scenario,
    register_scenario,
    resolve_scenario,
    run_scenario,
    scenario_names,
)

__all__ = [
    "ExperimentScale",
    "ParallelSweepRunner",
    "ScenarioSpec",
    "StepResult",
    "SweepJob",
    "SweepResult",
    "build_system",
    "get_scenario",
    "main_scenario",
    "register_scenario",
    "resolve_runner",
    "resolve_scenario",
    "run_scenario",
    "run_step_sweep",
    "scenario_names",
]
