"""Experiment harness: one module per table/figure of the paper.

Every module exposes a ``run(scale)`` function returning a structured
result object and a ``main()`` that prints the paper-style rows; the
``benchmarks/`` suite calls ``run`` with the bench scale and asserts the
qualitative claims (who wins, step gains, % of ideal), while
``python -m repro.experiments.<figure>`` reproduces the full printout.

See DESIGN.md's experiment index for the figure-to-module mapping and
EXPERIMENTS.md for paper-vs-measured numbers.
"""

from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.runner import (
    ExperimentScale,
    StepResult,
    SweepResult,
    build_system,
    run_step_sweep,
)

__all__ = [
    "ExperimentScale",
    "ParallelSweepRunner",
    "StepResult",
    "SweepJob",
    "SweepResult",
    "build_system",
    "resolve_runner",
    "run_step_sweep",
]
