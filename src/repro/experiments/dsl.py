"""Declarative scenario DSL: validated YAML/dict payloads -> ScenarioSpec.

Authoring a new campaign no longer requires Python: a *scenario payload*
— a YAML (or JSON, or plain dict) document — names the backends, the
workload, and the sweep axes, and :func:`compile_payload` turns it into
the same :class:`~repro.experiments.scenarios.ScenarioSpec` the built-in
figure modules register, so ``python -m repro run my_scenario.yaml``,
:class:`~repro.experiments.parallel.ParallelSweepRunner` fan-out, and
the presentation path all work unchanged.  Two payload kinds exist:

* ``kind: sweep`` — the figure shape: backends x datasets x sweep-axis
  values, one closed-loop :class:`~repro.core.metrics.Report` per point;
* ``kind: multi-tenant`` — the open-loop serving shape of
  :mod:`repro.experiments.tenants`: tenants with seeded arrival
  processes and query mixes, swept over tenant count and offered rate.

Validation is **stdlib-only** and deterministic: every rule failure
raises :class:`PayloadError` carrying the exact field path
(``tenants[0].arrival.rate``) plus a stable message, so invalid payloads
always fail with a one-line diagnostic, never a traceback (the CLI's
``validate`` verb and the rejection tests in ``tests/test_dsl.py`` pin
this).  YAML parsing itself is gated on PyYAML: when the module is
missing, JSON payloads (a YAML subset) still load.

Determinism contract: a payload is normalized into frozen dataclasses
(:class:`ScenarioPayload`), job keys are derived from the payload alone,
and every job function is a picklable module-level callable — identical
payload + seed produce bit-identical results, serial or parallel.  The
full authoring guide, schema reference, and worked examples live in
docs/SCENARIOS.md.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import Algorithm, OptimizationFlags
from repro.core.metrics import Report, geometric_mean
from repro.core.registry import backend_names, build_system, get_backend
from repro.experiments.parallel import SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.experiments.tenants import (
    ARRIVAL_PROCESSES,
    QUERY_KINDS,
    ArrivalConfig,
    TenantSpec,
    collect_serving,
    present_serving,
    run_serving_point,
)
from repro.genomics.workloads import dataset_by_name, make_seeding_workload

#: Payload kinds this DSL compiles.
PAYLOAD_KINDS: Tuple[str, ...] = ("sweep", "multi-tenant")

#: Scenario names must look like registry names.
NAME_PATTERN = re.compile(r"^[a-z0-9][a-z0-9_-]*$")

#: Axes a ``kind: sweep`` payload may sweep, with their value domains.
SWEEP_AXES: Tuple[str, ...] = (
    "read_scale", "genome_scale", "pe_divisor",
    "num_switches", "dimms_per_switch",
)
_FLOAT_AXES = ("read_scale", "genome_scale")

#: Driver name -> the algorithm it runs (the DSL reuses the query-kind
#: spellings of :mod:`repro.experiments.tenants` for driver names).
DRIVER_ALGORITHMS: Dict[str, Algorithm] = {
    "fm-seeding": Algorithm.FM_SEEDING,
    "hash-seeding": Algorithm.HASH_SEEDING,
    "kmer-counting": Algorithm.KMER_COUNTING,
    "prealignment": Algorithm.PREALIGNMENT,
}

#: Driver name -> the keyword parameters its run method accepts.
DRIVER_PARAMS: Dict[str, Tuple[str, ...]] = {
    "fm-seeding": (),
    "hash-seeding": ("k", "bucket_load"),
    "kmer-counting": ("k", "num_counters"),
    "prealignment": ("max_edits", "candidates_per_read"),
}

#: The optimization presets a sweep payload may pick.
OPTIMIZATION_CHOICES: Tuple[str, ...] = ("full", "vanilla")


class PayloadError(ValueError):
    """A payload failed validation at ``path`` (deterministic message)."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path or "<payload>"
        self.message = message
        super().__init__(f"{self.path}: {message}")


# ---------------------------------------------------------------------------
# Normalized payload (what validation produces).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepAxis:
    """One swept axis of a ``kind: sweep`` payload."""

    axis: str
    values: Tuple[Any, ...]


@dataclass(frozen=True)
class WorkloadSection:
    """The workload of a ``kind: sweep`` payload."""

    driver: str
    datasets: Tuple[str, ...] = ("Pt",)
    params: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class TenantSweep:
    """The sweep grid of a ``kind: multi-tenant`` payload."""

    tenant_counts: Tuple[int, ...]
    arrival_scales: Tuple[float, ...]


@dataclass(frozen=True)
class ScenarioPayload:
    """A fully validated, normalized scenario payload."""

    name: str
    title: str
    description: str
    kind: str
    aliases: Tuple[str, ...]
    seed: int
    backends: Tuple[str, ...]
    #: ``kind: sweep`` sections (``None`` / empty for multi-tenant).
    workload: Optional[WorkloadSection] = None
    optimizations: str = "full"
    sweep_axes: Tuple[SweepAxis, ...] = ()
    #: ``kind: multi-tenant`` sections (empty for sweep).
    dataset: str = "Pt"
    tenants: Tuple[TenantSpec, ...] = ()
    tenant_sweep: Optional[TenantSweep] = None


# ---------------------------------------------------------------------------
# Validation helpers (stdlib-only, deterministic messages).
# ---------------------------------------------------------------------------


def _type_name(value: Any) -> str:
    return type(value).__name__


def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise PayloadError(path, f"expected a mapping, got {_type_name(value)}")
    return value


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str],
                    path: str) -> None:
    for key in sorted(data):
        if key not in allowed:
            prefix = f"{path}.{key}" if path else str(key)
            raise PayloadError(
                prefix, f"unknown field; allowed: {', '.join(allowed)}"
            )


def _get_str(data: Mapping[str, Any], key: str, path: str,
             default: Optional[str] = None,
             required: bool = False) -> Optional[str]:
    if key not in data:
        if required:
            raise PayloadError(_join(path, key), "required field is missing")
        return default
    value = data[key]
    if not isinstance(value, str):
        raise PayloadError(
            _join(path, key), f"expected str, got {_type_name(value)}"
        )
    return value


def _get_int(data: Mapping[str, Any], key: str, path: str,
             default: int, minimum: int) -> int:
    if key not in data:
        return default
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise PayloadError(
            _join(path, key), f"expected int, got {_type_name(value)}"
        )
    if value < minimum:
        raise PayloadError(_join(path, key), f"must be >= {minimum}")
    return value


def _positive_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PayloadError(path, f"expected a number, got {_type_name(value)}")
    if value <= 0:
        raise PayloadError(path, "must be > 0")
    return float(value)


def _get_list(data: Mapping[str, Any], key: str, path: str,
              required: bool = False, required_note: str = "") -> List[Any]:
    missing = key not in data
    value = None if missing else data[key]
    if missing or not isinstance(value, list) or not value:
        if missing and not required:
            return []
        note = f" {required_note}" if required_note else ""
        raise PayloadError(
            _join(path, key), f"must be a non-empty list{note}"
        )
    return value


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else str(key)


def _choice(value: str, choices: Sequence[str], path: str) -> str:
    if value not in choices:
        raise PayloadError(path, f"must be one of: {', '.join(choices)}")
    return value


# ---------------------------------------------------------------------------
# Section validators.
# ---------------------------------------------------------------------------

_TOP_LEVEL_FIELDS = (
    "scenario", "title", "description", "kind", "aliases", "seed",
    "backends", "workload", "optimizations", "sweep", "dataset", "tenants",
)


def _validate_backends(data: Mapping[str, Any], kind: str) -> Tuple[str, ...]:
    raw = _get_list(data, "backends", "", required=True)
    backends = []
    for i, entry in enumerate(raw):
        path = f"backends[{i}]"
        if not isinstance(entry, str):
            raise PayloadError(path, f"expected str, got {_type_name(entry)}")
        try:
            factory = get_backend(entry)
        except ValueError:
            raise PayloadError(
                path,
                f"unknown backend {entry!r}; registered: "
                f"{', '.join(backend_names())}"
            ) from None
        if kind == "multi-tenant" and factory.name == "cpu":
            raise PayloadError(
                path, "backend 'cpu' cannot serve multi-tenant workloads "
                      "(analytic model, no simulated pool)"
            )
        backends.append(factory.name)
    return tuple(backends)


def _validate_workload(data: Mapping[str, Any]) -> WorkloadSection:
    if "workload" not in data:
        raise PayloadError(
            "workload", "required field is missing (kind=sweep)"
        )
    section = _require_mapping(data["workload"], "workload")
    _reject_unknown(section, ("driver", "datasets", "params"), "workload")
    driver = _get_str(section, "driver", "workload", required=True)
    _choice(driver, tuple(DRIVER_ALGORITHMS), "workload.driver")
    raw_datasets = section.get("datasets", ["Pt"])
    if not isinstance(raw_datasets, list) or not raw_datasets:
        raise PayloadError("workload.datasets", "must be a non-empty list")
    datasets = []
    for i, name in enumerate(raw_datasets):
        path = f"workload.datasets[{i}]"
        if not isinstance(name, str):
            raise PayloadError(path, f"expected str, got {_type_name(name)}")
        try:
            dataset_by_name(name)
        except KeyError as exc:
            raise PayloadError(path, str(exc.args[0])) from None
        datasets.append(name)
    params_raw = _require_mapping(section.get("params", {}),
                                  "workload.params")
    allowed = DRIVER_PARAMS[driver]
    params = []
    for key in sorted(params_raw):
        path = f"workload.params.{key}"
        if key not in allowed:
            allowed_note = ", ".join(allowed) if allowed else "(none)"
            raise PayloadError(
                path, f"unknown parameter for driver {driver!r}; "
                      f"allowed: {allowed_note}"
            )
        value = params_raw[key]
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise PayloadError(path, "expected a positive int")
        params.append((key, value))
    return WorkloadSection(driver=driver, datasets=tuple(datasets),
                           params=tuple(params))


def _validate_sweep_axes(data: Mapping[str, Any]) -> Tuple[SweepAxis, ...]:
    raw = data.get("sweep", [])
    if raw == []:
        return ()
    if not isinstance(raw, list):
        raise PayloadError(
            "sweep", f"expected a list of axes, got {_type_name(raw)}"
        )
    axes = []
    seen = []
    for i, entry in enumerate(raw):
        path = f"sweep[{i}]"
        section = _require_mapping(entry, path)
        _reject_unknown(section, ("axis", "values"), path)
        axis = _get_str(section, "axis", path, required=True)
        _choice(axis, SWEEP_AXES, f"{path}.axis")
        if axis in seen:
            raise PayloadError(f"{path}.axis", f"axis {axis!r} listed twice")
        seen.append(axis)
        values_raw = _get_list(section, "values", path, required=True)
        values = []
        for j, value in enumerate(values_raw):
            vpath = f"{path}.values[{j}]"
            if axis in _FLOAT_AXES:
                values.append(_positive_number(value, vpath))
            else:
                if isinstance(value, bool) or not isinstance(value, int) \
                        or value < 1:
                    raise PayloadError(vpath, "expected a positive int")
                values.append(value)
        axes.append(SweepAxis(axis=axis, values=tuple(values)))
    return tuple(axes)


def _validate_arrival(section: Mapping[str, Any], path: str) -> ArrivalConfig:
    _reject_unknown(section, ("process", "rate", "trace"), path)
    process = _get_str(section, "process", path, default="poisson")
    _choice(process, ARRIVAL_PROCESSES, f"{path}.process")
    if process == "trace":
        if "rate" in section:
            raise PayloadError(
                f"{path}.rate", "not allowed when process is 'trace'"
            )
        if "trace" not in section:
            raise PayloadError(
                f"{path}.trace", "required when process is 'trace'"
            )
        raw = section["trace"]
        if not isinstance(raw, list) or not raw:
            raise PayloadError(f"{path}.trace", "must be a non-empty list")
        previous = 0
        for j, cycle in enumerate(raw):
            if isinstance(cycle, bool) or not isinstance(cycle, int) \
                    or cycle <= previous:
                raise PayloadError(
                    f"{path}.trace",
                    "cycles must be strictly increasing positive integers"
                )
            previous = cycle
        return ArrivalConfig(process="trace", trace=tuple(raw))
    if "trace" in section:
        raise PayloadError(
            f"{path}.trace", f"only allowed when process is 'trace' "
                             f"(process is {process!r})"
        )
    rate = _positive_number(section.get("rate", 1.0), f"{path}.rate")
    return ArrivalConfig(process=process, rate_per_kcycle=rate)


def _validate_tenants(data: Mapping[str, Any]) -> Tuple[TenantSpec, ...]:
    raw = _get_list(data, "tenants", "", required=True,
                    required_note="(kind=multi-tenant)")
    tenants = []
    names = []
    for i, entry in enumerate(raw):
        path = f"tenants[{i}]"
        section = _require_mapping(entry, path)
        _reject_unknown(section, ("name", "arrival", "mix", "queries"), path)
        name = _get_str(section, "name", path, required=True)
        if name in names:
            raise PayloadError(f"{path}.name", f"tenant {name!r} listed twice")
        names.append(name)
        arrival = _validate_arrival(
            _require_mapping(section.get("arrival", {}), f"{path}.arrival"),
            f"{path}.arrival",
        )
        mix_raw = _require_mapping(
            section.get("mix", {"fm-seeding": 1.0}), f"{path}.mix"
        )
        if not mix_raw:
            raise PayloadError(f"{path}.mix", "must be a non-empty mapping")
        mix = []
        for kind in mix_raw:
            kpath = f"{path}.mix.{kind}"
            if kind not in QUERY_KINDS:
                raise PayloadError(
                    kpath, f"unknown query kind; known: "
                           f"{', '.join(QUERY_KINDS)}"
                )
            weight = mix_raw[kind]
            if isinstance(weight, bool) \
                    or not isinstance(weight, (int, float)) or weight <= 0:
                raise PayloadError(kpath, "weight must be > 0")
            mix.append((kind, float(weight)))
        queries = _get_int(section, "queries", path, default=32, minimum=1)
        tenants.append(TenantSpec(
            name=name, arrival=arrival, mix=tuple(mix), queries=queries,
        ))
    return tuple(tenants)


def _validate_tenant_sweep(data: Mapping[str, Any],
                           num_tenants: int) -> TenantSweep:
    raw = data.get("sweep", {})
    section = _require_mapping(raw, "sweep")
    _reject_unknown(section, ("tenant_counts", "arrival_scales"), "sweep")
    counts_raw = section.get("tenant_counts", [num_tenants])
    if not isinstance(counts_raw, list) or not counts_raw:
        raise PayloadError("sweep.tenant_counts", "must be a non-empty list")
    counts = []
    for i, count in enumerate(counts_raw):
        path = f"sweep.tenant_counts[{i}]"
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise PayloadError(path, "expected a positive int")
        counts.append(count)
    scales_raw = section.get("arrival_scales", [1.0])
    if not isinstance(scales_raw, list) or not scales_raw:
        raise PayloadError("sweep.arrival_scales", "must be a non-empty list")
    scales = [
        _positive_number(value, f"sweep.arrival_scales[{i}]")
        for i, value in enumerate(scales_raw)
    ]
    return TenantSweep(tenant_counts=tuple(counts),
                       arrival_scales=tuple(scales))


def validate_payload(data: Any) -> ScenarioPayload:
    """Validate a raw payload (dict) into a :class:`ScenarioPayload`.

    Raises :class:`PayloadError` — with the offending field path and a
    deterministic message — on the first rule violation.
    """
    data = _require_mapping(data, "<payload>")
    _reject_unknown(data, _TOP_LEVEL_FIELDS, "")
    name = _get_str(data, "scenario", "", required=True)
    if not NAME_PATTERN.match(name):
        raise PayloadError(
            "scenario",
            "must match ^[a-z0-9][a-z0-9_-]*$ (lowercase name)"
        )
    title = _get_str(data, "title", "", default=name)
    description = _get_str(data, "description", "", default="")
    kind = _get_str(data, "kind", "", default="sweep")
    _choice(kind, PAYLOAD_KINDS, "kind")
    aliases_raw = data.get("aliases", [])
    if not isinstance(aliases_raw, list):
        raise PayloadError(
            "aliases", f"expected a list, got {_type_name(aliases_raw)}"
        )
    aliases = []
    for i, alias in enumerate(aliases_raw):
        if not isinstance(alias, str):
            raise PayloadError(
                f"aliases[{i}]", f"expected str, got {_type_name(alias)}"
            )
        aliases.append(alias)
    seed = _get_int(data, "seed", "", default=0, minimum=0)
    backends = _validate_backends(data, kind)

    if kind == "sweep":
        for forbidden in ("dataset", "tenants"):
            if forbidden in data:
                raise PayloadError(
                    forbidden, "only allowed when kind is 'multi-tenant'"
                )
        workload = _validate_workload(data)
        optimizations = _get_str(data, "optimizations", "", default="full")
        _choice(optimizations, OPTIMIZATION_CHOICES, "optimizations")
        sweep_axes = _validate_sweep_axes(data)
        return ScenarioPayload(
            name=name, title=title, description=description, kind=kind,
            aliases=tuple(aliases), seed=seed, backends=backends,
            workload=workload, optimizations=optimizations,
            sweep_axes=sweep_axes,
        )

    for forbidden in ("workload", "optimizations"):
        if forbidden in data:
            raise PayloadError(
                forbidden, "only allowed when kind is 'sweep'"
            )
    dataset = _get_str(data, "dataset", "", default="Pt")
    try:
        dataset_by_name(dataset)
    except KeyError as exc:
        raise PayloadError("dataset", str(exc.args[0])) from None
    tenants = _validate_tenants(data)
    tenant_sweep = _validate_tenant_sweep(data, len(tenants))
    return ScenarioPayload(
        name=name, title=title, description=description, kind=kind,
        aliases=tuple(aliases), seed=seed, backends=backends,
        dataset=dataset, tenants=tenants, tenant_sweep=tenant_sweep,
    )


# ---------------------------------------------------------------------------
# Compilation: payload -> ScenarioSpec.
# ---------------------------------------------------------------------------


def run_sweep_point(backend: str, driver: str, dataset: str,
                    scale: ExperimentScale,
                    axis_items: Tuple[Tuple[str, Any], ...],
                    params: Tuple[Tuple[str, Any], ...],
                    optimizations: str) -> Report:
    """One ``kind: sweep`` payload point (picklable sweep-job entry).

    Axis overrides apply before construction: ``read_scale`` /
    ``genome_scale`` / ``pe_divisor`` rewrite the experiment scale
    (``pe_divisor`` sets the k-mer divisor too), ``num_switches`` /
    ``dimms_per_switch`` rewrite the pool topology.
    """
    algorithm = DRIVER_ALGORITHMS[driver]
    overrides = dict(axis_items)
    scale_updates: Dict[str, Any] = {}
    if "read_scale" in overrides:
        scale_updates["read_scale"] = float(overrides["read_scale"])
    if "genome_scale" in overrides:
        scale_updates["genome_scale"] = float(overrides["genome_scale"])
    if "pe_divisor" in overrides:
        scale_updates["pe_divisor"] = int(overrides["pe_divisor"])
        scale_updates["kmer_pe_divisor"] = int(overrides["pe_divisor"])
    if scale_updates:
        scale = replace(scale, **scale_updates)
    config = scale.config_for(algorithm)
    topology = {
        key: int(overrides[key])
        for key in ("num_switches", "dimms_per_switch")
        if key in overrides
    }
    if topology:
        config = replace(config, **topology)
    if optimizations == "full" and backend in ("beacon-d", "beacon-s"):
        flags = OptimizationFlags.all_for(backend, algorithm)
    else:
        flags = OptimizationFlags.vanilla()
    workload = make_seeding_workload(
        dataset_by_name(dataset),
        scale=scale.genome_scale, read_scale=scale.read_scale,
    )
    system = build_system(backend, config, flags,
                          label=f"{backend} {driver}")
    return system.run_algorithm(algorithm, workload, **dict(params))


@dataclass
class DslSweepResult:
    """All reports of one compiled ``kind: sweep`` scenario, job order."""

    name: str
    backends: Tuple[str, ...]
    reports: Dict[str, Report]

    def speedup_vs_first_backend(self, backend: str) -> float:
        """Geomean runtime speedup of ``backend`` over the first backend
        across matching (dataset, axis) points."""
        base = self.backends[0]
        ratios = []
        for key, report in self.reports.items():
            head, _slash, rest = key.partition("/")
            if head != backend:
                continue
            twin = self.reports.get(f"{base}/{rest}")
            if twin is not None and report.runtime_cycles > 0:
                ratios.append(twin.runtime_cycles / report.runtime_cycles)
        return geometric_mean(ratios)


def _axis_key(axis_items: Tuple[Tuple[str, Any], ...]) -> str:
    parts = [f"{axis}={value:g}" for axis, value in axis_items]
    return "/".join(parts)


def _cycle_tenants(declared: Tuple[TenantSpec, ...],
                   count: int) -> Tuple[TenantSpec, ...]:
    """``count`` tenants cycled from the declared templates."""
    tenants = []
    for i in range(count):
        template = declared[i % len(declared)]
        name = template.name if i < len(declared) \
            else f"{template.name}-{i // len(declared) + 1}"
        tenants.append(replace(template, name=name))
    return tuple(tenants)


def compile_payload(payload: ScenarioPayload,
                    seed: Optional[int] = None) -> ScenarioSpec:
    """Compile a validated payload into an (unregistered) ScenarioSpec.

    ``seed`` overrides the payload's own seed (the CLI's ``--seed``).
    The spec is *not* added to the registry — use
    :func:`register_payload` when registration (name resolution through
    ``python -m repro run <name>``, bench inclusion) is wanted.
    """
    effective_seed = payload.seed if seed is None else seed
    if payload.kind == "sweep":
        workload = payload.workload
        assert workload is not None

        def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
            """Expand the payload grid into independent sweep jobs."""
            combos = list(itertools.product(
                *[axis.values for axis in payload.sweep_axes]
            ))
            axis_names = [axis.axis for axis in payload.sweep_axes]
            jobs = []
            for backend in payload.backends:
                for dataset in workload.datasets:
                    for combo in combos:
                        axis_items = tuple(zip(axis_names, combo))
                        key = "/".join(
                            [backend, dataset]
                            + ([_axis_key(axis_items)] if axis_items else [])
                        )
                        jobs.append(SweepJob(
                            key=key,
                            func=run_sweep_point,
                            args=(backend, workload.driver, dataset, scale,
                                  axis_items, workload.params,
                                  payload.optimizations),
                        ))
            return jobs

        def collect(scale: ExperimentScale,
                    results: Dict[str, Any]) -> DslSweepResult:
            """Fold the reports (job order) into the sweep result."""
            return DslSweepResult(name=payload.name,
                                  backends=payload.backends,
                                  reports=dict(results))

        def present(result: DslSweepResult) -> None:
            """Print one row per point, plus cross-backend speedups."""
            for key, report in result.reports.items():
                print(
                    f"  {key:44s} {report.runtime_us:12.1f} us  "
                    f"energy {report.total_energy_nj / 1e3:10.1f} uJ  "
                    f"tasks {report.tasks_completed}"
                )
            for backend in result.backends[1:]:
                print(
                    f"  {backend} vs {result.backends[0]}: "
                    f"x{result.speedup_vs_first_backend(backend):.2f} "
                    "runtime (geomean)"
                )

        return ScenarioSpec(
            name=payload.name, title=payload.title,
            description=payload.description,
            build_jobs=build_jobs, collect=collect, present=present,
            aliases=payload.aliases,
            backends=payload.backends,
            drivers=(workload.driver,),
            sweep_axes=tuple(axis.axis for axis in payload.sweep_axes),
        )

    tenant_sweep = payload.tenant_sweep
    assert tenant_sweep is not None

    def build_tenant_jobs(scale: ExperimentScale) -> List[SweepJob]:
        """Expand backends x tenant counts x arrival scales into jobs."""
        jobs = []
        for backend in payload.backends:
            for count in tenant_sweep.tenant_counts:
                tenants = _cycle_tenants(payload.tenants, count)
                for mult in tenant_sweep.arrival_scales:
                    jobs.append(SweepJob(
                        key=(f"{backend}/tenants={count}"
                             f"/arrival=x{mult:g}"),
                        func=run_serving_point,
                        args=(backend, tenants),
                        kwargs={"dataset": payload.dataset, "scale": scale,
                                "seed": effective_seed,
                                "arrival_scale": mult},
                    ))
        return jobs

    mix_kinds = []
    for tenant in payload.tenants:
        for kind, _weight in tenant.mix:
            if kind not in mix_kinds:
                mix_kinds.append(kind)
    return ScenarioSpec(
        name=payload.name, title=payload.title,
        description=payload.description,
        build_jobs=build_tenant_jobs, collect=collect_serving,
        present=present_serving,
        aliases=payload.aliases,
        backends=payload.backends,
        drivers=tuple(mix_kinds),
        sweep_axes=("tenants", "arrival_scale"),
    )


# ---------------------------------------------------------------------------
# Loading (YAML gated on PyYAML; JSON always works) and registration.
# ---------------------------------------------------------------------------


def parse_payload_text(text: str) -> Any:
    """Parse payload text: YAML when PyYAML is installed, else JSON."""
    try:
        import yaml
    except ImportError:
        yaml = None
    if yaml is not None:
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise PayloadError("<payload>", f"invalid YAML: {exc}") from None
    import json

    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise PayloadError(
            "<payload>",
            f"PyYAML is not installed and the payload is not valid JSON: {exc}"
        ) from None


def load_payload(path: str) -> Any:
    """Read and parse a payload file (no validation yet)."""
    with open(path, encoding="utf-8") as handle:
        return parse_payload_text(handle.read())


def load_scenario_file(path: str,
                       seed: Optional[int] = None) -> ScenarioSpec:
    """File path -> validated, compiled (unregistered) ScenarioSpec."""
    return compile_payload(validate_payload(load_payload(path)), seed=seed)


def register_payload(data: Any, seed: Optional[int] = None) -> ScenarioSpec:
    """Validate, compile, and *register* a payload (dict or parsed YAML).

    Registration makes the scenario resolvable by name (``python -m
    repro run <name>``) and benchable; a name collision with an existing
    scenario raises ``ValueError``, exactly like Python-authored specs.
    """
    return register_scenario(compile_payload(validate_payload(data),
                                             seed=seed))


# ---------------------------------------------------------------------------
# Schema reference (rendered by ``python -m repro list --dsl`` and kept
# in sync with docs/SCENARIOS.md by tests/test_dsl_docs.py).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldDoc:
    """One schema row: payload path, type, default, validation rule."""

    path: str
    type: str
    default: str
    rule: str


#: Every payload field, in document order.  docs/SCENARIOS.md must
#: mention each ``path`` (the docs meta-test enforces it).
SCHEMA_FIELDS: Tuple[FieldDoc, ...] = (
    FieldDoc("scenario", "str", "(required)",
             "lowercase name: ^[a-z0-9][a-z0-9_-]*$"),
    FieldDoc("title", "str", "= scenario", "free text"),
    FieldDoc("description", "str", "''", "free text"),
    FieldDoc("kind", "str", "'sweep'", "one of: sweep, multi-tenant"),
    FieldDoc("aliases", "list[str]", "[]", "extra registry names"),
    FieldDoc("seed", "int", "0", ">= 0; drives every stochastic choice"),
    FieldDoc("backends", "list[str]", "(required)",
             "non-empty; registered backend names/aliases; 'cpu' is "
             "sweep-only"),
    FieldDoc("workload", "mapping", "(required for sweep)",
             "sweep kind only"),
    FieldDoc("workload.driver", "str", "(required)",
             "one of: fm-seeding, hash-seeding, kmer-counting, "
             "prealignment"),
    FieldDoc("workload.datasets", "list[str]", "['Pt']",
             "known dataset names (Pt Pg Ss Am Nf Hs50x)"),
    FieldDoc("workload.params", "mapping", "{}",
             "driver keyword args, positive ints (hash-seeding: k, "
             "bucket_load; kmer-counting: k, num_counters; prealignment: "
             "max_edits, candidates_per_read)"),
    FieldDoc("optimizations", "str", "'full'",
             "one of: full, vanilla (sweep kind only)"),
    FieldDoc("sweep", "list or mapping", "[] / {}",
             "sweep kind: list of {axis, values}; multi-tenant kind: "
             "{tenant_counts, arrival_scales}"),
    FieldDoc("sweep[].axis", "str", "(required per entry)",
             "one of: read_scale, genome_scale, pe_divisor, "
             "num_switches, dimms_per_switch; no duplicates"),
    FieldDoc("sweep[].values", "list", "(required per entry)",
             "non-empty; positive numbers for *_scale, positive ints "
             "otherwise"),
    FieldDoc("sweep.tenant_counts", "list[int]", "[len(tenants)]",
             "positive ints; tenants are cycled up to each count"),
    FieldDoc("sweep.arrival_scales", "list[number]", "[1.0]",
             "positive offered-rate multipliers"),
    FieldDoc("dataset", "str", "'Pt'",
             "multi-tenant kind only; a known dataset name"),
    FieldDoc("tenants", "list", "(required for multi-tenant)",
             "non-empty; multi-tenant kind only; unique names"),
    FieldDoc("tenants[].name", "str", "(required)", "unique per payload"),
    FieldDoc("tenants[].arrival", "mapping", "poisson @ rate 1.0",
             "the tenant's arrival process"),
    FieldDoc("tenants[].arrival.process", "str", "'poisson'",
             "one of: poisson, uniform, trace"),
    FieldDoc("tenants[].arrival.rate", "number", "1.0",
             "> 0, queries per kilocycle; forbidden for trace"),
    FieldDoc("tenants[].arrival.trace", "list[int]", "(trace only)",
             "strictly increasing positive cycles; required iff "
             "process is trace"),
    FieldDoc("tenants[].mix", "mapping", "{fm-seeding: 1.0}",
             "query kind -> weight > 0; kinds: fm-seeding, hash-seeding, "
             "kmer-counting, prealignment"),
    FieldDoc("tenants[].queries", "int", "32", ">= 1 queries this tenant "
             "issues per run"),
)


def schema_reference(markdown: bool = False) -> str:
    """The payload schema as a table (plain text or markdown)."""
    if markdown:
        lines = ["| Field | Type | Default | Rule |",
                 "| --- | --- | --- | --- |"]
        for doc in SCHEMA_FIELDS:
            lines.append(
                f"| `{doc.path}` | {doc.type} | {doc.default} | {doc.rule} |"
            )
        return "\n".join(lines)
    width = max(len(doc.path) for doc in SCHEMA_FIELDS)
    lines = ["scenario payload schema (full guide: docs/SCENARIOS.md)", ""]
    for doc in SCHEMA_FIELDS:
        lines.append(
            f"  {doc.path:{width}s}  {doc.type:14s} "
            f"default {doc.default}; {doc.rule}"
        )
    return "\n".join(lines)
