"""Fig. 15 — k-mer counting, step-by-step optimizations.

Paper (human 50x):

* BEACON-D: vanilla = 124.88x CPU / 1.46x NEST; packing 1.07x, memory
  access opt 2.75x, placement 1.21x; full = 443.08x CPU / 5.19x NEST;
  92.98% of idealized.
* BEACON-S: vanilla = 125.57x CPU / 1.47x NEST; packing 1.09x, memory
  access opt 2.83x, placement 0.92x perf (but +1.12x energy efficiency),
  single-pass counting 1.48x; full = 527.99x CPU / 6.19x NEST; 99.48% of
  idealized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.config import Algorithm
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import (
    ExperimentScale,
    SweepResult,
    print_sweep,
    run_step_sweep,
)
from repro.experiments.scenarios import ScenarioSpec, register_scenario

ALGORITHM = Algorithm.KMER_COUNTING


@dataclass
class Fig15Result:
    sweeps: Dict[str, SweepResult]  # system -> sweep (single dataset)

    def sweep(self, system: str) -> SweepResult:
        return self.sweeps[system]


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """One cumulative sweep per BEACON variant on the k-mer workload."""
    workload = scale.kmer_workload()
    return [
        SweepJob(
            key=system,
            func=run_step_sweep,
            args=(system, ALGORITHM, workload, scale),
            kwargs={"with_ideal": True, "baseline": "nest", "with_cpu": True,
                    "k": scale.kmer_k, "num_counters": scale.num_counters},
        )
        for system in ("beacon-d", "beacon-s")
    ]


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> Fig15Result:
    """The runner's mapping is already system -> sweep."""
    return Fig15Result(dict(results))


def present(result: Fig15Result) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nFig. 15 — k-mer counting (human 50x stand-in)")
    for system, sweep in result.sweeps.items():
        print_sweep(sweep)
        print(f"  total optimization gain: x{sweep.total_opt_speedup:.2f} perf, "
              f"x{sweep.total_opt_energy_gain:.2f} energy")


SPEC = register_scenario(ScenarioSpec(
    name="fig15",
    title="k-mer counting optimization ladder",
    description="cumulative optimization sweeps of both BEACON variants on "
                "k-mer counting, vs NEST / CPU / idealized twins",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("fig15_kmer_counting", "fig15-kmer-counting"),
    backends=("beacon-d", "beacon-s", "nest", "cpu"),
    drivers=("kmer-counting",),
    sweep_axes=("optimization_step",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig15Result:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig15Result:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
