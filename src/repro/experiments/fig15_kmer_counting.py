"""Fig. 15 — k-mer counting, step-by-step optimizations.

Paper (human 50x):

* BEACON-D: vanilla = 124.88x CPU / 1.46x NEST; packing 1.07x, memory
  access opt 2.75x, placement 1.21x; full = 443.08x CPU / 5.19x NEST;
  92.98% of idealized.
* BEACON-S: vanilla = 125.57x CPU / 1.47x NEST; packing 1.09x, memory
  access opt 2.83x, placement 0.92x perf (but +1.12x energy efficiency),
  single-pass counting 1.48x; full = 527.99x CPU / 6.19x NEST; 99.48% of
  idealized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import Algorithm
from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.runner import (
    ExperimentScale,
    SweepResult,
    print_sweep,
    run_step_sweep,
)

ALGORITHM = Algorithm.KMER_COUNTING


@dataclass
class Fig15Result:
    sweeps: Dict[str, SweepResult]  # system -> sweep (single dataset)

    def sweep(self, system: str) -> SweepResult:
        return self.sweeps[system]


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig15Result:
    """Execute the experiment at ``scale``; returns the result object."""
    runner = resolve_runner(runner)
    workload = scale.kmer_workload()
    sweeps: Dict[str, SweepResult] = runner.run([
        SweepJob(
            key=system,
            func=run_step_sweep,
            args=(system, ALGORITHM, workload, scale),
            kwargs={"with_ideal": True, "baseline": "nest", "with_cpu": True,
                    "k": scale.kmer_k, "num_counters": scale.num_counters},
        )
        for system in ("beacon-d", "beacon-s")
    ])
    return Fig15Result(sweeps)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig15Result:
    """Run the experiment and print the paper-style rows."""
    result = run(scale, runner=runner)
    print("\nFig. 15 — k-mer counting (human 50x stand-in)")
    for system, sweep in result.sweeps.items():
        print_sweep(sweep)
        print(f"  total optimization gain: x{sweep.total_opt_speedup:.2f} perf, "
              f"x{sweep.total_opt_energy_gain:.2f} energy")
    return result


if __name__ == "__main__":
    main()
