"""Scalability study (extension).

"Scalable" is in the paper's title: BEACON's pitch is that capacity and
throughput grow by attaching more unmodified CXL-DIMMs and switches to the
pool.  The paper asserts this qualitatively; this extension experiment
measures it.  Two sweeps on FM-index seeding:

* **strong scaling** — fixed workload, growing pool (1..4 switches);
* **weak scaling** — workload grows with the pool; ideal is flat runtime.

Both run the full-optimization BEACON-D and BEACON-S configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.core.metrics import Report
from repro.core.registry import build_system
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.genomics.workloads import make_seeding_workload


@dataclass
class ScalingPoint:
    switches: int
    dimms: int
    pes: int
    reads: int
    report: Report


@dataclass
class ScalabilityResult:
    strong: Dict[str, List[ScalingPoint]]
    weak: Dict[str, List[ScalingPoint]]

    def strong_speedup(self, system: str) -> float:
        """Largest-pool speedup over the smallest pool, fixed work."""
        points = self.strong[system]
        return points[0].report.runtime_ns / points[-1].report.runtime_ns

    def weak_efficiency(self, system: str) -> float:
        """Smallest/largest runtime ratio under proportional work
        (1.0 = perfect weak scaling)."""
        points = self.weak[system]
        return points[0].report.runtime_ns / points[-1].report.runtime_ns


#: Pool sizes swept: (num_switches, dimms_per_switch).
POOL_SIZES: Tuple[Tuple[int, int], ...] = ((1, 4), (2, 4), (4, 4))


def _config_for(scale: ExperimentScale, switches: int, dimms: int) -> BeaconConfig:
    return replace(scale.config(), num_switches=switches,
                   dimms_per_switch=dimms)


def _run_point(system: str, scale: ExperimentScale, switches: int,
               dimms: int, read_scale: float) -> ScalingPoint:
    config = _config_for(scale, switches, dimms)
    flags = OptimizationFlags.all_for(system, Algorithm.FM_SEEDING)
    spec = scale.seeding_datasets()[0]
    workload = make_seeding_workload(spec, scale=scale.genome_scale,
                                     read_scale=read_scale)
    sys_ = build_system(system, config, flags,
                        label=f"{system} {switches}x{dimms}")
    report = sys_.run_fm_seeding(workload)
    pes = sum(m.pes.num_pes for m in sys_.ndp_modules)
    return ScalingPoint(switches=switches, dimms=switches * dimms, pes=pes,
                        reads=len(workload.reads), report=report)


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """Strong and weak scaling points for both variants over POOL_SIZES."""
    base_reads = scale.read_scale
    jobs = []
    for system in ("beacon-d", "beacon-s"):
        for sw, d in POOL_SIZES:
            jobs.append(SweepJob(
                key=f"strong/{system}/{sw}x{d}",
                func=_run_point, args=(system, scale, sw, d, base_reads),
            ))
            jobs.append(SweepJob(
                key=f"weak/{system}/{sw}x{d}",
                func=_run_point,
                args=(system, scale, sw, d,
                      base_reads * sw / POOL_SIZES[0][0]),
            ))
    return jobs


def collect(scale: ExperimentScale,
            results: Dict[str, Any]) -> ScalabilityResult:
    """Split the finished points back into strong/weak series per variant."""
    strong: Dict[str, List[ScalingPoint]] = {}
    weak: Dict[str, List[ScalingPoint]] = {}
    for system in ("beacon-d", "beacon-s"):
        strong[system] = [
            results[f"strong/{system}/{sw}x{d}"] for sw, d in POOL_SIZES
        ]
        weak[system] = [
            results[f"weak/{system}/{sw}x{d}"] for sw, d in POOL_SIZES
        ]
    return ScalabilityResult(strong=strong, weak=weak)


def present(result: ScalabilityResult) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nScalability (extension study): FM seeding, full optimizations")
    for mode, series in (("strong", result.strong), ("weak", result.weak)):
        print(f"  == {mode} scaling ==")
        for system, points in series.items():
            row = "  ".join(
                f"{p.switches}sw/{p.dimms}d/{p.pes}pe:"
                f"{p.report.runtime_us:7.1f}us" for p in points
            )
            print(f"    {system:9s} {row}")
    for system in ("beacon-d", "beacon-s"):
        print(f"  {system}: strong-scaling speedup (1->4 switches) "
              f"x{result.strong_speedup(system):.2f}; weak-scaling efficiency "
              f"{result.weak_efficiency(system):.2f}")


SPEC = register_scenario(ScenarioSpec(
    name="scalability",
    title="pool scaling (extension)",
    description="strong and weak scaling of FM seeding as switches and "
                "DIMMs are added to the CXL pool",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("scaling",),
    backends=("beacon-d", "beacon-s"),
    drivers=("fm-seeding",),
    sweep_axes=("num_switches", "dimms_per_switch"),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> ScalabilityResult:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> ScalabilityResult:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
