"""Tables I and II — configuration echo and PE hardware overhead.

Table I is the experimental configuration; regenerating it means printing
the configuration objects the simulator actually uses.  Table II is the
28 nm synthesis result for the PEs, embedded as constants in
:mod:`repro.core.hwmodel` (see DESIGN.md's substitution table); the bench
checks the relations the paper draws from it (BEACON's PE sits between
MEDAL's and NEST's in area, with the lowest leakage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import BeaconConfig
from repro.core.hwmodel import PE_HARDWARE, PeHardware, beacon_overhead_vs


@dataclass
class Table1Result:
    config: BeaconConfig
    rows: List[str]


def run_table1(config: BeaconConfig = BeaconConfig()) -> Table1Result:
    """Assemble the Table I configuration echo."""
    geo = config.geometry
    timing = config.timing
    rows = [
        f"CPU baseline: Intel Xeon E5-2680 v3, 48 threads (analytic model)",
        f"MEDAL/NEST: {config.total_dimms} customized DDR-DIMMs on "
        f"{config.num_switches} channels, "
        f"{config.baseline_pes_per_dimm} PEs/DIMM",
        f"BEACON: {config.num_switches} CXL switches x "
        f"{config.dimms_per_switch} DIMMs "
        f"({config.cxlg_per_switch} CXLG per switch for BEACON-D)",
        f"PEs: {config.pes_per_cxlg}/CXLG-DIMM (D), "
        f"{config.pes_per_switch}/switch (S)",
        f"DIMM: {geo.capacity_bytes >> 30} GiB, 8Gb x4 devices, "
        f"{geo.ranks} ranks x {geo.chips_per_rank} chips, "
        f"{geo.bank_groups} bank groups x {geo.banks_per_group} banks",
        f"DDR4-1600 {timing.tcas}-{timing.trcd}-{timing.trp}, "
        f"tCK={timing.tck_ns} ns",
    ]
    return Table1Result(config=config, rows=rows)


@dataclass
class Table2Result:
    hardware: Dict[str, PeHardware]
    beacon_vs_medal: Dict[str, float]
    beacon_vs_nest: Dict[str, float]


def run_table2() -> Table2Result:
    """Assemble Table II and its derived ratios."""
    return Table2Result(
        hardware=dict(PE_HARDWARE),
        beacon_vs_medal=beacon_overhead_vs("MEDAL"),
        beacon_vs_nest=beacon_overhead_vs("NEST"),
    )


def main() -> None:
    """Run the experiment and print the paper-style rows."""
    t1 = run_table1()
    print("\nTable I — experimental configuration")
    for row in t1.rows:
        print(f"  {row}")
    t2 = run_table2()
    print("\nTable II — PE hardware overhead (28 nm)")
    print(f"  {'arch':8s} {'area (um^2)':>12s} {'dyn (mW)':>10s} {'leak (uW)':>10s}")
    for name, hw in t2.hardware.items():
        print(f"  {name:8s} {hw.area_um2:12.2f} {hw.dynamic_power_mw:10.2f} "
              f"{hw.leakage_power_uw:10.2f}")
    print(f"  BEACON/MEDAL area ratio: {t2.beacon_vs_medal['area_ratio']:.2f}")
    print(f"  BEACON/NEST  area ratio: {t2.beacon_vs_nest['area_ratio']:.2f}")


if __name__ == "__main__":
    main()
