"""Scenario registry: every figure campaign as a declarative spec.

Layer 3 of the stack (see docs/ARCHITECTURE.md).  A *scenario* is one
reproducible campaign — a figure, a table section, an extension study —
described declaratively by a :class:`ScenarioSpec`: how to expand an
:class:`~repro.experiments.runner.ExperimentScale` into independent
:class:`~repro.experiments.parallel.SweepJob`s, how to fold the jobs'
results back into the figure's result object, and how to print the
paper-style rows.  The ``fig*`` modules shrink to their spec plus the
figure-specific result types; everything that used to be per-figure
boilerplate — runner resolution, job fan-out, ordered collection — runs
once here, through the same :class:`~repro.experiments.parallel.
ParallelSweepRunner` path serial or parallel.

The registry also owns name resolution: canonical names (``fig12``),
declared aliases, and the historical module-style spellings
(``fig12_fm_seeding``, ``fig12-fm-seeding``) all resolve via
:func:`resolve_scenario`, which the perf harness' ``resolve_figure``
and the CLI's ``python -m repro run <scenario>`` both use.

Scenario modules register themselves at import time
(:func:`register_scenario` at module scope); :func:`ensure_registered`
imports the built-in campaign modules — the nine paper campaigns plus
the open-loop multi-tenant serving family (:mod:`repro.experiments.
tenants`) — so every consumer sees the full catalogue without importing
figure modules by hand.  Scenarios can also be authored as data files:
:mod:`repro.experiments.dsl` compiles a validated YAML/dict payload into
a :class:`ScenarioSpec` (see docs/SCENARIOS.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.runner import ExperimentScale


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative campaign: jobs in, result object out.

    ``build_jobs`` expands a scale into the campaign's independent sweep
    jobs (every job function must be a picklable module-level callable);
    ``collect`` folds the runner's ``{key: result}`` mapping — always in
    submission order, parallel or not — into the figure's result object;
    ``present`` prints the paper-style rows for one collected result.
    """

    name: str
    title: str
    description: str
    build_jobs: Callable[[ExperimentScale], Sequence[SweepJob]]
    collect: Callable[[ExperimentScale, Dict[str, Any]], Any]
    present: Optional[Callable[[Any], None]] = None
    aliases: Tuple[str, ...] = ()
    #: Catalogue metadata (``python -m repro catalogue``): the backends the
    #: campaign builds, the workload drivers it exercises, and the axes its
    #: jobs sweep.  Purely descriptive — execution is entirely defined by
    #: ``build_jobs``/``collect``/``present``.
    backends: Tuple[str, ...] = ()
    drivers: Tuple[str, ...] = ()
    sweep_axes: Tuple[str, ...] = ()

    def run(self, scale: Optional[ExperimentScale] = None,
            runner: Optional[ParallelSweepRunner] = None) -> Any:
        """Execute the campaign at ``scale``; returns the result object."""
        scale = scale if scale is not None else ExperimentScale.bench()
        runner = resolve_runner(runner)
        results = runner.run(list(self.build_jobs(scale)), label=self.name)
        return self.collect(scale, results)

    def main(self, scale: Optional[ExperimentScale] = None,
             runner: Optional[ParallelSweepRunner] = None) -> Any:
        """Run the campaign and print the paper-style rows."""
        result = self.run(scale, runner=runner)
        if self.present is not None:
            self.present(result)
        return result


#: Canonical name -> spec, in registration order (the bench order).
SCENARIOS: Dict[str, ScenarioSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` (and its aliases) to the registry; collisions raise."""
    for name in (spec.name,) + spec.aliases:
        if name in SCENARIOS or name in _ALIASES:
            raise ValueError(f"scenario name {name!r} is already registered")
    SCENARIOS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def ensure_registered() -> None:
    """Import the built-in campaign modules (idempotent).

    Import order is the canonical bench order; each module registers its
    spec at import time.
    """
    from repro.experiments import (  # noqa: F401  (imported for the side effect)
        fig3_idealized,
        fig12_fm_seeding,
        fig13_coalescing,
        fig14_hash_seeding,
        fig15_kmer_counting,
        fig16_prealignment,
        fig17_energy_breakdown,
        summary,
        scalability,
        tenants,
    )


def scenario_names() -> List[str]:
    """Canonical scenario names, registration (= bench) order."""
    ensure_registered()
    return list(SCENARIOS)


def resolve_scenario(name: str) -> Optional[str]:
    """Resolve a scenario name, alias, or module-style spelling.

    Accepts the canonical name (``fig16``), declared aliases, and the
    experiment-module style (``fig16_prealignment``,
    ``fig16-prealignment``); returns the canonical name, or ``None``
    when nothing matches.
    """
    ensure_registered()
    if name in SCENARIOS:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    head = re.split(r"[_\-.]", name, maxsplit=1)[0]
    if head in SCENARIOS:
        return head
    return _ALIASES.get(head)


def get_scenario(name: str) -> ScenarioSpec:
    """The spec for ``name`` (resolving aliases); ValueError if unknown."""
    canonical = resolve_scenario(name)
    if canonical is None:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        )
    return SCENARIOS[canonical]


def run_scenario(name: str, scale: Optional[ExperimentScale] = None,
                 runner: Optional[ParallelSweepRunner] = None) -> Any:
    """Resolve ``name`` and execute it (no printing); returns the result."""
    return get_scenario(name).run(scale, runner=runner)


def main_scenario(name: str, scale: Optional[ExperimentScale] = None,
                  runner: Optional[ParallelSweepRunner] = None) -> Any:
    """Resolve ``name``, execute it, and print the paper-style rows."""
    return get_scenario(name).main(scale, runner=runner)
