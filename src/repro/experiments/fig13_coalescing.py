"""Fig. 13 — per-chip memory access balance with/without multi-chip coalescing.

The paper plots normalized memory access per DRAM chip during FM-index
seeding: without coalescing the per-chip load is badly skewed (hot occ
blocks pin single chips), with coalescing it is near-uniform.  We run
BEACON-D with the full stack minus/plus coalescing and read the CXLG-DIMMs'
chip counters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core import BeaconD
from repro.core.config import Algorithm, OptimizationFlags
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import ScenarioSpec, register_scenario


@dataclass
class Fig13Result:
    """Normalized per-chip access series (mean over CXLG-DIMMs)."""

    without_coalescing: List[float]
    with_coalescing: List[float]
    imbalance_without: float
    imbalance_with: float


def _cxlg_chip_profile(system: BeaconD) -> tuple:
    """Average normalized per-chip bursts + imbalance over CXLG-DIMMs."""
    series: List[List[float]] = []
    imbalances: List[float] = []
    for dimm in system.pool.dimms:
        if dimm.kind.fine_grained and sum(dimm.chip_counters.bursts) > 0:
            series.append(dimm.chip_counters.normalized())
            imbalances.append(dimm.chip_counters.imbalance())
    chips = len(series[0])
    averaged = [
        sum(s[c] for s in series) / len(series) for c in range(chips)
    ]
    mean_imbalance = sum(imbalances) / len(imbalances)
    return averaged, mean_imbalance


def _coalescing_point(scale: ExperimentScale,
                      coalescing: bool) -> Tuple[List[float], float]:
    """Sweep-point worker: one full-stack run, returning the chip profile
    (chip-counter state lives on the system, so it is read in-process)."""
    config = scale.config()
    workload = scale.seeding_workload(scale.seeding_datasets()[0])
    base = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)
    flags = base if coalescing else replace(base, multi_chip_coalescing=False)
    system = BeaconD(config=config, flags=flags,
                     label="coalescing" if coalescing else "no-coalescing")
    system.run_fm_seeding(workload)
    return _cxlg_chip_profile(system)


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """Two full-stack BEACON-D runs: coalescing off, coalescing on."""
    return [
        SweepJob("without", _coalescing_point, (scale, False)),
        SweepJob("with", _coalescing_point, (scale, True)),
    ]


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> Fig13Result:
    """Pair the two chip profiles into the figure result."""
    series_without, imbalance_without = results["without"]
    series_with, imbalance_with = results["with"]
    return Fig13Result(
        without_coalescing=series_without,
        with_coalescing=series_with,
        imbalance_without=imbalance_without,
        imbalance_with=imbalance_with,
    )


def present(result: Fig13Result) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nFig. 13 — normalized memory access per DRAM chip (CXLG-DIMMs)")
    print("chip:            " + "".join(f"{c:7d}" for c in range(len(result.without_coalescing))))
    print("w/o coalescing:  " + "".join(f"{v:7.2f}" for v in result.without_coalescing))
    print("w/  coalescing:  " + "".join(f"{v:7.2f}" for v in result.with_coalescing))
    print(f"imbalance (coeff. of variation): "
          f"{result.imbalance_without:.3f} -> {result.imbalance_with:.3f}")


SPEC = register_scenario(ScenarioSpec(
    name="fig13",
    title="multi-chip coalescing chip balance",
    description="per-DRAM-chip access balance of BEACON-D FM seeding with "
                "and without multi-chip coalescing",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("fig13_coalescing", "fig13-coalescing"),
    backends=("beacon-d",),
    drivers=("fm-seeding",),
    sweep_axes=("coalescing",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig13Result:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig13Result:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
