"""Scenario catalogue: the registry rendered as a table.

``python -m repro catalogue`` prints every registered scenario — name,
aliases, backends, workload drivers, sweep axes — as a plain-text or
(``--markdown``) GitHub-markdown table, generated straight from the
:mod:`repro.experiments.scenarios` registry so it can never drift from
the code.  A copy of the markdown table is committed inside
docs/SCENARIOS.md between ``catalogue:begin``/``catalogue:end`` marker
comments; :func:`check_docs_sync` (run by ``catalogue --check`` in CI
and by the docs meta-test) regenerates the table and diffs it against
the committed copy, failing with a regeneration hint when they diverge.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.experiments.scenarios import SCENARIOS, ensure_registered

#: Markers bounding the committed catalogue copy in docs/SCENARIOS.md.
CATALOGUE_BEGIN = "<!-- catalogue:begin -->"
CATALOGUE_END = "<!-- catalogue:end -->"

#: The documentation file carrying the committed copy.
DOCS_PATH = os.path.join("docs", "SCENARIOS.md")

_COLUMNS = ("Scenario", "Aliases", "Backends", "Drivers", "Sweep axes")


def catalogue_rows() -> List[Dict[str, str]]:
    """One mapping per registered scenario, registration (= bench) order.

    Keys match :data:`_COLUMNS` plus ``Title``; multi-valued fields are
    comma-joined strings (empty string when a scenario declares none).
    """
    ensure_registered()
    rows = []
    for name, spec in SCENARIOS.items():
        rows.append({
            "Scenario": name,
            "Title": spec.title,
            "Aliases": ", ".join(spec.aliases),
            "Backends": ", ".join(spec.backends),
            "Drivers": ", ".join(spec.drivers),
            "Sweep axes": ", ".join(spec.sweep_axes),
        })
    return rows


def render_markdown() -> str:
    """The catalogue as a GitHub-markdown table (no trailing newline)."""
    lines = [
        "| " + " | ".join(_COLUMNS) + " |",
        "| " + " | ".join("---" for _ in _COLUMNS) + " |",
    ]
    for row in catalogue_rows():
        cells = [f"`{row['Scenario']}`"] + [
            row[column] or "—" for column in _COLUMNS[1:]
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_text() -> str:
    """The catalogue as an aligned plain-text table."""
    rows = catalogue_rows()
    widths = {
        column: max([len(column)] + [len(row[column]) for row in rows])
        for column in _COLUMNS
    }
    header = "  ".join(column.ljust(widths[column]) for column in _COLUMNS)
    lines = [header, "  ".join("-" * widths[column] for column in _COLUMNS)]
    for row in rows:
        lines.append("  ".join(
            row[column].ljust(widths[column]) for column in _COLUMNS
        ).rstrip())
    return "\n".join(lines)


def embedded_catalogue(text: str) -> str:
    """The committed catalogue table between the markers of ``text``.

    Raises ``ValueError`` when either marker is missing or out of order.
    """
    begin = text.find(CATALOGUE_BEGIN)
    end = text.find(CATALOGUE_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"missing {CATALOGUE_BEGIN!r}/{CATALOGUE_END!r} markers"
        )
    return text[begin + len(CATALOGUE_BEGIN):end].strip()


def check_docs_sync(path: str = DOCS_PATH) -> Tuple[bool, str]:
    """Does the committed catalogue in ``path`` match the registry?

    Returns ``(ok, message)``; the message explains any mismatch and how
    to regenerate (``python -m repro catalogue --markdown``).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return False, f"catalogue check: cannot read {path}: {exc}"
    try:
        committed = embedded_catalogue(text)
    except ValueError as exc:
        return False, f"catalogue check: {path}: {exc}"
    generated = render_markdown()
    if committed != generated:
        return False, (
            f"catalogue check: the table in {path} is out of date with the "
            "scenario registry; regenerate it with "
            "`python -m repro catalogue --markdown` and paste it between "
            "the catalogue markers"
        )
    return True, f"catalogue check: {path} matches the registry"
