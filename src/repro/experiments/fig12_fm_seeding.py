"""Fig. 12 — FM-index based DNA seeding, step-by-step optimizations.

Paper (averages over the five genomes):

* BEACON-D: CXL-vanilla = 144.18x CPU / 1.20x MEDAL; then data packing
  1.08x, memory access opt 1.29x, placement & mapping 1.96x, multi-chip
  coalescing 1.34x; full = 525.73x CPU / 4.36x MEDAL; 96.52% of idealized.
* BEACON-S: vanilla = 146.64x CPU / 1.22x MEDAL; packing 1.08x, memory
  access opt 1.57x, placement 1.18x; full = 291.62x CPU / 2.42x MEDAL;
  98.48% of idealized.

Fig. 14 is the same campaign shape over hash seeding, so the job builder,
collector, and presenter here are parameterized by algorithm and shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.config import Algorithm
from repro.core.metrics import geometric_mean
from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepJob,
    resolve_runner,
)
from repro.experiments.runner import (
    ExperimentScale,
    SweepResult,
    print_sweep,
    run_step_sweep,
)
from repro.experiments.scenarios import ScenarioSpec, register_scenario

ALGORITHM = Algorithm.FM_SEEDING


@dataclass
class SeedingFigureResult:
    """Per-dataset sweeps for both BEACON variants (Figs. 12 and 14)."""

    sweeps: Dict[str, List[SweepResult]]  # system -> one sweep per dataset

    def mean_step_speedup(self, system: str, step_label: str) -> float:
        values = []
        for sweep in self.sweeps[system]:
            for step in sweep.steps:
                if step.label == step_label:
                    values.append(step.step_speedup)
        return geometric_mean(values)

    def mean_speedup_vs_baseline(self, system: str) -> float:
        return geometric_mean(
            s.speedup_vs_baseline() for s in self.sweeps[system]
        )

    def mean_speedup_vs_cpu(self, system: str) -> float:
        return geometric_mean(s.speedup_vs_cpu() for s in self.sweeps[system])

    def mean_energy_vs_baseline(self, system: str) -> float:
        return geometric_mean(
            s.full.energy_reduction_vs(s.baseline) for s in self.sweeps[system]
        )

    def mean_percent_of_ideal(self, system: str) -> float:
        return geometric_mean(s.percent_of_ideal for s in self.sweeps[system])

    def step_labels(self, system: str) -> List[str]:
        return [s.label for s in self.sweeps[system][0].steps]


def seeding_jobs(scale: ExperimentScale,
                 algorithm: Algorithm) -> List[SweepJob]:
    """Per-(dataset, variant) cumulative sweeps for a seeding figure."""
    jobs = []
    for spec in scale.seeding_datasets():
        workload = scale.seeding_workload(spec)
        for system in ("beacon-d", "beacon-s"):
            jobs.append(SweepJob(
                key=f"{spec.name}/{system}",
                func=run_step_sweep,
                args=(system, algorithm, workload, scale),
                kwargs={"with_ideal": True, "baseline": "medal",
                        "with_cpu": True},
            ))
    return jobs


def collect_seeding(scale: ExperimentScale,
                    results: Dict[str, Any]) -> SeedingFigureResult:
    """Group the finished sweeps by variant (job key = dataset/system)."""
    sweeps: Dict[str, List[SweepResult]] = {"beacon-d": [], "beacon-s": []}
    for key, sweep in results.items():
        sweeps[key.split("/", 1)[1]].append(sweep)
    return SeedingFigureResult(sweeps)


def present_seeding(result: SeedingFigureResult, figure_name: str) -> None:
    """Print the paper-style step tables and per-variant averages."""
    print(f"\n{figure_name}")
    for system in ("beacon-d", "beacon-s"):
        for sweep in result.sweeps[system]:
            print_sweep(sweep)
        print(f"\n== {system} averages over datasets ==")
        for label in result.step_labels(system)[1:]:
            print(f"  step {label:26s} x{result.mean_step_speedup(system, label):.2f}")
        print(f"  full vs MEDAL: x{result.mean_speedup_vs_baseline(system):.2f} perf, "
              f"x{result.mean_energy_vs_baseline(system):.2f} energy")
        print(f"  full vs CPU:   x{result.mean_speedup_vs_cpu(system):.1f}")
        print(f"  % of idealized communication: "
              f"{result.mean_percent_of_ideal(system):.1%}")


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """This figure's jobs: the seeding campaign over FM-index seeding."""
    return seeding_jobs(scale, ALGORITHM)


def present(result: SeedingFigureResult) -> None:
    """Print the paper-style rows for one collected result."""
    present_seeding(result, "Fig. 12 — FM-index based DNA seeding")


SPEC = register_scenario(ScenarioSpec(
    name="fig12",
    title="FM-index seeding optimization ladder",
    description="cumulative optimization sweeps of both BEACON variants on "
                "FM-index seeding, vs MEDAL / CPU / idealized twins",
    build_jobs=build_jobs,
    collect=collect_seeding,
    present=present,
    aliases=("fig12_fm_seeding", "fig12-fm-seeding"),
    backends=("beacon-d", "beacon-s", "medal", "cpu"),
    drivers=("fm-seeding",),
    sweep_axes=("dataset", "optimization_step"),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        algorithm: Algorithm = ALGORITHM,
        runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Execute the per-dataset sweeps for both variants at ``scale``."""
    if algorithm is ALGORITHM:
        return SPEC.run(scale, runner=runner)
    results = resolve_runner(runner).run(seeding_jobs(scale, algorithm))
    return collect_seeding(scale, results)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         algorithm: Algorithm = ALGORITHM,
         figure_name: str = "Fig. 12 — FM-index based DNA seeding",
         runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Run the experiment and print the paper-style rows."""
    result = run(scale, algorithm, runner=runner)
    present_seeding(result, figure_name)
    return result


if __name__ == "__main__":
    main()
