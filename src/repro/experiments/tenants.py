"""Open-loop multi-tenant serving against the shared CXL memory pool.

The paper's evaluation is closed-loop: every figure dispatches its whole
read set at cycle 0 and measures the makespan.  This module adds the
workload family the paper never ran — the pooling/sharing regime of the
CXL cluster studies (CXL-ClusterSim, CXLMemSim): several *tenants*, each
with its own seeded stochastic arrival process and its own mix of query
kinds (FM seeding, hash seeding, k-mer abundance, pre-alignment), share
one memory pool **open-loop**.  Queries arrive on the host at their
scheduled cycles whether or not earlier queries finished, so queueing is
real: the collected latency percentiles (p50/p95/p99), the queue-depth
timeline, and the per-backend saturation verdicts measure how a backend
degrades under offered load instead of how fast it drains a batch.

Determinism contract: every stochastic choice (inter-arrival gaps, the
per-query kind drawn from the tenant's mix) comes from a
``numpy.random.default_rng`` seeded from the point's ``seed`` and the
tenant index, arrivals are pre-scheduled on the engine before ``run()``,
and ties are broken by (cycle, tenant, query) order — identical
``(tenants, dataset, seed, arrival_scale)`` inputs produce bit-identical
:class:`ServingPoint`s, which the perf harness fingerprints through the
``mt-*`` bench entries.

The family is exposed as two registered scenarios:

* ``mt-serving`` — tenant-count sweep at a fixed offered rate;
* ``mt-saturation`` — offered-rate sweep at a fixed tenant count.

Custom studies (different mixes, rates, trace replays) are authored as
data files through :mod:`repro.experiments.dsl` (see docs/SCENARIOS.md
and ``examples/multi_tenant.yaml``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import Algorithm, OptimizationFlags
from repro.core.drivers import profile_fm_blocks
from repro.core.metrics import Report
from repro.core.registry import build_system
from repro.core.task import (
    BloomAccessor,
    FmIndexAccessor,
    HashIndexAccessor,
    ReferenceAccessor,
    Task,
    fm_seeding_steps,
    hash_seeding_steps,
    kmer_query_steps,
    prealign_steps,
)
from repro.cxl.flit import MessageKind
from repro.experiments.parallel import SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import (
    ScenarioSpec,
    ensure_registered,
    register_scenario,
)
from repro.genomics.fm_index import FMIndex
from repro.genomics.index_cache import fresh_bloom_filter, get_cache
from repro.genomics.kmer import iter_kmers
from repro.genomics.prealign import ShoujiFilter
from repro.genomics.workloads import (
    SeedingWorkload,
    dataset_by_name,
    make_prealign_pairs,
    make_seeding_workload,
)
from repro.memmgmt.framework import AllocationRequest
from repro.sim.engine import SimulationError

#: The query kinds a tenant mix may draw from, in canonical order (also
#: the order serving indexes are placed in the pool, which keeps
#: allocation deterministic across identical points).
QUERY_KINDS: Tuple[str, ...] = (
    "fm-seeding", "hash-seeding", "kmer-counting", "prealignment",
)

#: Arrival process names :class:`ArrivalConfig` understands.
ARRIVAL_PROCESSES: Tuple[str, ...] = ("poisson", "uniform", "trace")

#: Saturation criterion: a point is saturated when more than this
#: fraction of all queries is still in flight at the moment the last
#: query arrives.  In a keeping-up system the backlog at end-of-arrivals
#: is the steady-state in-flight population (Little's law: offered rate
#: x mean latency); a backlog of most of the *entire run's* queries
#: means the queue grew for the whole arrival window instead of
#: reaching a steady state.
SATURATION_BACKLOG_FRACTION: float = 0.5

#: Queue-depth timelines are downsampled to at most this many buckets
#: (each keeping the bucket's peak depth) so result objects stay small.
QUEUE_TIMELINE_BUCKETS: int = 32


@dataclass(frozen=True)
class ArrivalConfig:
    """One tenant's arrival process (all cycles are DRAM cycles).

    ``poisson`` draws exponential inter-arrival gaps with mean
    ``1000 / rate_per_kcycle``; ``uniform`` draws gaps uniformly from
    ``[0, 2000 / rate_per_kcycle]`` (same mean, bounded burstiness);
    ``trace`` replays the explicit ``trace`` cycle list, wrapping with
    its own span when more queries are requested than the trace holds.
    An ``arrival_scale`` > 1 multiplies the offered rate (divides every
    gap), which is how the saturation sweeps turn up the load.
    """

    process: str = "poisson"
    rate_per_kcycle: float = 1.0
    trace: Tuple[int, ...] = ()

    def arrival_cycles(self, count: int, rng: np.random.Generator,
                       arrival_scale: float = 1.0) -> List[int]:
        """``count`` strictly increasing arrival cycles for this process."""
        if self.process == "trace":
            span = self.trace[-1]
            cycles = []
            prev = 0
            for i in range(count):
                raw = self.trace[i % len(self.trace)] + (i // len(self.trace)) * span
                scaled = max(1, int(raw / arrival_scale))
                prev = max(prev + 1, scaled)
                cycles.append(prev)
            return cycles
        mean_gap = 1000.0 / (self.rate_per_kcycle * arrival_scale)
        if self.process == "poisson":
            gaps = rng.exponential(mean_gap, size=count)
        elif self.process == "uniform":
            gaps = rng.uniform(0.0, 2.0 * mean_gap, size=count)
        else:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        cycles = []
        now = 0
        for gap in gaps:
            now += max(1, int(gap))
            cycles.append(now)
        return cycles


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: an arrival process plus a weighted mix of query kinds.

    ``mix`` is an ordered tuple of ``(kind, weight)`` pairs (kinds from
    :data:`QUERY_KINDS`); each of the tenant's ``queries`` draws its kind
    from the mix with probability proportional to its weight.
    """

    name: str
    arrival: ArrivalConfig = ArrivalConfig()
    mix: Tuple[Tuple[str, float], ...] = (("fm-seeding", 1.0),)
    queries: int = 32


@dataclass(frozen=True)
class _Query:
    """One scheduled query: who issues it, when, and what kind it is."""

    arrival: int
    tenant: int
    kind: str
    index: int


@dataclass
class TenantStats:
    """Per-tenant latency summary of one serving point (cycles)."""

    tenant: str
    queries: int
    p50_cycles: int
    p95_cycles: int
    p99_cycles: int
    mean_cycles: float
    max_cycles: int


@dataclass
class ServingPoint:
    """One (backend, tenant set, arrival scale) open-loop serving run."""

    backend: str
    tenants: int
    arrival_scale: float
    queries: int
    last_arrival_cycle: int
    makespan_cycles: int
    #: Offered / achieved throughput in queries per kilocycle.
    offered_per_kcycle: float
    achieved_per_kcycle: float
    #: Queries still in flight when the last query arrived.
    backlog_at_last_arrival: int
    #: Whether the backend failed to keep up with the offered rate (see
    #: :data:`SATURATION_BACKLOG_FRACTION`).
    saturated: bool
    peak_queue_depth: int
    per_tenant: List[TenantStats] = field(default_factory=list)
    #: ``(cycle, peak depth within bucket)`` samples, at most
    #: :data:`QUEUE_TIMELINE_BUCKETS` of them.
    queue_depth: List[Tuple[int, int]] = field(default_factory=list)
    #: The machine-level report (cycles, energy, traffic) the perf
    #: harness fingerprints.
    report: Optional[Report] = None

    @property
    def key(self) -> str:
        """Stable identity of this point within a sweep."""
        return (f"{self.backend}/tenants={self.tenants}"
                f"/arrival=x{self.arrival_scale:g}")


@dataclass
class MultiTenantResult:
    """All serving points of one ``mt-*`` campaign, in job order."""

    points: List[ServingPoint]

    def backends(self) -> List[str]:
        """Backends present, in first-appearance order."""
        seen: List[str] = []
        for point in self.points:
            if point.backend not in seen:
                seen.append(point.backend)
        return seen

    def saturation_table(self) -> List[Tuple[str, Optional[ServingPoint]]]:
        """Per backend: the first swept point that saturated (or ``None``)."""
        table: List[Tuple[str, Optional[ServingPoint]]] = []
        for backend in self.backends():
            first = None
            for point in self.points:
                if point.backend == backend and point.saturated:
                    first = point
                    break
            table.append((backend, first))
        return table


def percentile_cycles(sorted_latencies: Sequence[int], pct: float) -> int:
    """Nearest-rank percentile of pre-sorted integer latencies."""
    if not sorted_latencies:
        raise ValueError("no latencies to take a percentile of")
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_latencies)))
    return int(sorted_latencies[rank - 1])


def _tenant_rng(seed: int, tenant_index: int) -> np.random.Generator:
    """The per-tenant random stream (independent across tenants)."""
    return np.random.default_rng(seed * 1_000_003 + tenant_index * 7_919 + 1)


def build_query_schedule(tenants: Sequence[TenantSpec], seed: int,
                         arrival_scale: float = 1.0) -> List[_Query]:
    """Expand the tenant specs into one merged, deterministic schedule."""
    queries: List[_Query] = []
    for t_idx, tenant in enumerate(tenants):
        rng = _tenant_rng(seed, t_idx)
        arrivals = tenant.arrival.arrival_cycles(
            tenant.queries, rng, arrival_scale
        )
        weights = [w for _kind, w in tenant.mix]
        total = float(sum(weights))
        probs = [w / total for w in weights]
        choices = rng.choice(len(tenant.mix), size=tenant.queries, p=probs)
        for q_idx, (cycle, pick) in enumerate(zip(arrivals, choices)):
            queries.append(_Query(
                arrival=int(cycle), tenant=t_idx,
                kind=tenant.mix[int(pick)][0], index=q_idx,
            ))
    queries.sort(key=lambda q: (q.arrival, q.tenant, q.index))
    return queries


class ServingWorkbench:
    """Shared serving state on one system: indexes built and placed once.

    Mirrors the allocation order of the workload drivers
    (:mod:`repro.core.drivers`) for each query kind it serves, in
    :data:`QUERY_KINDS` order, then mints one :class:`Task` per query on
    demand.  K-mer abundance queries run against a counting Bloom filter
    pre-populated host-side from the reference, so counter reads return
    real abundances; pre-alignment queries cycle through the dataset's
    candidate pairs.
    """

    def __init__(self, system, workload: SeedingWorkload,
                 scale: ExperimentScale, kinds: Sequence[str]) -> None:
        self.system = system
        self.workload = workload
        self.scale = scale
        self._setups = {
            "fm-seeding": self._setup_fm,
            "hash-seeding": self._setup_hash,
            "kmer-counting": self._setup_kmer,
            "prealignment": self._setup_prealign,
        }
        for kind in QUERY_KINDS:
            if kind in tuple(kinds):
                self._setups[kind]()

    # -- per-kind placement (driver allocation order, one structure each) --

    def _setup_fm(self) -> None:
        system, workload = self.system, self.workload
        cache = get_cache()
        fm = cache.fm_index(workload.reference)
        hot = (
            cache.fm_hot_profile(
                fm, workload.reads[: max(1, int(len(workload.reads) * 0.1))],
                lambda: profile_fm_blocks(fm, workload.reads),
            )
            if system.flags.data_placement
            else None
        )
        region = system._allocate(
            AllocationRequest(
                application="mt_serving", algorithm="fm_backward_search",
                dataset=workload.name, size_bytes=fm.size_bytes,
            ),
            lambda: system.planner.fm_index(
                "mt_fm_index", fm.num_blocks, FMIndex.BLOCK_BYTES, hot
            ),
        )
        self.fm_accessor = FmIndexAccessor(fm, region)

    def _setup_hash(self, k: int = 13, bucket_load: int = 4) -> None:
        system, workload = self.system, self.workload
        positions = len(workload.reference) - k + 1
        index = get_cache().hash_index(
            workload.reference, k=k, stride=1,
            num_buckets=max(64, positions // bucket_load),
        )
        directory = system._allocate(
            AllocationRequest(
                application="mt_serving", algorithm="hash_index",
                dataset=workload.name, size_bytes=index.directory_bytes,
            ),
            lambda: system.planner.hash_directory(
                "mt_hash_dir", index.directory_bytes
            ),
        )
        locations = system._allocate(
            AllocationRequest(
                application="mt_serving", algorithm="hash_index",
                dataset=workload.name, size_bytes=index.locations_bytes,
            ),
            lambda: system.planner.hash_locations(
                "mt_hash_loc", index.locations_bytes
            ),
        )
        self.hash_accessor = HashIndexAccessor(index, directory, locations)

    def _setup_kmer(self) -> None:
        system, workload, scale = self.system, self.workload, self.scale
        bloom = fresh_bloom_filter(scale.num_counters)
        # Host-side pre-population (no simulated cost): abundance queries
        # then read real counter values, as a serving deployment would.
        for kmer in iter_kmers(workload.reference, scale.kmer_k):
            bloom.insert(kmer)
        region = system._allocate(
            AllocationRequest(
                application="mt_serving", algorithm="kmer_abundance",
                dataset=workload.name, size_bytes=bloom.size_bytes,
            ),
            lambda: system.planner.bloom_filter(
                "mt_bloom", bloom.size_bytes, home_switch=None
            ),
        )
        self.bloom_accessor = BloomAccessor(bloom, region)

    def _setup_prealign(self) -> None:
        system, workload, scale = self.system, self.workload, self.scale
        self.prealign_pairs = make_prealign_pairs(workload, scale.max_edits)
        ref_bytes = -(-len(workload.reference) // 4)
        region = system._allocate(
            AllocationRequest(
                application="mt_serving", algorithm="shouji",
                dataset=workload.name, size_bytes=ref_bytes,
            ),
            lambda: system.planner.reference("mt_reference", ref_bytes),
        )
        self.ref_accessor = ReferenceAccessor(region)
        self.shouji = ShoujiFilter(max_edits=scale.max_edits)
        system.prealign_results = []

    # -- task minting ------------------------------------------------------

    def make_task(self, kind: str, query_index: int) -> Task:
        """A fresh task of ``kind``; ``query_index`` picks its input."""
        reads = self.workload.reads
        if kind == "fm-seeding":
            read = reads[query_index % len(reads)]
            return Task(
                algorithm=Algorithm.FM_SEEDING,
                steps=fm_seeding_steps(self.fm_accessor, read),
                payload_bytes=self.system._task_payload(read),
            )
        if kind == "hash-seeding":
            read = reads[query_index % len(reads)]
            return Task(
                algorithm=Algorithm.HASH_SEEDING,
                steps=hash_seeding_steps(self.hash_accessor, read),
                payload_bytes=self.system._task_payload(read),
            )
        if kind == "kmer-counting":
            read = reads[query_index % len(reads)]
            return Task(
                algorithm=Algorithm.KMER_COUNTING,
                steps=kmer_query_steps(
                    self.bloom_accessor, read, self.scale.kmer_k
                ),
                payload_bytes=self.system._task_payload(read),
            )
        if kind == "prealignment":
            pair = self.prealign_pairs[query_index % len(self.prealign_pairs)]
            return Task(
                algorithm=Algorithm.PREALIGNMENT,
                steps=prealign_steps(
                    self.ref_accessor, self.shouji, pair, pair.window_start,
                    self.system.prealign_results,
                ),
                payload_bytes=self.system._task_payload(pair.read),
            )
        raise ValueError(
            f"unknown query kind {kind!r}; known: {QUERY_KINDS}"
        )


class _QueryDispatch:
    """Arrival event for one pre-scheduled serving query.

    A slotted callable replacing the historical pair of nested closures
    per query: ``__call__`` fires at the arrival cycle and ships the task
    message; ``_deliver`` hands the task to its NDP module on arrival.
    """

    __slots__ = ("fabric", "route", "module", "task")

    def __init__(self, fabric, route, module, task: Task) -> None:
        self.fabric = fabric
        self.route = route
        self.module = module
        self.task = task

    def __call__(self) -> None:
        self.fabric.send(self.route, MessageKind.TASK,
                         self.task.payload_bytes, on_delivered=self._deliver)

    def _deliver(self) -> None:
        self.module.submit_task(self.task)


def _flags_for(backend: str) -> OptimizationFlags:
    """Full optimization stack for BEACON variants, vanilla otherwise."""
    if backend in ("beacon-d", "beacon-s"):
        return OptimizationFlags.all_for(backend, Algorithm.FM_SEEDING)
    return OptimizationFlags.vanilla()


def _downsample_depth(events: List[Tuple[int, int]],
                      buckets: int = QUEUE_TIMELINE_BUCKETS
                      ) -> Tuple[List[Tuple[int, int]], int]:
    """(timeline, peak): bucketed peak-depth samples over +1/-1 events."""
    events.sort(key=lambda e: (e[0], e[1]))
    if not events:
        return [], 0
    span = max(1, events[-1][0])
    bucket_cycles = max(1, -(-span // buckets))
    timeline: List[Tuple[int, int]] = []
    depth = 0
    peak = 0
    bucket_end = bucket_cycles
    bucket_peak = 0
    for cycle, delta in events:
        while cycle > bucket_end:
            timeline.append((bucket_end, bucket_peak))
            bucket_end += bucket_cycles
            bucket_peak = depth
        depth += delta
        bucket_peak = max(bucket_peak, depth)
        peak = max(peak, depth)
    timeline.append((bucket_end, bucket_peak))
    return timeline, peak


def run_serving_point(
    backend: str,
    tenants: Sequence[TenantSpec],
    dataset: str = "Pt",
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    arrival_scale: float = 1.0,
) -> ServingPoint:
    """One open-loop serving run: build, pre-schedule arrivals, measure.

    This is the picklable sweep-job entry point of the ``mt-*`` family
    (and of DSL-authored multi-tenant scenarios): every argument is a
    plain value or frozen dataclass, and identical arguments produce a
    bit-identical :class:`ServingPoint`.
    """
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("a serving point needs at least one tenant")
    scale = scale if scale is not None else ExperimentScale.quick()
    spec = dataset_by_name(dataset)
    workload = make_seeding_workload(
        spec, scale=scale.genome_scale, read_scale=scale.read_scale
    )
    system = build_system(
        backend, scale.config(), _flags_for(backend),
        label=f"{backend} mt x{len(tenants)}",
    )
    system._consume()
    used = {kind for tenant in tenants for kind, _w in tenant.mix}
    kinds = [kind for kind in QUERY_KINDS if kind in used]
    bench = ServingWorkbench(system, workload, scale, kinds)
    queries = build_query_schedule(tenants, seed, arrival_scale)

    fabric = system.pool.fabric
    modules = system.ndp_modules
    routes = [fabric.route(fabric.host.name, m.node) for m in modules]
    latencies: Dict[int, List[int]] = {i: [] for i in range(len(tenants))}
    depth_events: List[Tuple[int, int]] = []
    for pos, query in enumerate(queries):
        task = bench.make_task(query.kind, query.tenant * 101 + query.index)
        depth_events.append((query.arrival, 1))

        def _on_done(done: Task, tenant: int = query.tenant,
                     arrival: int = query.arrival) -> None:
            latencies[tenant].append(done.finished_at - arrival)
            depth_events.append((done.finished_at, -1))

        task.on_done = _on_done
        module = modules[pos % len(modules)]
        route = routes[pos % len(modules)]
        system.engine.schedule_at(
            query.arrival, _QueryDispatch(fabric, route, module, task)
        )
    system.engine.run()

    completed = sum(len(v) for v in latencies.values())
    if completed != len(queries):
        raise SimulationError(
            f"{backend}: {completed}/{len(queries)} queries completed; "
            "the serving simulation deadlocked"
        )
    makespan = system.engine.now
    last_arrival = queries[-1].arrival
    offered = 1000.0 * len(queries) / max(1, last_arrival)
    achieved = 1000.0 * len(queries) / max(1, makespan)
    done_by_last_arrival = sum(
        1 for cycle, delta in depth_events
        if delta < 0 and cycle <= last_arrival
    )
    backlog = len(queries) - done_by_last_arrival
    timeline, peak = _downsample_depth(depth_events)
    per_tenant = []
    for t_idx, tenant in enumerate(tenants):
        lat = sorted(latencies[t_idx])
        per_tenant.append(TenantStats(
            tenant=tenant.name,
            queries=len(lat),
            p50_cycles=percentile_cycles(lat, 50),
            p95_cycles=percentile_cycles(lat, 95),
            p99_cycles=percentile_cycles(lat, 99),
            mean_cycles=sum(lat) / len(lat),
            max_cycles=int(lat[-1]),
        ))
    report = system._finish_report(
        Algorithm.CUSTOM,
        f"{dataset}+mt{len(tenants)}x{arrival_scale:g}",
        len(queries),
    )
    return ServingPoint(
        backend=backend,
        tenants=len(tenants),
        arrival_scale=arrival_scale,
        queries=len(queries),
        last_arrival_cycle=last_arrival,
        makespan_cycles=makespan,
        offered_per_kcycle=offered,
        achieved_per_kcycle=achieved,
        backlog_at_last_arrival=backlog,
        saturated=backlog > SATURATION_BACKLOG_FRACTION * len(queries),
        peak_queue_depth=peak,
        per_tenant=per_tenant,
        queue_depth=timeline,
        report=report,
    )


# ---------------------------------------------------------------------------
# The built-in mt-* scenario family.
# ---------------------------------------------------------------------------

#: Backends the built-in serving campaigns compare.
MT_BACKENDS: Tuple[str, ...] = ("beacon-d", "beacon-s")

#: Dataset the built-in campaigns serve.
MT_DATASET = "Pt"

#: Seed of the built-in campaigns' arrival/mix streams.
MT_SEED = 2022

#: Tenant templates the built-in campaigns cycle through: an aligner
#: (seeding-heavy), an abundance counter, a pre-alignment filter, and a
#: mixed pipeline tenant.
TENANT_TEMPLATES: Tuple[TenantSpec, ...] = (
    TenantSpec(
        name="aligner",
        arrival=ArrivalConfig("poisson", rate_per_kcycle=0.12),
        mix=(("fm-seeding", 3.0), ("hash-seeding", 1.0)),
    ),
    TenantSpec(
        name="counter",
        arrival=ArrivalConfig("uniform", rate_per_kcycle=0.12),
        mix=(("kmer-counting", 1.0),),
    ),
    TenantSpec(
        name="filter",
        arrival=ArrivalConfig("poisson", rate_per_kcycle=0.16),
        mix=(("prealignment", 1.0),),
    ),
    TenantSpec(
        name="pipeline",
        arrival=ArrivalConfig("poisson", rate_per_kcycle=0.10),
        mix=(("fm-seeding", 1.0), ("kmer-counting", 1.0),
             ("prealignment", 1.0)),
    ),
)

#: Tenant counts the ``mt-serving`` scenario sweeps.
MT_TENANT_COUNTS: Tuple[int, ...] = (1, 2, 4)

#: Offered-rate multipliers the ``mt-saturation`` scenario sweeps.
MT_ARRIVAL_SCALES: Tuple[float, ...] = (1.0, 4.0, 16.0)

#: Tenant count the saturation sweep holds fixed.
MT_SATURATION_TENANTS = 2


def default_tenants(count: int,
                    queries_per_tenant: int) -> Tuple[TenantSpec, ...]:
    """``count`` tenants cycled from :data:`TENANT_TEMPLATES`."""
    tenants = []
    for i in range(count):
        template = TENANT_TEMPLATES[i % len(TENANT_TEMPLATES)]
        name = template.name if i < len(TENANT_TEMPLATES) \
            else f"{template.name}-{i // len(TENANT_TEMPLATES) + 1}"
        tenants.append(TenantSpec(
            name=name, arrival=template.arrival, mix=template.mix,
            queries=queries_per_tenant,
        ))
    return tuple(tenants)


def serving_queries_per_tenant(scale: ExperimentScale) -> int:
    """Queries each tenant issues at ``scale`` (rides ``read_scale``)."""
    return max(8, int(12 * scale.read_scale))


def build_serving_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """``mt-serving`` jobs: backends x tenant counts at the base rate."""
    queries = serving_queries_per_tenant(scale)
    jobs = []
    for backend in MT_BACKENDS:
        for count in MT_TENANT_COUNTS:
            jobs.append(SweepJob(
                key=f"{backend}/tenants={count}",
                func=run_serving_point,
                args=(backend, default_tenants(count, queries)),
                kwargs={"dataset": MT_DATASET, "scale": scale,
                        "seed": MT_SEED, "arrival_scale": 1.0},
            ))
    return jobs


def build_saturation_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """``mt-saturation`` jobs: backends x offered rates, 2 tenants."""
    queries = serving_queries_per_tenant(scale)
    tenants = default_tenants(MT_SATURATION_TENANTS, queries)
    jobs = []
    for backend in MT_BACKENDS:
        for mult in MT_ARRIVAL_SCALES:
            jobs.append(SweepJob(
                key=f"{backend}/arrival=x{mult:g}",
                func=run_serving_point,
                args=(backend, tenants),
                kwargs={"dataset": MT_DATASET, "scale": scale,
                        "seed": MT_SEED, "arrival_scale": mult},
            ))
    return jobs


def publish_serving_metrics(result: MultiTenantResult) -> None:
    """Fold one serving family's points into the fleet-telemetry registry.

    Purely observational (collection, not simulation, calls this): a
    counter of collected points by backend and saturation verdict, and a
    gauge of the last achieved throughput per swept point — the series a
    Prometheus scrape of a long serving campaign would chart.  Imported
    lazily so the serving layer has no hard telemetry dependency.
    """
    from repro.obs.telemetry.registry import get_registry

    registry = get_registry()
    points = registry.counter(
        "repro_serving_points_total",
        "collected serving sweep points by backend and verdict",
        labels=("backend", "verdict"),
    )
    achieved = registry.gauge(
        "repro_serving_achieved_per_kcycle",
        "achieved queries per kilocycle of the latest collected point",
        labels=("backend", "tenants", "arrival"),
    )
    for point in result.points:
        verdict = "saturated" if point.saturated else "ok"
        points.labels(backend=point.backend, verdict=verdict).inc()
        achieved.labels(
            backend=point.backend,
            tenants=str(point.tenants),
            arrival=f"{point.arrival_scale:g}",
        ).set(point.achieved_per_kcycle)


def collect_serving(scale: ExperimentScale,
                    results: Dict[str, Any]) -> MultiTenantResult:
    """Fold finished serving points (job order) into the family result."""
    result = MultiTenantResult(points=list(results.values()))
    publish_serving_metrics(result)
    return result


def present_serving(result: MultiTenantResult) -> None:
    """Print the serving points and the per-backend saturation table."""
    for point in result.points:
        verdict = "SATURATED" if point.saturated else "ok"
        print(
            f"\n[{point.backend} | tenants={point.tenants} "
            f"| arrival x{point.arrival_scale:g}] "
            f"{point.queries} queries  "
            f"offered {point.offered_per_kcycle:.3f}/kcyc  "
            f"achieved {point.achieved_per_kcycle:.3f}/kcyc  "
            f"backlog {point.backlog_at_last_arrival}/{point.queries}  "
            f"peak depth {point.peak_queue_depth}  [{verdict}]"
        )
        for stats in point.per_tenant:
            print(
                f"  {stats.tenant:12s} {stats.queries:4d} queries  "
                f"p50 {stats.p50_cycles:8d}  p95 {stats.p95_cycles:8d}  "
                f"p99 {stats.p99_cycles:8d}  max {stats.max_cycles:8d} cyc"
            )
    print("\nsaturation:")
    for backend, first in result.saturation_table():
        if first is None:
            print(f"  {backend:10s} not saturated within the swept range")
        else:
            backlog_pct = 100 * first.backlog_at_last_arrival // first.queries
            print(
                f"  {backend:10s} first saturates at tenants="
                f"{first.tenants}, arrival x{first.arrival_scale:g} "
                f"({backlog_pct}% of queries backlogged at last arrival)"
            )


# Catalogue order must not depend on which module gets imported first:
# pull in the paper campaigns (idempotent; this module is already in
# sys.modules, so the circular import resolves to the partial module)
# before appending the mt-* family to the registry.
ensure_registered()

SERVING_SPEC = register_scenario(ScenarioSpec(
    name="mt-serving",
    title="open-loop multi-tenant serving (extension)",
    description="tenant-count sweep of seeded stochastic query streams "
                "sharing the pool open-loop: latency percentiles, "
                "queue-depth timelines, saturation verdicts",
    build_jobs=build_serving_jobs,
    collect=collect_serving,
    present=present_serving,
    aliases=("mt_serving", "multi-tenant"),
    backends=MT_BACKENDS,
    drivers=QUERY_KINDS,
    sweep_axes=("tenants",),
))

SATURATION_SPEC = register_scenario(ScenarioSpec(
    name="mt-saturation",
    title="multi-tenant saturation sweep (extension)",
    description="offered-rate sweep at a fixed tenant count: where each "
                "backend stops keeping up with open-loop arrivals",
    build_jobs=build_saturation_jobs,
    collect=collect_serving,
    present=present_serving,
    aliases=("mt_saturation",),
    backends=MT_BACKENDS,
    drivers=QUERY_KINDS,
    sweep_axes=("arrival_scale",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner=None) -> MultiTenantResult:
    """Execute the ``mt-serving`` campaign at ``scale``."""
    return SERVING_SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner=None) -> MultiTenantResult:
    """Run ``mt-serving`` and print the serving/saturation tables."""
    return SERVING_SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
