"""Fig. 3 — what idealized communication buys the prior DDR-DIMM NDP work.

The paper motivates BEACON by giving MEDAL and NEST imaginary idealized
communication (infinite bandwidth, zero latency): on average performance
improves 4.36x and energy efficiency 2.32x, showing communication is their
bottleneck.  This experiment runs the same counterfactual on our MEDAL and
NEST models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import Algorithm
from repro.core.metrics import Report, geometric_mean
from repro.core.registry import build_system
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale, OptimizationFlags
from repro.experiments.scenarios import ScenarioSpec, register_scenario


@dataclass
class IdealizedGain:
    """Real vs idealized-communication outcome for one baseline run."""

    system: str
    algorithm: str
    dataset: str
    real: Report
    ideal: Report

    @property
    def speedup(self) -> float:
        return self.real.runtime_ns / self.ideal.runtime_ns

    @property
    def energy_gain(self) -> float:
        return self.real.total_energy_nj / self.ideal.total_energy_nj


@dataclass
class Fig3Result:
    gains: List[IdealizedGain]

    @property
    def mean_speedup(self) -> float:
        return geometric_mean(g.speedup for g in self.gains)

    @property
    def mean_energy_gain(self) -> float:
        return geometric_mean(g.energy_gain for g in self.gains)


def _real_ideal_pair(baseline: str, method: str, config, workload,
                     run_kwargs: Dict) -> Tuple[Report, Report]:
    """Sweep-point worker: one baseline run plus its idealized twin."""
    flags = OptimizationFlags.vanilla()
    real = getattr(build_system(baseline, config, flags), method)(
        workload, **run_kwargs
    )
    ideal = getattr(build_system(baseline, config.idealized(), flags), method)(
        workload, **run_kwargs
    )
    return real, ideal


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """One job per (baseline, algorithm, dataset): real + idealized twin."""
    config = scale.config()
    jobs: List[SweepJob] = []
    for spec in scale.seeding_datasets():
        workload = scale.seeding_workload(spec)
        for algorithm, method in (
            (Algorithm.FM_SEEDING, "run_fm_seeding"),
            (Algorithm.HASH_SEEDING, "run_hash_seeding"),
        ):
            jobs.append(SweepJob(
                key=f"medal/{algorithm.value}/{spec.name}",
                func=_real_ideal_pair,
                args=("medal", method, config, workload, {}),
            ))
    kmer = scale.kmer_workload()
    kmer_config = scale.config_for(Algorithm.KMER_COUNTING)
    jobs.append(SweepJob(
        key=f"nest/{Algorithm.KMER_COUNTING.value}/{kmer.name}",
        func=_real_ideal_pair,
        args=("nest", "run_kmer_counting", kmer_config, kmer,
              {"k": scale.kmer_k, "num_counters": scale.num_counters}),
    ))
    return jobs


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> Fig3Result:
    """Fold the (real, ideal) pairs back into the figure result; the job
    key carries the (system, algorithm, dataset) identity."""
    gains = []
    for key, (real, ideal) in results.items():
        system, algorithm, dataset = key.split("/", 2)
        gains.append(IdealizedGain(system, algorithm, dataset, real, ideal))
    return Fig3Result(gains)


def present(result: Fig3Result) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nFig. 3 — prior DDR-DIMM accelerators with idealized communication")
    print(f"{'system':8s} {'algorithm':16s} {'dataset':8s} "
          f"{'perf gain':>10s} {'energy gain':>12s}")
    for g in result.gains:
        print(f"{g.system:8s} {g.algorithm:16s} {g.dataset:8s} "
              f"{g.speedup:9.2f}x {g.energy_gain:11.2f}x")
    print(f"geomean: perf {result.mean_speedup:.2f}x "
          f"(paper: 4.36x), energy {result.mean_energy_gain:.2f}x (paper: 2.32x)")


SPEC = register_scenario(ScenarioSpec(
    name="fig3",
    title="idealized communication for prior DDR-DIMM NDP",
    description="MEDAL/NEST with infinite-bandwidth zero-latency fabric "
                "vs their real topology (the paper's motivation study)",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("fig3_idealized", "fig3-idealized"),
    backends=("medal", "nest"),
    drivers=("fm-seeding", "kmer-counting"),
    sweep_axes=("dataset", "idealized"),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig3Result:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig3Result:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
