"""Section VI-G — aggregate improvements from the optimizations.

Paper: over all applications, the optimization stack gives BEACON-D 2.21x
performance and 3.70x energy efficiency (communication energy share
60.68% -> 14.01%), and BEACON-S 1.99x / 2.04x (52.35% -> 13.17%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import Algorithm
from repro.core.metrics import geometric_mean
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale, SweepResult, run_step_sweep
from repro.experiments.scenarios import ScenarioSpec, register_scenario

#: The applications aggregated over, in sweep order.
_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.FM_SEEDING,
    Algorithm.HASH_SEEDING,
    Algorithm.KMER_COUNTING,
)


@dataclass
class SummaryResult:
    sweeps: Dict[str, List[SweepResult]]

    def mean_opt_speedup(self, system: str) -> float:
        return geometric_mean(s.total_opt_speedup for s in self.sweeps[system])

    def mean_opt_energy_gain(self, system: str) -> float:
        return geometric_mean(s.total_opt_energy_gain for s in self.sweeps[system])

    def mean_vanilla_comm_share(self, system: str) -> float:
        shares = [s.vanilla.comm_energy_fraction for s in self.sweeps[system]]
        return sum(shares) / len(shares)

    def mean_final_comm_share(self, system: str) -> float:
        shares = [s.full.comm_energy_fraction for s in self.sweeps[system]]
        return sum(shares) / len(shares)


def _points(scale: ExperimentScale) -> List[tuple]:
    """(algorithm, workload, run kwargs) per aggregated application."""
    seeding = scale.seeding_workload(scale.seeding_datasets()[0])
    return [
        (Algorithm.FM_SEEDING, seeding, {}),
        (Algorithm.HASH_SEEDING, seeding, {}),
        (Algorithm.KMER_COUNTING, scale.kmer_workload(),
         {"k": scale.kmer_k, "num_counters": scale.num_counters}),
    ]


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """One cumulative sweep per (variant, application), no idealized twins."""
    return [
        SweepJob(
            key=f"{system}/{algorithm.value}",
            func=run_step_sweep,
            args=(system, algorithm, workload, scale),
            kwargs={"with_ideal": False, **kwargs},
        )
        for system in ("beacon-d", "beacon-s")
        for algorithm, workload, kwargs in _points(scale)
    ]


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> SummaryResult:
    """Group the finished sweeps by variant, application order fixed."""
    sweeps: Dict[str, List[SweepResult]] = {}
    for system in ("beacon-d", "beacon-s"):
        sweeps[system] = [
            results[f"{system}/{algorithm.value}"] for algorithm in _ALGORITHMS
        ]
    return SummaryResult(sweeps)


def present(result: SummaryResult) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nSection VI-G — aggregate optimization gains")
    for system in ("beacon-d", "beacon-s"):
        print(f"  {system}: x{result.mean_opt_speedup(system):.2f} perf, "
              f"x{result.mean_opt_energy_gain(system):.2f} energy; comm share "
              f"{result.mean_vanilla_comm_share(system):.1%} -> "
              f"{result.mean_final_comm_share(system):.1%}")


SPEC = register_scenario(ScenarioSpec(
    name="sec6g",
    title="aggregate optimization gains",
    description="total optimization-stack speedup, energy gain, and "
                "communication-share reduction over all applications",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("summary", "sec6g_summary"),
    backends=("beacon-d", "beacon-s"),
    drivers=("fm-seeding", "hash-seeding", "kmer-counting", "prealignment"),
    sweep_axes=("algorithm",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> SummaryResult:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> SummaryResult:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
