"""Fig. 16 — DNA pre-alignment.

Paper: BEACON-D / BEACON-S improve performance over the 48-thread CPU
baseline (Shouji) by 362.04x / 359.36x, and reduce energy by 387.05x /
382.80x.  There is no prior DIMM-NDP baseline for pre-alignment, so the
figure is CPU-relative only; we additionally verify the filter's quality
(true sites always accepted, most decoys rejected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.baselines import CpuModel
from repro.core.config import Algorithm, OptimizationFlags
from repro.core.metrics import Report, geometric_mean
from repro.core.registry import build_system
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.genomics.workloads import DatasetSpec


@dataclass
class PrealignOutcome:
    system: str
    dataset: str
    report: Report
    cpu: Report
    accepted: int
    rejected: int
    true_sites: int

    @property
    def speedup_vs_cpu(self) -> float:
        return self.report.speedup_vs(self.cpu)

    @property
    def energy_vs_cpu(self) -> float:
        return self.report.energy_reduction_vs(self.cpu)


@dataclass
class Fig16Result:
    outcomes: List[PrealignOutcome]

    def mean_speedup(self, system: str) -> float:
        return geometric_mean(
            o.speedup_vs_cpu for o in self.outcomes if o.system == system
        )

    def mean_energy_gain(self, system: str) -> float:
        return geometric_mean(
            o.energy_vs_cpu for o in self.outcomes if o.system == system
        )


def _prealign_point(scale: ExperimentScale,
                    spec: DatasetSpec) -> List[PrealignOutcome]:
    """Sweep-point worker: CPU baseline plus both BEACON variants for one
    dataset (the filter verdicts live on the system, so they are counted
    in-process)."""
    config = scale.config()
    workload = scale.prealign_workload(spec)
    cpu_report = CpuModel().run_prealignment(workload, max_edits=scale.max_edits)
    outcomes: List[PrealignOutcome] = []
    for system in ("beacon-d", "beacon-s"):
        flags = OptimizationFlags.all_for(system, Algorithm.PREALIGNMENT)
        sys_ = build_system(system, config, flags)
        report = sys_.run_prealignment(workload, max_edits=scale.max_edits)
        results = sys_.prealign_results
        accepted = sum(1 for r in results if r.accepted)
        outcomes.append(
            PrealignOutcome(
                system=system, dataset=spec.name, report=report,
                cpu=cpu_report, accepted=accepted,
                rejected=len(results) - accepted,
                true_sites=len(workload.reads),
            )
        )
    return outcomes


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """One job per dataset; each runs the CPU baseline + both variants."""
    return [
        SweepJob(key=spec.name, func=_prealign_point, args=(scale, spec))
        for spec in scale.seeding_datasets()
    ]


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> Fig16Result:
    """Flatten the per-dataset outcome lists, submission order preserved."""
    outcomes: List[PrealignOutcome] = []
    for spec_outcomes in results.values():
        outcomes.extend(spec_outcomes)
    return Fig16Result(outcomes)


def present(result: Fig16Result) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nFig. 16 — DNA pre-alignment (vs 48-thread CPU / Shouji)")
    for o in result.outcomes:
        print(f"  {o.system:9s} {o.dataset:4s} x{o.speedup_vs_cpu:8.1f} perf "
              f"x{o.energy_vs_cpu:8.1f} energy "
              f"(accepted {o.accepted}, rejected {o.rejected})")
    for system in ("beacon-d", "beacon-s"):
        print(f"  {system} mean: x{result.mean_speedup(system):.1f} perf, "
              f"x{result.mean_energy_gain(system):.1f} energy")


SPEC = register_scenario(ScenarioSpec(
    name="fig16",
    title="pre-alignment filtering",
    description="both BEACON variants running the Shouji-style pre-alignment "
                "filter vs the analytic CPU baseline, per dataset",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("fig16_prealignment", "fig16-prealignment"),
    backends=("beacon-d", "beacon-s", "cpu"),
    drivers=("prealignment",),
    sweep_axes=("dataset",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig16Result:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig16Result:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
