"""Parallel experiment fan-out.

Every figure of the evaluation replays dozens of *fully independent*
``(system, dataset, optimization-step)`` sweep points: each one builds its
own :class:`~repro.sim.engine.Engine`, its own system instance, and its own
workload, so nothing is shared and the points can run in separate
processes.  :class:`ParallelSweepRunner` fans a list of picklable
:class:`SweepJob` specs out over a :class:`concurrent.futures.
ProcessPoolExecutor` and returns the results keyed and ordered exactly as
submitted, which keeps every aggregate (geomeans, step tables) bit-identical
to a serial run.

Job count resolution, in priority order: the explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, else 1 (serial).  ``jobs=1`` never
touches multiprocessing, and a pool that fails to spawn (sandboxes,
restricted environments) degrades gracefully to the serial path.

Per-job tracing: a ``trace_dir`` (argument or ``REPRO_TRACE_DIR``) makes
every job run inside its own :class:`repro.obs.TraceSession` and write
``<trace_dir>/<key>.json`` — one Perfetto-loadable trace per sweep point,
in workers and in the serial path alike.  A ``profile_dir`` (argument or
``REPRO_PROFILE_DIR``) likewise attaches an in-stream
:class:`repro.obs.LatencyProfiler` to each job and writes
``<profile_dir>/<key>.profile.json`` — latency-attribution reports work
through the process pool exactly like traces, and the two can be
combined.
"""

from __future__ import annotations

import os
import pickle
import re
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepJob:
    """One independent sweep point.

    ``func`` must be picklable by reference (a module-level callable) and
    ``args``/``kwargs`` must be picklable values; the experiment layer only
    ever ships dataclasses (scales, specs, workloads, configs), which all
    qualify.  ``key`` identifies the result and must be unique per batch.
    """

    key: str
    func: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        return self.func(*self.args, **dict(self.kwargs))


def trace_path_for(trace_dir: str, key: str) -> str:
    """Trace file a job with ``key`` writes when tracing into ``trace_dir``."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
    return os.path.join(trace_dir, f"{safe}.json")


def profile_path_for(profile_dir: str, key: str) -> str:
    """Report file a job with ``key`` writes when profiling into
    ``profile_dir``."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
    return os.path.join(profile_dir, f"{safe}.profile.json")


def _execute_job(
    job: SweepJob,
    trace_dir: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> Any:
    """Worker entry point (module-level so the pool can pickle it).

    With a ``trace_dir``, the job runs under its own trace session and its
    events are written to :func:`trace_path_for` before returning; with a
    ``profile_dir``, an in-stream profiler rides the same session (storing
    zero events when no trace is wanted) and its
    :class:`~repro.obs.profile.ProfileReport` is written to
    :func:`profile_path_for`.
    """
    if trace_dir is None and profile_dir is None:
        return job.execute()
    from repro.obs import DEFAULT_EVENT_LIMIT, TraceSession

    session = TraceSession(
        limit=DEFAULT_EVENT_LIMIT if trace_dir is not None else 0,
        profile=profile_dir is not None,
    )
    with session:
        result = job.execute()
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        session.save(trace_path_for(trace_dir, job.key))
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
        report = session.profile_report(figure=job.key, scale="sweep-job")
        report.save(profile_path_for(profile_dir, job.key))
    return result


class ParallelSweepRunner:
    """Run batches of independent sweep jobs, serially or on a process pool.

    >>> runner = ParallelSweepRunner(jobs=4)
    >>> results = runner.run([SweepJob("a", func, (1,)), SweepJob("b", func, (2,))])
    >>> list(results)                   # submission order, not completion order
    ['a', 'b']
    """

    def __init__(self, jobs: Optional[int] = None,
                 trace_dir: Optional[str] = None,
                 profile_dir: Optional[str] = None) -> None:
        if jobs is None:
            jobs = self._jobs_from_env()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: Directory for per-job trace files (``None`` = tracing off);
        #: defaults to ``REPRO_TRACE_DIR`` when unset.
        self.trace_dir = (
            trace_dir
            if trace_dir is not None
            else os.environ.get("REPRO_TRACE_DIR", "").strip() or None
        )
        #: Directory for per-job latency-attribution reports (``None`` =
        #: profiling off); defaults to ``REPRO_PROFILE_DIR`` when unset.
        self.profile_dir = (
            profile_dir
            if profile_dir is not None
            else os.environ.get("REPRO_PROFILE_DIR", "").strip() or None
        )
        #: Set after each batch: whether it actually ran on a pool.
        self.last_run_parallel = False

    @staticmethod
    def _jobs_from_env() -> int:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            warnings.warn(f"ignoring non-integer REPRO_JOBS={raw!r}")
            return 1
        return max(1, jobs)

    @classmethod
    def from_env(cls) -> "ParallelSweepRunner":
        """Runner configured from ``REPRO_JOBS`` (default: serial)."""
        return cls()

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob]) -> Dict[str, Any]:
        """Execute every job; returns ``{key: result}`` in submission order.

        Results are gathered by submission index regardless of completion
        order, so downstream aggregation sees the exact sequence a serial
        loop would have produced.  Worker exceptions propagate.
        """
        jobs = list(jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate sweep job keys: {dupes}")
        if self.jobs == 1 or len(jobs) <= 1:
            return self._run_serial(jobs)
        try:
            return self._run_pool(jobs)
        except (OSError, ValueError, pickle.PicklingError, AttributeError,
                ImportError, BrokenProcessPool) as exc:
            # Pool could not spawn or the specs would not ship; fall back
            # rather than failing the whole evaluation.
            warnings.warn(
                f"parallel sweep fell back to serial execution: {exc!r}"
            )
            return self._run_serial(jobs)

    def run_values(self, jobs: Sequence[SweepJob]) -> List[Any]:
        """Like :meth:`run`, returning just the results in submission order."""
        return list(self.run(jobs).values())

    def _run_serial(self, jobs: Sequence[SweepJob]) -> Dict[str, Any]:
        self.last_run_parallel = False
        return {
            job.key: _execute_job(job, self.trace_dir, self.profile_dir)
            for job in jobs
        }

    def _run_pool(self, jobs: Sequence[SweepJob]) -> Dict[str, Any]:
        workers = min(self.jobs, len(jobs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_job, job, self.trace_dir,
                            self.profile_dir)
                for job in jobs
            ]
            results = {job.key: f.result() for job, f in zip(jobs, futures)}
        self.last_run_parallel = True
        return results


def resolve_runner(
    runner: Optional[ParallelSweepRunner] = None,
) -> ParallelSweepRunner:
    """The figure modules' default: passed-in runner, else ``REPRO_JOBS``."""
    return runner if runner is not None else ParallelSweepRunner.from_env()
