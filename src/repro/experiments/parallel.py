"""Parallel experiment fan-out with fleet telemetry.

Every figure of the evaluation replays dozens of *fully independent*
``(system, dataset, optimization-step)`` sweep points: each one builds its
own :class:`~repro.sim.engine.Engine`, its own system instance, and its own
workload, so nothing is shared and the points can run in separate
processes.  :class:`ParallelSweepRunner` fans a list of picklable
:class:`SweepJob` specs out over a :class:`concurrent.futures.
ProcessPoolExecutor` and returns the results keyed and ordered exactly as
submitted, which keeps every aggregate (geomeans, step tables) bit-identical
to a serial run.

Job count resolution, in priority order: the explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, else 1 (serial).  ``jobs=1`` never
touches multiprocessing, and a pool that fails to spawn (sandboxes,
restricted environments) degrades gracefully to the serial path.

Per-job tracing: a ``trace_dir`` (argument or ``REPRO_TRACE_DIR``) makes
every job run inside its own :class:`repro.obs.TraceSession` and write
``<trace_dir>/<key>.json`` — one Perfetto-loadable trace per sweep point,
in workers and in the serial path alike.  A ``profile_dir`` (argument or
``REPRO_PROFILE_DIR``) likewise attaches an in-stream
:class:`repro.obs.LatencyProfiler` to each job and writes
``<profile_dir>/<key>.profile.json`` — latency-attribution reports work
through the process pool exactly like traces, and the two can be
combined.

Fleet telemetry (see :mod:`repro.obs.telemetry` and docs/OBSERVABILITY.md,
"Fleet telemetry"):

* ``ledger_path`` (argument or ``REPRO_LEDGER``) appends one JSONL
  lifecycle event per job — ``queued`` / ``started`` / ``heartbeat`` /
  ``finished`` / ``failed`` — with wall time, worker id, parameter
  digest, index-cache deltas, and a result-fingerprint digest.  Workers
  produce their own ``started``/``finished``/``failed`` events and the
  parent merges them, so the ledger schema is identical serially and
  pooled.
* ``progress=True`` (or ``REPRO_PROGRESS=1``) draws an opt-in, stderr-only
  progress line as jobs complete.
* The shared :func:`repro.obs.telemetry.get_registry` metrics registry
  counts jobs by terminal status and observes per-job wall time; pool
  workers ship their registry deltas back with each result and the
  parent folds them in.

Every outcome — success or failure — carries per-job wall time and a
worker id on the serial and pooled paths alike.  A job that raises no
longer aborts the batch midway: the failure is recorded (``failed``
event, traceback digest), the remaining jobs still run and are recorded,
and the first failure is re-raised once the batch has drained, so caller
semantics (exceptions propagate) are preserved while the ledger stays
complete.

All telemetry is observational: nothing in it feeds back into job
execution, and ``python -m repro bench --verify-telemetry`` proves result
fingerprints are bit-identical with the ledger and progress line enabled.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.genomics import index_cache
from repro.obs.telemetry.ledger import (
    LedgerWriter,
    param_digest,
    traceback_digest,
    worker_id,
)
from repro.obs.telemetry.progress import ProgressLine
from repro.obs.telemetry.registry import diff_snapshots, get_registry

#: Environment variable naming the ledger file (same precedence pattern
#: as ``REPRO_TRACE_DIR`` / ``REPRO_PROFILE_DIR``).
LEDGER_ENV = "REPRO_LEDGER"

#: Environment switch for the progress line (any non-empty value).
PROGRESS_ENV = "REPRO_PROGRESS"

#: Seconds between parent-side ``heartbeat`` ledger events while jobs run.
DEFAULT_HEARTBEAT_S = 30.0


@dataclass(frozen=True)
class SweepJob:
    """One independent sweep point.

    ``func`` must be picklable by reference (a module-level callable) and
    ``args``/``kwargs`` must be picklable values; the experiment layer only
    ever ships dataclasses (scales, specs, workloads, configs), which all
    qualify.  ``key`` identifies the result and must be unique per batch.
    """

    key: str
    func: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def execute(self) -> Any:
        """Run the job in the current process and return its result."""
        return self.func(*self.args, **dict(self.kwargs))

    def params_digest(self) -> str:
        """Content digest of this job's callable + arguments."""
        func_name = getattr(self.func, "__qualname__",
                            getattr(self.func, "__name__", repr(self.func)))
        module = getattr(self.func, "__module__", "")
        return param_digest(f"{module}.{func_name}", self.args, self.kwargs)


class SweepJobError(RuntimeError):
    """A sweep job failed and its original exception could not be
    re-raised verbatim (it did not survive the trip back from the worker
    process); carries the job key and the worker-formatted traceback."""

    def __init__(self, key: str, formatted_traceback: str) -> None:
        super().__init__(
            f"sweep job {key!r} failed in a worker:\n{formatted_traceback}"
        )
        self.key = key
        self.formatted_traceback = formatted_traceback


def trace_path_for(trace_dir: str, key: str) -> str:
    """Trace file a job with ``key`` writes when tracing into ``trace_dir``."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
    return os.path.join(trace_dir, f"{safe}.json")


def profile_path_for(profile_dir: str, key: str) -> str:
    """Report file a job with ``key`` writes when profiling into
    ``profile_dir``."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", key)
    return os.path.join(profile_dir, f"{safe}.profile.json")


def _execute_job(
    job: SweepJob,
    trace_dir: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> Any:
    """Run one job (with optional per-job trace/profile sessions).

    With a ``trace_dir``, the job runs under its own trace session and its
    events are written to :func:`trace_path_for` before returning; with a
    ``profile_dir``, an in-stream profiler rides the same session (storing
    zero events when no trace is wanted) and its
    :class:`~repro.obs.profile.ProfileReport` is written to
    :func:`profile_path_for`.
    """
    if trace_dir is None and profile_dir is None:
        return job.execute()
    from repro.obs import DEFAULT_EVENT_LIMIT, TraceSession

    session = TraceSession(
        limit=DEFAULT_EVENT_LIMIT if trace_dir is not None else 0,
        profile=profile_dir is not None,
    )
    with session:
        result = job.execute()
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
        session.save(trace_path_for(trace_dir, job.key))
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
        report = session.profile_report(figure=job.key, scale="sweep-job")
        report.save(profile_path_for(profile_dir, job.key))
    return result


@dataclass
class JobOutcome:
    """Everything one executed job reports back to the parent.

    Picklable by construction (plain data only), so the pool path ships
    the same payload the serial path produces — the ledger and the
    metrics registry see one schema regardless of parallelism.
    """

    key: str
    worker: str
    wall_s: float
    result: Any = None
    #: Worker-stamped lifecycle events for the parent to merge into the
    #: ledger (``started`` then ``finished``/``failed``), or ``[]`` when
    #: the batch runs without a ledger.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Worker registry delta rows (pool path only; the serial path
    #: mutates the parent registry directly).
    registry_delta: List[Dict[str, Any]] = field(default_factory=list)
    #: Failure payload (``None`` on success).
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback_sha256: Optional[str] = None
    #: The original exception, when it survived pickling; re-raised by
    #: the parent so caller-visible semantics stay unchanged.
    exception: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        """Whether this job raised instead of returning a result."""
        return self.error is not None


def _result_fingerprint_digest(result: Any) -> str:
    """Digest of the bench fingerprint of ``result``.

    Imported lazily: :mod:`repro.perf.harness` imports the experiments
    package, so a top-level import here would be circular.  Results with
    no reachable Reports digest the empty fingerprint — still a stable
    identity for a resumable-sweep cache.
    """
    from repro.perf.harness import fingerprint

    return hashlib.sha256(repr(fingerprint(result)).encode("utf-8")) \
        .hexdigest()


def _execute_job_with_meta(
    job: SweepJob,
    trace_dir: Optional[str] = None,
    profile_dir: Optional[str] = None,
    telemetry: bool = False,
    capture_registry: bool = False,
) -> JobOutcome:
    """Worker entry point (module-level so the pool can pickle it).

    Runs the job (with per-job trace/profile sessions when configured),
    times it, and — with ``telemetry`` — captures the ledger events,
    index-cache deltas, and result-fingerprint digest the parent merges.
    Exceptions are captured into the outcome rather than propagated, so
    one failure cannot silence the rest of a batch's records.
    """
    me = worker_id()
    registry_before = get_registry().snapshot() if capture_registry else None
    cache_before = index_cache.cache_stats() if telemetry else None
    # Wall-clock here is fleet telemetry (job timing *is* the payload);
    # it never reaches simulated state, which only sees Engine.now.
    started_wall = time.time()  # repro: allow[no-wall-clock] -- ledger event timestamps are host-side observability; simulated results never see them
    started_perf = time.perf_counter()  # repro: allow[no-wall-clock] -- per-job wall_s is telemetry bookkeeping, not simulated time
    events: List[Dict[str, Any]] = []
    if telemetry:
        events.append({
            "event": "started", "job": job.key, "worker": me,
            "t_wall": started_wall, "params": job.params_digest(),
        })
    try:
        result = _execute_job(job, trace_dir, profile_dir)
    except Exception as exc:
        import traceback as _traceback

        formatted = _traceback.format_exc()
        wall = time.perf_counter() - started_perf  # repro: allow[no-wall-clock] -- telemetry bookkeeping (see above)
        outcome = JobOutcome(
            key=job.key, worker=me, wall_s=wall,
            error=formatted,
            error_type=type(exc).__name__,
            traceback_sha256=traceback_digest(formatted),
            exception=_if_picklable(exc),
        )
        if telemetry:
            events.append({
                "event": "failed", "job": job.key, "worker": me,
                "t_wall": started_wall + wall, "wall_s": wall,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback_sha256": outcome.traceback_sha256,
            })
            outcome.events = events
        return outcome
    wall = time.perf_counter() - started_perf  # repro: allow[no-wall-clock] -- telemetry bookkeeping (see above)
    outcome = JobOutcome(key=job.key, worker=me, wall_s=wall, result=result)
    if telemetry:
        cache_after = index_cache.cache_stats()
        cache_delta = {
            key: cache_after[key] - cache_before[key] for key in cache_after
        }
        index_cache.publish_cache_metrics(cache_delta)
        events.append({
            "event": "finished", "job": job.key, "worker": me,
            "t_wall": started_wall + wall, "wall_s": wall,
            "params": job.params_digest(),
            "index_cache": cache_delta,
            "fingerprint": _result_fingerprint_digest(result),
        })
        outcome.events = events
    if capture_registry:
        outcome.registry_delta = diff_snapshots(
            registry_before, get_registry().snapshot()
        )
    return outcome


def _if_picklable(exc: BaseException) -> Optional[BaseException]:
    """``exc`` if it round-trips through pickle, else ``None``."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return None
    return exc


class ParallelSweepRunner:
    """Run batches of independent sweep jobs, serially or on a process pool.

    >>> runner = ParallelSweepRunner(jobs=4)
    >>> results = runner.run([SweepJob("a", func, (1,)), SweepJob("b", func, (2,))])
    >>> list(results)                   # submission order, not completion order
    ['a', 'b']
    """

    def __init__(self, jobs: Optional[int] = None,
                 trace_dir: Optional[str] = None,
                 profile_dir: Optional[str] = None,
                 ledger_path: Optional[str] = None,
                 progress: Optional[bool] = None,
                 progress_stream=None,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if jobs is None:
            jobs = self._jobs_from_env()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: Directory for per-job trace files (``None`` = tracing off);
        #: defaults to ``REPRO_TRACE_DIR`` when unset.
        self.trace_dir = (
            trace_dir
            if trace_dir is not None
            else os.environ.get("REPRO_TRACE_DIR", "").strip() or None
        )
        #: Directory for per-job latency-attribution reports (``None`` =
        #: profiling off); defaults to ``REPRO_PROFILE_DIR`` when unset.
        self.profile_dir = (
            profile_dir
            if profile_dir is not None
            else os.environ.get("REPRO_PROFILE_DIR", "").strip() or None
        )
        #: JSONL run-ledger file (``None`` = no ledger); defaults to
        #: ``REPRO_LEDGER`` when unset.
        self.ledger_path = (
            ledger_path
            if ledger_path is not None
            else os.environ.get(LEDGER_ENV, "").strip() or None
        )
        #: Whether to draw the stderr progress line; defaults to
        #: ``REPRO_PROGRESS`` when unset.
        self.progress = (
            progress
            if progress is not None
            else bool(os.environ.get(PROGRESS_ENV, "").strip())
        )
        self._progress_stream = progress_stream
        self.heartbeat_s = heartbeat_s
        #: Set after each batch: whether it actually ran on a pool.
        self.last_run_parallel = False
        #: ``{job key: formatted traceback}`` of the last batch's failures.
        self.last_failures: Dict[str, str] = {}

    @staticmethod
    def _jobs_from_env() -> int:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            warnings.warn(f"ignoring non-integer REPRO_JOBS={raw!r}")
            return 1
        return max(1, jobs)

    @classmethod
    def from_env(cls) -> "ParallelSweepRunner":
        """Runner configured from ``REPRO_JOBS`` (default: serial)."""
        return cls()

    @property
    def parallel(self) -> bool:
        """Whether this runner is configured to use a process pool."""
        return self.jobs > 1

    @property
    def telemetry_enabled(self) -> bool:
        """Whether this runner records a ledger and/or progress line."""
        return self.ledger_path is not None or self.progress

    # -- execution ---------------------------------------------------------------

    def run(self, jobs: Sequence[SweepJob],
            label: Optional[str] = None) -> Dict[str, Any]:
        """Execute every job; returns ``{key: result}`` in submission order.

        Results are gathered by submission index regardless of completion
        order, so downstream aggregation sees the exact sequence a serial
        loop would have produced.  Worker exceptions still propagate —
        but only after the whole batch has drained, so the ledger records
        every job's outcome; the first failure is re-raised verbatim when
        it survived the worker boundary, else as :class:`SweepJobError`.

        ``label`` names the campaign in the ledger's ``campaign-begin``
        event (the scenario layer passes the scenario name).
        """
        jobs = list(jobs)
        outcomes = self._execute_batch(jobs, label)
        failed = [o for o in outcomes.values() if o.failed]
        if failed:
            first = failed[0]
            if first.exception is not None:
                raise first.exception
            raise SweepJobError(first.key, first.error or "")
        return {job.key: outcomes[job.key].result for job in jobs}

    def run_with_outcomes(
        self, jobs: Sequence[SweepJob], label: Optional[str] = None
    ) -> Dict[str, "JobOutcome"]:
        """Execute a batch and return the raw :class:`JobOutcome` per key.

        Unlike :meth:`run`, failures do **not** raise — callers see every
        outcome, failed jobs included, in submission order.  This is the
        entry point for layers that own their error handling (a future
        resumable-sweep executor, the failure-path tests).
        """
        return self._execute_batch(list(jobs), label)

    def _execute_batch(
        self, jobs: List[SweepJob], label: Optional[str]
    ) -> Dict[str, JobOutcome]:
        """Shared batch machinery: ledger bracket, execution, metrics."""
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate sweep job keys: {dupes}")
        self.last_failures = {}
        writer: Optional[LedgerWriter] = None
        progress_line: Optional[ProgressLine] = None
        if self.ledger_path is not None:
            writer = LedgerWriter(self.ledger_path)
            # repro: allow[transitive-wall-clock] -- ledger lines carry
            # host wall-clock timestamps by design (run provenance); they
            # never feed simulated state or the result fingerprint.
            writer.emit("campaign-begin", scenario=label or "",
                        jobs=len(jobs), jobs_config=self.jobs)
            for job in jobs:
                # repro: allow[transitive-wall-clock] -- ledger timestamp
                # is host-side provenance, never simulated state.
                writer.emit("queued", job=job.key,
                            params=job.params_digest())
        if self.progress:
            # repro: allow[transitive-wall-clock] -- the progress display
            # reads host time for ETA estimates only; it is write-only
            # console output and cannot influence results.
            progress_line = ProgressLine(
                total=len(jobs), stream=self._progress_stream
            )
        try:
            if self.jobs == 1 or len(jobs) <= 1:
                outcomes = self._run_serial(jobs, writer, progress_line)
            else:
                try:
                    outcomes = self._run_pool(jobs, writer, progress_line)
                except (OSError, pickle.PicklingError,
                        AttributeError, ImportError,
                        BrokenProcessPool) as exc:
                    # Pool could not spawn or the specs would not ship;
                    # fall back rather than failing the whole evaluation.
                    # (Job-raised exceptions are *captured* into outcomes,
                    # so they can no longer masquerade as pool failures.)
                    warnings.warn(
                        f"parallel sweep fell back to serial execution: "
                        f"{exc!r}"
                    )
                    outcomes = self._run_serial(jobs, writer, progress_line)
        finally:
            if progress_line is not None:
                progress_line.close()
        failed = [o for o in outcomes.values() if o.failed]
        self.last_failures = {o.key: o.error or "" for o in failed}
        self._count_outcomes(outcomes.values())
        if writer is not None:
            # repro: allow[transitive-wall-clock] -- ledger timestamp is
            # host-side provenance, never simulated state.
            writer.emit("campaign-end", scenario=label or "",
                        finished=len(outcomes) - len(failed),
                        failed=len(failed),
                        wall_s=sum(o.wall_s for o in outcomes.values()))
            writer.close()
        return {job.key: outcomes[job.key] for job in jobs}

    def run_values(self, jobs: Sequence[SweepJob]) -> List[Any]:
        """Like :meth:`run`, returning just the results in submission order."""
        return list(self.run(jobs).values())

    def _count_outcomes(self, outcomes) -> None:
        """Fold a batch's outcomes into the shared metrics registry."""
        registry = get_registry()
        status_counter = registry.counter(
            "repro_sweep_jobs_total",
            "sweep jobs by terminal status", labels=("status",),
        )
        wall_hist = registry.histogram(
            "repro_sweep_job_wall_seconds", "per-job wall time",
        )
        for outcome in outcomes:
            status = "failed" if outcome.failed else "finished"
            status_counter.labels(status=status).inc()
            wall_hist.observe(outcome.wall_s)

    def _absorb(self, outcome: JobOutcome,
                writer: Optional[LedgerWriter],
                progress_line: Optional[ProgressLine],
                merge_registry: bool) -> None:
        """Parent-side bookkeeping for one completed job."""
        if writer is not None and outcome.events:
            # repro: allow[transitive-wall-clock] -- merged ledger events
            # carry worker-side wall timestamps (telemetry provenance),
            # not simulated time.
            writer.merge(outcome.events)
        if merge_registry and outcome.registry_delta:
            get_registry().merge_snapshot(outcome.registry_delta)
        if progress_line is not None:
            # repro: allow[transitive-wall-clock] -- progress ETA math
            # reads host time; console-only, result-invisible.
            progress_line.update(outcome.key, outcome.wall_s,
                                 failed=outcome.failed)

    def _run_serial(
        self, jobs: Sequence[SweepJob],
        writer: Optional[LedgerWriter],
        progress_line: Optional[ProgressLine],
    ) -> Dict[str, JobOutcome]:
        self.last_run_parallel = False
        telemetry = writer is not None
        outcomes: Dict[str, JobOutcome] = {}
        last_beat = time.time()  # repro: allow[no-wall-clock] -- heartbeat cadence is host-side telemetry, not simulated time
        for job in jobs:
            now = time.time()  # repro: allow[no-wall-clock] -- heartbeat cadence is host-side telemetry, not simulated time
            if writer is not None and now - last_beat >= self.heartbeat_s:
                # repro: allow[transitive-wall-clock] -- heartbeat lines
                # are host-side liveness telemetry, never simulated state.
                writer.emit("heartbeat", done=len(outcomes),
                            running=[job.key])
                last_beat = now
            outcome = _execute_job_with_meta(
                job, self.trace_dir, self.profile_dir,
                telemetry=telemetry, capture_registry=False,
            )
            outcomes[job.key] = outcome
            self._absorb(outcome, writer, progress_line,
                         merge_registry=False)
        return outcomes

    def _run_pool(
        self, jobs: Sequence[SweepJob],
        writer: Optional[LedgerWriter],
        progress_line: Optional[ProgressLine],
    ) -> Dict[str, JobOutcome]:
        telemetry = writer is not None
        workers = min(self.jobs, len(jobs))
        outcomes: Dict[str, JobOutcome] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_job_with_meta, job, self.trace_dir,
                            self.profile_dir, telemetry, telemetry)
                for job in jobs
            ]
            handled = [False] * len(futures)
            while not all(handled):
                wait(
                    [f for f, done in zip(futures, handled) if not done],
                    timeout=self.heartbeat_s,
                    return_when=FIRST_COMPLETED,
                )
                progressed = False
                # Scan in submission order (never completion-set order)
                # so parent-side bookkeeping stays deterministic.
                for i, future in enumerate(futures):
                    if handled[i] or not future.done():
                        continue
                    handled[i] = True
                    progressed = True
                    outcome = future.result()
                    outcomes[outcome.key] = outcome
                    self._absorb(outcome, writer, progress_line,
                                 merge_registry=True)
                if not progressed and writer is not None:
                    running = [
                        job.key for job, done in zip(jobs, handled)
                        if not done
                    ]
                    # repro: allow[transitive-wall-clock] -- heartbeat
                    # lines are host-side liveness telemetry, never
                    # simulated state.
                    writer.emit("heartbeat", done=len(outcomes),
                                running=running[:16])
        self.last_run_parallel = True
        return {job.key: outcomes[job.key] for job in jobs}

def resolve_runner(
    runner: Optional[ParallelSweepRunner] = None,
) -> ParallelSweepRunner:
    """The figure modules' default: passed-in runner, else ``REPRO_JOBS``."""
    return runner if runner is not None else ParallelSweepRunner.from_env()
