"""Shared experiment machinery: scales and cumulative step sweeps.

System construction is the backend registry's job
(:func:`repro.core.registry.build_system`, re-exported here for the
experiment layer); this module owns the *scale* presets mapping the
paper's workloads down to simulable sizes and the cumulative
optimization sweep every step figure replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.core.registry import build_system
from repro.core.metrics import Report
from repro.genomics.workloads import (
    KMER_DATASET,
    SEEDING_DATASETS,
    DatasetSpec,
    SeedingWorkload,
    make_kmer_workload,
    make_seeding_workload,
)


@dataclass(frozen=True)
class ExperimentScale:
    """How far the experiments are scaled down from the paper.

    The paper simulates tens-of-gigabase genomes against 256-512 PEs; a
    Python event simulator scales both down together, keeping the systems
    in the same throughput-bound operating regime (see
    :meth:`repro.core.config.BeaconConfig.scaled`).
    """

    genome_scale: float = 0.35
    read_scale: float = 4.0
    kmer_genome_scale: float = 0.25
    kmer_read_scale: float = 1.2
    prealign_genome_scale: float = 0.2
    prealign_read_scale: float = 3.0
    pe_divisor: int = 4
    #: k-mer counting runs with a deeper PE cut so tasks-per-PE stays >> 1
    #: (its read count is much smaller than the seeding studies').
    kmer_pe_divisor: int = 8
    num_counters: int = 1 << 16
    kmer_k: int = 15
    max_edits: int = 3
    #: How many of the five seeding datasets to run (5 = the full figure).
    num_datasets: int = 5
    #: Whether benches apply the full paper-shape thresholds.  The quick
    #: scale is a smoke mode: workloads are too small to be in the paper's
    #: throughput-bound regime, so only sanity thresholds apply.
    strict: bool = True

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small enough for unit tests (seconds, not minutes)."""
        return cls(
            genome_scale=0.08, read_scale=2.0,
            kmer_genome_scale=0.08, kmer_read_scale=0.3,
            prealign_genome_scale=0.08, prealign_read_scale=1.0,
            pe_divisor=8, kmer_pe_divisor=16, num_counters=1 << 14,
            num_datasets=2, strict=False,
        )

    @classmethod
    def bench(cls) -> "ExperimentScale":
        """The benchmark suite's default (minutes for the whole suite)."""
        return cls()

    def config(self) -> BeaconConfig:
        return BeaconConfig().scaled(self.pe_divisor)

    def config_for(self, algorithm: Algorithm) -> BeaconConfig:
        if algorithm is Algorithm.KMER_COUNTING:
            return BeaconConfig().scaled(self.kmer_pe_divisor)
        return self.config()

    def seeding_datasets(self) -> Sequence[DatasetSpec]:
        return SEEDING_DATASETS[: self.num_datasets]

    def seeding_workload(self, spec: DatasetSpec) -> SeedingWorkload:
        return make_seeding_workload(
            spec, scale=self.genome_scale, read_scale=self.read_scale
        )

    def kmer_workload(self) -> SeedingWorkload:
        return make_kmer_workload(
            scale=self.kmer_genome_scale, read_scale=self.kmer_read_scale
        )

    def prealign_workload(self, spec: DatasetSpec) -> SeedingWorkload:
        return make_seeding_workload(
            spec, scale=self.prealign_genome_scale,
            read_scale=self.prealign_read_scale,
        )


@dataclass
class StepResult:
    """One point of a cumulative optimization sweep."""

    label: str
    flags: OptimizationFlags
    report: Report
    #: Speedup over the previous step (1.0 for the first).
    step_speedup: float = 1.0


@dataclass
class SweepResult:
    """A full step-by-step sweep plus its idealized twin."""

    system: str
    algorithm: Algorithm
    dataset: str
    steps: List[StepResult]
    ideal: Optional[Report] = None
    baseline: Optional[Report] = None       # MEDAL or NEST
    cpu: Optional[Report] = None

    @property
    def vanilla(self) -> Report:
        return self.steps[0].report

    @property
    def full(self) -> Report:
        return self.steps[-1].report

    @property
    def total_opt_speedup(self) -> float:
        return self.full.speedup_vs(self.vanilla)

    @property
    def total_opt_energy_gain(self) -> float:
        return self.full.energy_reduction_vs(self.vanilla)

    @property
    def percent_of_ideal(self) -> float:
        if self.ideal is None:
            raise ValueError("sweep has no idealized twin")
        return self.full.percent_of_ideal(self.ideal)

    def speedup_vs_baseline(self) -> float:
        if self.baseline is None:
            raise ValueError("sweep has no hardware baseline")
        return self.full.speedup_vs(self.baseline)

    def speedup_vs_cpu(self) -> float:
        if self.cpu is None:
            raise ValueError("sweep has no CPU baseline")
        return self.full.speedup_vs(self.cpu)


def run_step_sweep(
    system: str,
    algorithm: Algorithm,
    workload: SeedingWorkload,
    scale: ExperimentScale,
    with_ideal: bool = True,
    baseline: Optional[str] = None,
    with_cpu: bool = False,
    **run_kwargs,
) -> SweepResult:
    """Run the paper's cumulative optimization sweep for one dataset."""
    config = scale.config_for(algorithm)
    steps: List[StepResult] = []
    for label, flags in OptimizationFlags.cumulative_steps(system, algorithm):
        sys_ = build_system(system, config, flags, label=f"{system} {label}")
        report = sys_.run_algorithm(algorithm, workload, **run_kwargs)
        step = StepResult(label=label, flags=flags, report=report)
        if steps:
            step.step_speedup = report.speedup_vs(steps[-1].report)
        steps.append(step)
    result = SweepResult(system=system, algorithm=algorithm,
                         dataset=workload.name, steps=steps)
    if with_ideal:
        full_flags = steps[-1].flags
        twin = build_system(system, config.idealized(), full_flags,
                            label=f"{system} ideal")
        result.ideal = twin.run_algorithm(algorithm, workload, **run_kwargs)
    if baseline is not None:
        base = build_system(baseline, config, OptimizationFlags.vanilla())
        result.baseline = base.run_algorithm(algorithm, workload, **run_kwargs)
    if with_cpu:
        cpu = build_system("cpu", config, OptimizationFlags.vanilla())
        result.cpu = cpu.run_algorithm(algorithm, workload)
    return result


def print_sweep(result: SweepResult) -> None:
    """Paper-style step table for one sweep."""
    print(f"\n[{result.system} / {result.algorithm.value} / {result.dataset}]")
    for step in result.steps:
        report = step.report
        print(
            f"  {step.label:26s} {report.runtime_us:10.1f} us"
            f"  step x{step.step_speedup:5.2f}"
            f"  comm {report.comm_energy_fraction:6.1%}"
            f"  energy {report.total_energy_nj / 1e3:9.1f} uJ"
        )
    if result.ideal is not None:
        print(f"  {'(idealized comm)':26s} {result.ideal.runtime_us:10.1f} us"
              f"  -> full = {result.percent_of_ideal:.1%} of ideal")
    if result.baseline is not None:
        print(f"  vs {result.baseline.system}: x{result.speedup_vs_baseline():.2f} perf, "
              f"x{result.full.energy_reduction_vs(result.baseline):.2f} energy")
    if result.cpu is not None:
        print(f"  vs cpu48: x{result.speedup_vs_cpu():.1f} perf, "
              f"x{result.full.energy_reduction_vs(result.cpu):.1f} energy")
