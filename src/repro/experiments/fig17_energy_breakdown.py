"""Fig. 17 — energy breakdown across the optimization stack.

Paper: in CXL-vanilla, communication dominates (BEACON-D 60.68%, BEACON-S
52.35% of total energy on average); the optimization stack cuts the
communication share to 14.01% / 13.17%, and computation stays below 1%
throughout.  This experiment reuses the step sweeps and reports the
communication / DRAM / compute shares per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import Algorithm
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale, run_step_sweep
from repro.experiments.scenarios import ScenarioSpec, register_scenario

#: The algorithms averaged over, in sweep order (kwargs resolved per scale).
_ALGORITHMS: Tuple[Algorithm, ...] = (
    Algorithm.FM_SEEDING,
    Algorithm.KMER_COUNTING,
)


@dataclass
class EnergyShare:
    label: str
    comm: float
    dram: float
    compute: float


@dataclass
class Fig17Result:
    #: system -> per-step energy shares averaged over workloads.
    shares: Dict[str, List[EnergyShare]]
    #: system -> mean communication share of each algorithm's *first* step.
    vanilla_comm: Dict[str, float]
    #: system -> mean communication share of each algorithm's *last* step.
    final_comm: Dict[str, float]

    def vanilla_comm_share(self, system: str) -> float:
        return self.vanilla_comm[system]

    def final_comm_share(self, system: str) -> float:
        return self.final_comm[system]

    def max_compute_share(self, system: str) -> float:
        return max(s.compute for s in self.shares[system])


def _points(scale: ExperimentScale) -> List[tuple]:
    """(algorithm, workload, run kwargs) per swept algorithm at ``scale``."""
    return [
        (Algorithm.FM_SEEDING,
         scale.seeding_workload(scale.seeding_datasets()[0]), {}),
        (Algorithm.KMER_COUNTING, scale.kmer_workload(),
         {"k": scale.kmer_k, "num_counters": scale.num_counters}),
    ]


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """One cumulative sweep per (variant, algorithm), no idealized twins."""
    return [
        SweepJob(
            key=f"{system}/{algorithm.value}",
            func=run_step_sweep,
            args=(system, algorithm, workload, scale),
            kwargs={"with_ideal": False, **kwargs},
        )
        for system in ("beacon-d", "beacon-s")
        for algorithm, workload, kwargs in _points(scale)
    ]


def collect(scale: ExperimentScale, results: Dict[str, Any]) -> Fig17Result:
    """Average each step's comm/DRAM/compute shares over the algorithms."""
    shares: Dict[str, List[EnergyShare]] = {}
    vanilla_comm: Dict[str, float] = {}
    final_comm: Dict[str, float] = {}
    for system in ("beacon-d", "beacon-s"):
        per_label: Dict[str, List[Tuple[float, float, float]]] = {}
        order: List[str] = []
        first_shares: List[float] = []
        last_shares: List[float] = []
        for algorithm in _ALGORITHMS:
            sweep = results[f"{system}/{algorithm.value}"]
            first_shares.append(sweep.vanilla.comm_energy_fraction)
            last_shares.append(sweep.full.comm_energy_fraction)
            for step in sweep.steps:
                report = step.report
                total = report.total_energy_nj
                entry = (
                    report.energy_comm_nj / total,
                    report.energy_dram_nj / total,
                    report.energy_compute_nj / total,
                )
                key = step.label
                per_label.setdefault(key, []).append(entry)
                if key not in order:
                    order.append(key)
        vanilla_comm[system] = sum(first_shares) / len(first_shares)
        final_comm[system] = sum(last_shares) / len(last_shares)
        shares[system] = [
            EnergyShare(
                label=label,
                comm=sum(e[0] for e in per_label[label]) / len(per_label[label]),
                dram=sum(e[1] for e in per_label[label]) / len(per_label[label]),
                compute=sum(e[2] for e in per_label[label]) / len(per_label[label]),
            )
            for label in order
        ]
    return Fig17Result(shares, vanilla_comm, final_comm)


def present(result: Fig17Result) -> None:
    """Print the paper-style rows for one collected result."""
    print("\nFig. 17 — energy breakdown (communication / DRAM / compute)")
    for system, steps in result.shares.items():
        print(f"  == {system} ==")
        for s in steps:
            print(f"    {s.label:26s} comm {s.comm:6.1%}  dram {s.dram:6.1%}  "
                  f"compute {s.compute:6.2%}")


SPEC = register_scenario(ScenarioSpec(
    name="fig17",
    title="energy breakdown per optimization step",
    description="communication / DRAM / compute energy shares along the "
                "optimization ladder, averaged over FM seeding and k-mer "
                "counting",
    build_jobs=build_jobs,
    collect=collect,
    present=present,
    aliases=("fig17_energy_breakdown", "fig17-energy-breakdown"),
    backends=("beacon-d", "beacon-s"),
    drivers=("fm-seeding", "kmer-counting"),
    sweep_axes=("optimization_step",),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> Fig17Result:
    """Average the per-step breakdown across the swept algorithms."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> Fig17Result:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
