"""Fig. 14 — Hash-index based DNA seeding, step-by-step optimizations.

Paper (averages over the five genomes):

* BEACON-D: vanilla = 309.13x CPU / 2.54x MEDAL; memory access opt 1.81x
  (packing and placement contribute little for this algorithm); full =
  572.17x CPU / 4.70x MEDAL; 98.59% of idealized.
* BEACON-S: vanilla = 302.48x CPU / 2.48x MEDAL; memory access opt 1.50x,
  placement 1.21x; full = 556.66x CPU / 4.57x MEDAL; 98.64% of idealized.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import Algorithm
from repro.experiments.fig12_fm_seeding import SeedingFigureResult, run as _run
from repro.experiments.fig12_fm_seeding import main as _main
from repro.experiments.parallel import ParallelSweepRunner
from repro.experiments.runner import ExperimentScale

ALGORITHM = Algorithm.HASH_SEEDING


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Execute the experiment at ``scale``; returns the result object."""
    return _run(scale, ALGORITHM, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Run the experiment and print the paper-style rows."""
    return _main(scale, ALGORITHM,
                 figure_name="Fig. 14 — Hash-index based DNA seeding",
                 runner=runner)


if __name__ == "__main__":
    main()
