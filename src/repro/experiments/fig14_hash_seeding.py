"""Fig. 14 — Hash-index based DNA seeding, step-by-step optimizations.

Paper (averages over the five genomes):

* BEACON-D: vanilla = 309.13x CPU / 2.54x MEDAL; memory access opt 1.81x
  (packing and placement contribute little for this algorithm); full =
  572.17x CPU / 4.70x MEDAL; 98.59% of idealized.
* BEACON-S: vanilla = 302.48x CPU / 2.48x MEDAL; memory access opt 1.50x,
  placement 1.21x; full = 556.66x CPU / 4.57x MEDAL; 98.64% of idealized.

The campaign shape is Fig. 12's over a different algorithm, so the spec
reuses that module's shared job builder / collector / presenter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import Algorithm
from repro.experiments.fig12_fm_seeding import (
    SeedingFigureResult,
    collect_seeding,
    present_seeding,
    seeding_jobs,
)
from repro.experiments.parallel import ParallelSweepRunner, SweepJob
from repro.experiments.runner import ExperimentScale
from repro.experiments.scenarios import ScenarioSpec, register_scenario

ALGORITHM = Algorithm.HASH_SEEDING


def build_jobs(scale: ExperimentScale) -> List[SweepJob]:
    """This figure's jobs: the seeding campaign over hash-index seeding."""
    return seeding_jobs(scale, ALGORITHM)


def present(result: SeedingFigureResult) -> None:
    """Print the paper-style rows for one collected result."""
    present_seeding(result, "Fig. 14 — Hash-index based DNA seeding")


SPEC = register_scenario(ScenarioSpec(
    name="fig14",
    title="hash-index seeding optimization ladder",
    description="cumulative optimization sweeps of both BEACON variants on "
                "hash-index seeding, vs MEDAL / CPU / idealized twins",
    build_jobs=build_jobs,
    collect=collect_seeding,
    present=present,
    aliases=("fig14_hash_seeding", "fig14-hash-seeding"),
    backends=("beacon-d", "beacon-s", "medal", "cpu"),
    drivers=("hash-seeding",),
    sweep_axes=("dataset", "optimization_step"),
))


def run(scale: ExperimentScale = ExperimentScale.bench(),
        runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Execute the experiment at ``scale``; returns the result object."""
    return SPEC.run(scale, runner=runner)


def main(scale: ExperimentScale = ExperimentScale.bench(),
         runner: Optional[ParallelSweepRunner] = None) -> SeedingFigureResult:
    """Run the experiment and print the paper-style rows."""
    return SPEC.main(scale, runner=runner)


if __name__ == "__main__":
    main()
