"""Minimal FASTA / FASTQ readers and writers used by the examples."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple, Union

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA entry."""

    name: str
    sequence: str


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ entry."""

    name: str
    sequence: str
    quality: str


def read_fasta(path: PathLike) -> List[FastaRecord]:
    """Parse a FASTA file (multi-line sequences supported)."""
    records: List[FastaRecord] = []
    name = None
    chunks: List[str] = []
    with open(path, "r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append(FastaRecord(name, "".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise ValueError(f"{path}: sequence data before first header")
                chunks.append(line.upper())
    if name is not None:
        records.append(FastaRecord(name, "".join(chunks)))
    return records


def write_fasta(path: PathLike, records: Sequence[FastaRecord], width: int = 70) -> None:
    """Write FASTA with ``width``-column wrapping."""
    if width <= 0:
        raise ValueError("width must be positive")
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(f">{record.name}\n")
            seq = record.sequence
            for start in range(0, len(seq), width):
                handle.write(seq[start : start + width] + "\n")


def read_fastq(path: PathLike) -> List[FastqRecord]:
    """Parse a FASTQ file (4-line records)."""
    records: List[FastqRecord] = []
    with open(path, "r", encoding="ascii") as handle:
        lines = [line.rstrip("\n") for line in handle]
    stripped = [line for line in lines if line]
    if len(stripped) % 4 != 0:
        raise ValueError(f"{path}: truncated FASTQ (line count not a multiple of 4)")
    for i in range(0, len(stripped), 4):
        header, sequence, plus, quality = stripped[i : i + 4]
        if not header.startswith("@"):
            raise ValueError(f"{path}: record {i // 4} missing '@' header")
        if not plus.startswith("+"):
            raise ValueError(f"{path}: record {i // 4} missing '+' separator")
        if len(sequence) != len(quality):
            raise ValueError(f"{path}: record {i // 4} sequence/quality length mismatch")
        records.append(FastqRecord(header[1:].split()[0], sequence.upper(), quality))
    return records


def write_fastq(path: PathLike, records: Sequence[FastqRecord]) -> None:
    """Write FASTQ, one 4-line record per entry."""
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            if len(record.sequence) != len(record.quality):
                raise ValueError(f"record {record.name}: sequence/quality length mismatch")
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")


def reads_from_file(path: PathLike) -> Tuple[List[str], str]:
    """Load plain sequences from FASTA or FASTQ, sniffing the format.

    Returns ``(sequences, format)`` where format is ``"fasta"`` or ``"fastq"``.
    """
    with open(path, "r", encoding="ascii") as handle:
        first = handle.readline()
    if first.startswith(">"):
        return [r.sequence for r in read_fasta(path)], "fasta"
    if first.startswith("@"):
        return [r.sequence for r in read_fastq(path)], "fastq"
    raise ValueError(f"{path}: not FASTA or FASTQ")


def iter_fasta(path: PathLike) -> Iterator[FastaRecord]:
    """Streaming variant of :func:`read_fasta` (memory-light for big files)."""
    name = None
    chunks: List[str] = []
    with open(path, "r", encoding="ascii") as handle:
        for raw in handle:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield FastaRecord(name, "".join(chunks))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise ValueError(f"{path}: sequence data before first header")
                chunks.append(line.upper())
    if name is not None:
        yield FastaRecord(name, "".join(chunks))
