"""Counting Bloom filter.

The k-mer counting accelerators (NEST and BEACON's KMC engine) store k-mer
abundance in a counting Bloom filter: an array of small saturating counters
indexed by ``h`` hash functions.  The filter supports merging (NEST's
multi-pass flow merges per-DIMM filters into a global one) and exposes the
counter *addresses* each update touches, which is what the simulator needs.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from repro.genomics.kmer import kmer_hashes


class CountingBloomFilter:
    """Counting Bloom filter with saturating fixed-width counters.

    Parameters
    ----------
    num_counters:
        Number of counter slots (the ``m`` parameter).
    num_hashes:
        Number of hash functions (the ``h`` parameter).
    counter_bits:
        Width of each counter; counters saturate at ``2**counter_bits - 1``.
    """

    def __init__(self, num_counters: int, num_hashes: int = 4, counter_bits: int = 4) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        if not 1 <= counter_bits <= 16:
            raise ValueError("counter_bits must be in 1..16")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self.counter_bits = counter_bits
        self.saturation = (1 << counter_bits) - 1
        self.counters = np.zeros(num_counters, dtype=np.uint16)
        self.insertions = 0

    @classmethod
    def for_expected_items(
        cls,
        expected_items: int,
        false_positive_rate: float = 0.01,
        counter_bits: int = 4,
    ) -> "CountingBloomFilter":
        """Size a filter for ``expected_items`` at a target false-positive rate."""
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        bits = -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
        hashes = max(1, round(bits / expected_items * math.log(2)))
        return cls(max(8, int(bits)), num_hashes=hashes, counter_bits=counter_bits)

    # -- addressing ----------------------------------------------------------

    def slots(self, kmer: str) -> List[int]:
        """Counter indices an insert/query of ``kmer`` touches."""
        return [h % self.num_counters for h in kmer_hashes(kmer, self.num_hashes)]

    # -- operations ----------------------------------------------------------

    def insert(self, kmer: str) -> List[int]:
        """Increment the k-mer's counters (saturating); return touched slots."""
        slots = self.slots(kmer)
        for slot in slots:
            if self.counters[slot] < self.saturation:
                self.counters[slot] += 1
        self.insertions += 1
        return slots

    def count(self, kmer: str) -> int:
        """Estimated abundance: the minimum over the k-mer's counters.

        Never underestimates (no false negatives); may overestimate due to
        hash collisions — the classic counting-Bloom-filter guarantee that
        the property tests pin down.
        """
        return int(min(self.counters[slot] for slot in self.slots(kmer)))

    def contains(self, kmer: str) -> bool:
        """Whether the k-mer has (apparently) been inserted at least once."""
        return self.count(kmer) > 0

    def merge(self, other: "CountingBloomFilter") -> None:
        """Add ``other``'s counters into this filter (saturating).

        Both filters must have identical geometry; this is the NEST merge
        step that produces the global filter from per-DIMM locals.
        """
        if (
            other.num_counters != self.num_counters
            or other.num_hashes != self.num_hashes
            or other.counter_bits != self.counter_bits
        ):
            raise ValueError("cannot merge filters with different geometry")
        merged = self.counters.astype(np.uint32) + other.counters.astype(np.uint32)
        self.counters = np.minimum(merged, self.saturation).astype(np.uint16)
        self.insertions += other.insertions

    def bulk_insert(self, kmers: Iterable[str]) -> None:
        for kmer in kmers:
            self.insert(kmer)

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the counter array in bytes (packed width)."""
        return (self.num_counters * self.counter_bits + 7) // 8

    @property
    def load_factor(self) -> float:
        """Fraction of non-zero counters."""
        return float(np.count_nonzero(self.counters)) / self.num_counters
