"""k-mer counting flows: exact reference, NEST multi-pass, BEACON single-pass.

Three implementations over the same counting-Bloom-filter substrate:

* :func:`exact_counts` — hash-map ground truth used by the tests.
* :class:`MultiPassKmerCounter` — NEST's flow (Section IV-D): every DIMM
  first builds a *local* counting Bloom filter over the whole input (pass 1),
  the locals are merged into a global filter that is replicated to every
  DIMM, then every DIMM re-processes the whole input against its own copy
  (pass 2).  Random accesses stay DIMM-local at the cost of reading the
  input twice.
* :class:`SinglePassKmerCounter` — BEACON-S's flow: one pass updating a
  single global filter distributed across the pool's CXL-DIMMs with atomic
  increments; no local/merge/replicate phases.

Both simulator-facing classes expose the per-k-mer counter slots touched so
the KMC engines can turn them into physical memory requests.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.kmer import iter_kmers


def exact_counts(reads: Iterable[str], k: int) -> Dict[str, int]:
    """Exact canonical k-mer abundances (ground truth for the tests)."""
    counts: Counter = Counter()
    for read in reads:
        for kmer in iter_kmers(read, k):
            counts[kmer] += 1
    return dict(counts)


class SinglePassKmerCounter:
    """One global counting Bloom filter updated in a single pass."""

    def __init__(self, num_counters: int, k: int, num_hashes: int = 4,
                 counter_bits: int = 4) -> None:
        self.k = k
        self.filter = CountingBloomFilter(num_counters, num_hashes, counter_bits)

    def process(self, reads: Iterable[str]) -> None:
        """Count every canonical k-mer of every read."""
        for read in reads:
            for kmer in iter_kmers(read, self.k):
                self.filter.insert(kmer)

    def process_trace(self, reads: Iterable[str]) -> Iterator[Tuple[str, List[int]]]:
        """Single pass, yielding ``(kmer, touched_slots)`` per insertion.

        Each touched slot is one atomic read-modify-write of a sub-byte
        counter — the fine-grained access stream BEACON's Atomic Engines
        (Fig. 7) serve.
        """
        for read in reads:
            for kmer in iter_kmers(read, self.k):
                yield kmer, self.filter.insert(kmer)

    def count(self, kmer: str) -> int:
        return self.filter.count(kmer)


class MultiPassKmerCounter:
    """NEST's local-build / merge / recount flow across ``num_partitions`` DIMMs."""

    def __init__(self, num_counters: int, k: int, num_partitions: int,
                 num_hashes: int = 4, counter_bits: int = 4) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.k = k
        self.num_partitions = num_partitions
        self.locals = [
            CountingBloomFilter(num_counters, num_hashes, counter_bits)
            for _ in range(num_partitions)
        ]
        self.global_filter = CountingBloomFilter(num_counters, num_hashes, counter_bits)
        self.merged = False

    def partition_reads(self, reads: Sequence[str]) -> List[List[str]]:
        """Round-robin split of the input across partitions (DIMMs)."""
        shards: List[List[str]] = [[] for _ in range(self.num_partitions)]
        for i, read in enumerate(reads):
            shards[i % self.num_partitions].append(read)
        return shards

    def pass_one(self, reads: Sequence[str]) -> None:
        """Every partition builds its local filter over its input shard."""
        for partition, shard in enumerate(self.partition_reads(reads)):
            local = self.locals[partition]
            for read in shard:
                for kmer in iter_kmers(read, self.k):
                    local.insert(kmer)

    def merge(self) -> None:
        """Merge the local filters into the (replicated) global filter."""
        for local in self.locals:
            self.global_filter.merge(local)
        self.merged = True

    def pass_two_count(self, kmer: str) -> int:
        """Query the merged global filter (pass 2 reads it locally per DIMM)."""
        if not self.merged:
            raise RuntimeError("merge() must run before pass-two queries")
        return self.global_filter.count(kmer)

    def run(self, reads: Sequence[str]) -> None:
        """Execute the full multi-pass flow."""
        self.pass_one(reads)
        self.merge()

    def count(self, kmer: str) -> int:
        return self.pass_two_count(kmer)

    @property
    def input_passes(self) -> int:
        """The flow reads the entire input twice (pass 1 and pass 2)."""
        return 2

    @property
    def replicated_bytes(self) -> int:
        """Bytes of Bloom filter broadcast to every partition after the merge."""
        return self.global_filter.size_bytes * self.num_partitions
