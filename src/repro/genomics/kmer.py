"""k-mer extraction, canonicalization, and hashing."""

from __future__ import annotations

import re
from typing import Iterator

from repro.genomics.sequence import reverse_complement

#: Multiplier of the splitmix64-style integer mixer used for k-mer hashing.
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


# Base -> quaternary digit; packing then becomes one ``str.translate``
# plus a C-speed ``int(_, 4)`` parse instead of a per-base Python loop.
# Validity is checked up front with a regex scan — ``int`` alone would
# tolerate whitespace, signs, and ``_`` separators.
_BASE_DIGITS = str.maketrans("ACGTacgt", "01230123")
_NON_ACGT = re.compile(r"[^ACGTacgt]")


def kmer_to_int(kmer: str) -> int:
    """Pack a k-mer into an integer, 2 bits per base (A=0..T=3)."""
    bad = _NON_ACGT.search(kmer)
    if bad is not None:
        raise ValueError(f"non-ACGT character {bad.group()!r} in k-mer")
    if not kmer:
        return 0
    return int(kmer.translate(_BASE_DIGITS), 4)


def int_to_kmer(value: int, k: int) -> str:
    """Inverse of :func:`kmer_to_int`."""
    if value < 0 or value >= (1 << (2 * k)):
        raise ValueError(f"value {value} out of range for k={k}")
    out = []
    for shift in range(2 * (k - 1), -1, -2):
        out.append("ACGT"[(value >> shift) & 3])
    return "".join(out)


def canonical_kmer(kmer: str) -> str:
    """Return the lexicographically smaller of a k-mer and its revcomp.

    Canonicalization makes counting strand-independent, matching BFCounter
    and NEST semantics.
    """
    rc = reverse_complement(kmer)
    return kmer if kmer <= rc else rc


def iter_kmers(sequence: str, k: int, canonical: bool = True) -> Iterator[str]:
    """Yield every (optionally canonical) k-mer of ``sequence`` in order."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    for i in range(len(sequence) - k + 1):
        kmer = sequence[i : i + k]
        yield canonical_kmer(kmer) if canonical else kmer


def mix64(value: int) -> int:
    """splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.

    This is the hash the simulated hash-calculation units in the PEs
    implement; using the same function in the functional and trace forms
    keeps both code paths byte-identical in their addressing.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * _MIX_MULT_1) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX_MULT_2) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def kmer_hashes(kmer: str, count: int) -> list:
    """Derive ``count`` independent hash values for a k-mer.

    Uses double hashing (h1 + i*h2) over the splitmix64 mixer, the standard
    technique for Bloom-filter index derivation.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    base = kmer_to_int(canonical_kmer(kmer))
    h1 = mix64(base)
    h2 = mix64(base ^ 0x9E3779B97F4A7C15) | 1  # odd => full-period stride
    return [(h1 + i * h2) & _MASK64 for i in range(count)]
