"""Workload generation: the paper's datasets, scaled for simulation.

The paper evaluates on five NCBI genomes — Pinus taeda (Pt), Picea glauca
(Pg), Sequoia sempervirens (Ss), Ambystoma mexicanum (Am), Neoceratodus
forsteri (Nf) — for the seeding/pre-alignment studies and a human genome at
50x coverage for k-mer counting.  Those are tens-of-gigabase datasets; a
Python cycle-level simulator cannot walk them, so each dataset is replaced
by a deterministic synthetic genome whose *relative* size and base
composition follow the original (conifers are AT-rich and huge, the axolotl
is the largest, etc.), scaled by a common factor.  Relative dataset ordering
is what the per-dataset bars in Figs. 12-16 convey; absolute runtimes are
not comparable anyway (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.genomics.sequence import mutate, random_genome, reverse_complement


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset with its scaled-down geometry."""

    name: str
    label: str
    genome_length: int
    num_reads: int
    read_length: int
    gc_content: float
    seed: int
    coverage_note: str = ""


#: Scaled stand-ins for the paper's evaluation datasets.  Genome lengths are
#: proportional to the real assemblies (Pt 22 Gb, Pg 20 Gb, Ss 27 Gb, Am 32 Gb,
#: Nf 34 Gb) at a 1e-5 scale; read counts give ~1x coverage of the scaled
#: genome so simulations finish in seconds.
SEEDING_DATASETS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("Pt", "Pinus taeda", 220_000, 220, 100, 0.38, seed=101),
    DatasetSpec("Pg", "Picea glauca", 200_000, 200, 100, 0.39, seed=102),
    DatasetSpec("Ss", "Sequoia sempervirens", 270_000, 270, 100, 0.36, seed=103),
    DatasetSpec("Am", "Ambystoma mexicanum", 320_000, 320, 100, 0.43, seed=104),
    DatasetSpec("Nf", "Neoceratodus forsteri", 340_000, 340, 100, 0.42, seed=105),
)

#: Human 50x stand-in for k-mer counting (scaled from 3.1 Gb).
KMER_DATASET = DatasetSpec(
    "Hs50x", "Homo sapiens 50x", 120_000, 600, 100, 0.41, seed=201,
    coverage_note="50x coverage in the paper; 0.5x at simulation scale",
)


@dataclass
class SeedingWorkload:
    """A reference genome plus reads sampled from it."""

    spec: DatasetSpec
    reference: str
    reads: List[str]
    read_origins: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name


def make_seeding_workload(
    spec: DatasetSpec,
    error_rate: float = 0.01,
    scale: float = 1.0,
    read_scale: float = 1.0,
) -> SeedingWorkload:
    """Build the reference + read set for one dataset.

    Reads are sampled uniformly from the reference, half of them reverse-
    complemented, with substitution errors at ``error_rate`` — the standard
    short-read model.  ``scale`` shrinks/grows both the genome and the read
    count together (used by quick tests); ``read_scale`` additionally
    multiplies the read count (coverage) — the experiments raise it so the
    accelerators run throughput-bound, as with the paper's full datasets,
    rather than bound by one read's dependent-access chain.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if read_scale <= 0:
        raise ValueError("read_scale must be positive")
    genome_length = max(spec.read_length * 4, int(spec.genome_length * scale))
    num_reads = max(4, int(spec.num_reads * scale * read_scale))
    reference = random_genome(genome_length, seed=spec.seed, gc_content=spec.gc_content)
    rng = np.random.default_rng(spec.seed + 1)
    reads: List[str] = []
    origins: List[int] = []
    for i in range(num_reads):
        start = int(rng.integers(0, genome_length - spec.read_length + 1))
        fragment = reference[start : start + spec.read_length]
        fragment = mutate(fragment, error_rate, seed=spec.seed * 7919 + i)
        if rng.random() < 0.5:
            fragment = reverse_complement(fragment)
        reads.append(fragment)
        origins.append(start)
    return SeedingWorkload(spec=spec, reference=reference, reads=reads, read_origins=origins)


def make_kmer_workload(
    spec: DatasetSpec = KMER_DATASET,
    error_rate: float = 0.005,
    scale: float = 1.0,
    read_scale: float = 1.0,
) -> SeedingWorkload:
    """Read set for k-mer counting (the reference is only used for sampling)."""
    return make_seeding_workload(spec, error_rate=error_rate, scale=scale,
                                 read_scale=read_scale)


@dataclass(frozen=True)
class PrealignPair:
    """One (read, candidate reference window) pair for pre-alignment."""

    read: str
    window: str
    window_start: int
    is_true_site: bool


def make_prealign_pairs(
    workload: SeedingWorkload,
    max_edits: int,
    candidates_per_read: int = 4,
) -> List[PrealignPair]:
    """Candidate pairs: the true origin window plus random decoy windows.

    This mirrors what a seeding stage hands the pre-alignment filter — one
    correct location among several spurious ones (Fig. 2's pipeline).
    Reverse-complemented reads are paired against the reverse-complemented
    window so the true site remains a near-match.
    """
    if candidates_per_read < 1:
        raise ValueError("candidates_per_read must be >= 1")
    rng = np.random.default_rng(workload.spec.seed + 2)
    reference = workload.reference
    read_length = workload.spec.read_length
    window_length = read_length + 2 * max_edits
    pairs: List[PrealignPair] = []
    for read, origin in zip(workload.reads, workload.read_origins):
        true_start, true_window = _window_at(reference, origin - max_edits, window_length)
        # Align the vote to the read's position inside the padded window.
        aligned = true_window[origin - true_start :]
        if _matches_forward(read, aligned) < _matches_forward(
            reverse_complement(read), aligned
        ):
            read_fwd = reverse_complement(read)
        else:
            read_fwd = read
        pairs.append(
            PrealignPair(read=read_fwd, window=true_window,
                         window_start=true_start, is_true_site=True)
        )
        for _ in range(candidates_per_read - 1):
            start = int(rng.integers(0, len(reference) - window_length + 1))
            decoy_start, decoy_window = _window_at(reference, start, window_length)
            pairs.append(
                PrealignPair(
                    read=read_fwd,
                    window=decoy_window,
                    window_start=decoy_start,
                    is_true_site=False,
                )
            )
    return pairs


def _window_at(reference: str, start: int, length: int) -> Tuple[int, str]:
    """Clamped reference slice (windows at the genome edges are shifted in)."""
    start = max(0, min(start, len(reference) - length))
    return start, reference[start : start + length]


def _matches_forward(read: str, window: str) -> int:
    """Base matches of ``read`` against the head of ``window`` (orientation vote)."""
    return sum(1 for a, b in zip(read, window) if a == b)


def dataset_by_name(name: str) -> DatasetSpec:
    """Look up a dataset spec by its short name (``Pt`` ... ``Hs50x``)."""
    registry: Dict[str, DatasetSpec] = {d.name: d for d in SEEDING_DATASETS}
    registry[KMER_DATASET.name] = KMER_DATASET
    try:
        return registry[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(registry)}"
        ) from None
