"""DNA sequence primitives: 2-bit encoding, complements, random genomes."""

from __future__ import annotations

import re
from typing import Union

import numpy as np

#: Canonical base ordering; the integer code of a base is its index here.
BASES = "ACGT"

_BASE_TO_CODE = {base: code for code, base in enumerate(BASES)}
_COMPLEMENT = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}

# Lookup table from ASCII byte -> 2-bit code (255 marks invalid characters).
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _base, _code in _BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_base)] = _code
    _ASCII_TO_CODE[ord(_base.lower())] = _code


def encode(sequence: str) -> np.ndarray:
    """Encode a DNA string to a ``uint8`` array of 2-bit codes (A=0..T=3).

    Ambiguous bases (``N`` etc.) are not representable in the 2-bit alphabet
    the accelerators operate on; callers should sanitize reads first (the
    workload generators in :mod:`repro.genomics.workloads` never emit them).
    """
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    codes = _ASCII_TO_CODE[raw]
    if (codes == 255).any():
        bad = chr(int(raw[np.argmax(codes == 255)]))
        raise ValueError(f"non-ACGT character {bad!r} in sequence")
    return codes


def decode(codes: Union[np.ndarray, list]) -> str:
    """Inverse of :func:`encode`."""
    arr = np.asarray(codes, dtype=np.uint8)
    if arr.size and int(arr.max()) > 3:
        raise ValueError("codes must be in 0..3")
    lut = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)
    return lut[arr].tobytes().decode("ascii")


def complement(base: str) -> str:
    """Watson-Crick complement of a single base."""
    try:
        return _COMPLEMENT[base.upper()]
    except KeyError:
        raise ValueError(f"unknown base {base!r}") from None


# Complement-and-uppercase translation table (lowercase input historically
# complements to uppercase output), plus a validity scanner: ``str.translate``
# silently passes unknown characters through, so invalid bases are detected
# with one C-speed regex scan instead of a per-base dict lookup.
_RC_TABLE = str.maketrans("ACGTNacgtn", "TGCANTGCAN")
_INVALID_BASE = re.compile(r"[^ACGTNacgtn]")


def reverse_complement(sequence: str) -> str:
    """Reverse complement of a DNA string."""
    bad = _INVALID_BASE.search(sequence)
    if bad is not None:
        raise ValueError(f"unknown base {bad.group()!r}")
    return sequence.translate(_RC_TABLE)[::-1]


def random_genome(
    length: int,
    seed: int = 0,
    gc_content: float = 0.41,
) -> str:
    """Generate a random genome with the given GC content.

    ``gc_content`` defaults to 0.41, the approximate human value; the conifer
    datasets in the paper are AT-rich so their workload entries override it.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be in [0, 1]")
    rng = np.random.default_rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(4, size=length, p=[at, gc, gc, at]).astype(np.uint8)
    return decode(codes)


def mutate(
    sequence: str,
    rate: float,
    seed: int = 0,
) -> str:
    """Return ``sequence`` with substitutions applied at ``rate`` per base.

    Used by read samplers to emulate sequencing error / variant divergence.
    Each selected position is replaced with a *different* uniformly random
    base so the realized substitution rate equals ``rate``.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    if rate == 0.0 or not sequence:
        return sequence
    rng = np.random.default_rng(seed)
    codes = encode(sequence)
    flips = rng.random(len(codes)) < rate
    # Adding 1..3 modulo 4 always lands on a different base.
    offsets = rng.integers(1, 4, size=len(codes)).astype(np.uint8)
    codes = np.where(flips, (codes + offsets) % 4, codes)
    return decode(codes)
