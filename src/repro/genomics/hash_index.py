"""Hash-index based DNA seeding (SMALT-style).

The reference genome is indexed by sampling k-mers every ``stride`` bases
into a bucketed hash table.  Each bucket stores the list of reference
positions of its k-mers.  A seeding query hashes a read k-mer, reads the
bucket header (offset + length into the location store), then streams the
candidate locations.

Memory layout (what the simulator addresses):

* **bucket directory** — ``num_buckets`` records of 8 bytes
  (4 B offset + 4 B count) starting at offset 0;
* **location store** — 4-byte reference positions, grouped per bucket,
  starting right after the directory.

Grouping a bucket's locations contiguously is exactly the "multiple matching
locations for a seed stored continuously within the same DRAM row" layout
that the paper's data-aware address mapping exploits (Section IV-C); the
naive mapping in the ablations scatters those rows across DIMMs instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.genomics.kmer import canonical_kmer, kmer_to_int, mix64

#: Bytes per bucket-directory record (offset + count).
BUCKET_HEADER_BYTES = 8
#: Bytes per stored reference location.
LOCATION_BYTES = 4


@dataclass(frozen=True)
class HashQueryAccess:
    """Memory accesses one seed lookup performs.

    ``header_addr`` is the 8-byte directory read; ``location_addrs`` are the
    4-byte location reads (contiguous within the bucket's slice).
    """

    kmer: str
    bucket: int
    header_addr: int
    location_addrs: Tuple[int, ...]
    locations: Tuple[int, ...]


class HashIndex:
    """Bucketed k-mer hash index over a reference genome."""

    def __init__(
        self,
        reference: str,
        k: int = 13,
        stride: int = 1,
        num_buckets: int = 0,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if stride <= 0:
            raise ValueError("stride must be positive")
        if len(reference) < k:
            raise ValueError("reference shorter than k")
        self.reference = reference
        self.k = k
        self.stride = stride
        sampled = range(0, len(reference) - k + 1, stride)
        if num_buckets <= 0:
            num_buckets = max(64, len(range(0, len(reference) - k + 1, stride)))
        self.num_buckets = num_buckets

        buckets: Dict[int, List[int]] = {}
        for pos in sampled:
            kmer = reference[pos : pos + k]
            bucket = self._bucket_of(kmer)
            buckets.setdefault(bucket, []).append(pos)

        # Flatten into the directory + location-store layout.
        self._bucket_offset = [0] * num_buckets
        self._bucket_count = [0] * num_buckets
        self._locations: List[int] = []
        for bucket in sorted(buckets):
            self._bucket_offset[bucket] = len(self._locations)
            self._bucket_count[bucket] = len(buckets[bucket])
            self._locations.extend(sorted(buckets[bucket]))
        self.directory_bytes = num_buckets * BUCKET_HEADER_BYTES
        self.locations_bytes = len(self._locations) * LOCATION_BYTES

    # -- layout ---------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total footprint: directory followed by the location store."""
        return self.directory_bytes + self.locations_bytes

    def header_address(self, bucket: int) -> int:
        """Byte offset of a bucket's directory record."""
        if not 0 <= bucket < self.num_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        return bucket * BUCKET_HEADER_BYTES

    def location_address(self, slot: int) -> int:
        """Byte offset of location-store slot ``slot``."""
        if not 0 <= slot < len(self._locations):
            raise ValueError(f"slot {slot} out of range")
        return self.directory_bytes + slot * LOCATION_BYTES

    def _bucket_of(self, kmer: str) -> int:
        return mix64(kmer_to_int(canonical_kmer(kmer))) % self.num_buckets

    # -- queries ---------------------------------------------------------------

    def lookup(self, kmer: str) -> List[int]:
        """Reference positions whose sampled k-mer hashes to this k-mer's bucket.

        Because the table is bucketed (no stored keys, as in SMALT's compact
        table), collisions can add spurious candidates; downstream
        pre-alignment/alignment filters them, which is why the genome
        pipeline (Fig. 2) chains seeding into pre-alignment.
        """
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got length {len(kmer)}")
        bucket = self._bucket_of(kmer)
        offset = self._bucket_offset[bucket]
        count = self._bucket_count[bucket]
        return list(self._locations[offset : offset + count])

    def lookup_trace(self, kmer: str) -> HashQueryAccess:
        """The memory-access record for one seed lookup."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got length {len(kmer)}")
        bucket = self._bucket_of(kmer)
        offset = self._bucket_offset[bucket]
        count = self._bucket_count[bucket]
        return HashQueryAccess(
            kmer=kmer,
            bucket=bucket,
            header_addr=self.header_address(bucket),
            location_addrs=tuple(
                self.location_address(offset + i) for i in range(count)
            ),
            locations=tuple(self._locations[offset : offset + count]),
        )

    def seed_read(self, read: str, seed_stride: int = 0) -> Iterator[HashQueryAccess]:
        """Seed a read: look up every ``seed_stride``-spaced k-mer.

        ``seed_stride`` defaults to ``k`` (non-overlapping seeds), the usual
        seeding density for hash-based mappers.
        """
        if seed_stride <= 0:
            seed_stride = self.k
        for pos in range(0, len(read) - self.k + 1, seed_stride):
            yield self.lookup_trace(read[pos : pos + self.k])
