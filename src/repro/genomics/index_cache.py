"""Cross-run index cache: amortize index construction across sweep points.

The experiment matrix replays the *same* workload against many system
configurations: one step sweep builds five-plus systems over one dataset,
its idealized twin re-runs the full configuration, and the CPU baseline
walks the same indexes functionally.  Every one of those runs used to
rebuild the FM-index (a suffix-array construction, the single most
expensive piece of Python in a sweep point) and the hash index from the
identical reference string.

:class:`IndexCache` memoizes those *immutable* structures behind
content-derived keys, so a matrix point pays for construction once and
every later run in the same process — later optimization steps, the
idealized twin, the CPU baseline, the next figure sharing the dataset —
gets the built index back instantly.  Worker processes of a
:class:`~repro.experiments.parallel.ParallelSweepRunner` pool each keep
their own cache, which amortizes across the sweep jobs that pool worker
executes.

Correctness contract (what keeps results bit-identical):

* Only *read-only* structures are cached: :class:`~repro.genomics.
  fm_index.FMIndex` and :class:`~repro.genomics.hash_index.HashIndex`
  never change after construction, and the cached FM hot-block profile is
  returned as a non-writeable array.  Mutable structures (counting Bloom
  filters, whose counters the simulation updates) are **never** cached —
  every run gets a fresh one via :func:`fresh_bloom_filter`.
* Keys are content digests (reference text, index parameters), never
  object identities, so a hit is definitionally the same structure a
  rebuild would produce.
* ``REPRO_DISABLE_INDEX_CACHE=1`` bypasses the cache entirely (reads and
  writes); the perf harness uses it to prove cached and uncached runs
  produce identical fingerprints.

The cache is bounded (:data:`DEFAULT_MAX_ENTRIES`, LRU eviction in
deterministic insertion/recency order) so long campaigns cannot grow it
without limit.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.fm_index import FMIndex
from repro.genomics.hash_index import HashIndex

#: Kill switch, checked on every lookup (so a bench reference run can flip
#: it after import): ``1`` / any non-empty value disables hits and stores.
DISABLE_ENV = "REPRO_DISABLE_INDEX_CACHE"

#: Default entry bound.  An entry is one built index (or hot profile); the
#: evaluation needs at most a handful per dataset x parameter combination.
DEFAULT_MAX_ENTRIES = 64

Key = Tuple[Any, ...]


def content_key(text: str) -> str:
    """Stable digest of a reference/read payload (cache key component)."""
    return hashlib.sha256(text.encode("ascii")).hexdigest()


def reads_key(reads: Sequence[str]) -> str:
    """Stable digest of an ordered read collection."""
    digest = hashlib.sha256()
    for read in reads:
        digest.update(read.encode("ascii"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters for one cache; ``build_s`` is wall time spent on misses."""

    hits: int = 0
    misses: int = 0
    build_s: float = 0.0
    evictions: int = 0
    bypasses: int = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "build_s": self.build_s,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
        }


class IndexCache:
    """Process-local memoization of immutable genomics index structures."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: Dict[Key, Any] = {}
        self.stats = CacheStats()

    # -- mechanics --------------------------------------------------------------

    @staticmethod
    def enabled() -> bool:
        return not os.environ.get(DISABLE_ENV, "").strip()

    def memo(self, key: Key, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building (and storing) on miss.

        With the cache disabled the build runs unconditionally and nothing
        is stored — exactly the pre-cache semantics.
        """
        if not self.enabled():
            self.stats.bypasses += 1
            return build()
        if key in self._entries:
            self.stats.hits += 1
            # LRU refresh: re-insert so eviction order tracks recency.
            value = self._entries.pop(key)
            self._entries[key] = value
            return value
        self.stats.misses += 1
        # Wall-clock here is cache *bookkeeping* for the bench notes; it
        # never reaches simulated state.
        started = time.perf_counter()  # repro: allow[no-wall-clock] -- cache build-time accounting is observational; the cached value is deterministic and simulated results never see the clock
        value = build()
        self.stats.build_s += time.perf_counter() - started  # repro: allow[no-wall-clock] -- cache build-time accounting is observational; the cached value is deterministic and simulated results never see the clock
        if len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.evictions += 1
        self._entries[key] = value
        return value

    def clear(self) -> None:
        """Drop every entry (stats are kept; use ``reset_stats`` for those)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # -- the cached structures ----------------------------------------------------

    def fm_index(self, reference: str) -> FMIndex:
        """The FM-index of ``reference`` (built once per distinct text)."""
        return self.memo(
            ("fm", content_key(reference)), lambda: FMIndex(reference)
        )

    def hash_index(self, reference: str, k: int, stride: int,
                   num_buckets: int) -> HashIndex:
        """The bucketed hash index for one parameterization of a reference."""
        return self.memo(
            ("hash", content_key(reference), k, stride, num_buckets),
            lambda: HashIndex(reference, k=k, stride=stride,
                              num_buckets=num_buckets),
        )

    def fm_hot_profile(
        self,
        fm: FMIndex,
        sample: Sequence[str],
        build: Callable[[], np.ndarray],
    ) -> np.ndarray:
        """Access-frequency profile of ``sample`` against ``fm``.

        The profile replays real backward searches, so re-deriving it for
        every placement-enabled step is pure waste.  The cached array is
        marked non-writeable: consumers (the placement planner) only rank
        it, and an accidental in-place mutation would silently corrupt
        later sweep points.
        """
        key = ("fm-hot", content_key(fm.text), reads_key(sample))

        def build_frozen() -> np.ndarray:
            counts = np.asarray(build())
            counts.setflags(write=False)
            return counts

        return self.memo(key, build_frozen)


def fresh_bloom_filter(num_counters: int, num_hashes: int = 4,
                       counter_bits: int = 4) -> CountingBloomFilter:
    """A new counting Bloom filter — deliberately *uncached*.

    Bloom filters are the one index the simulation mutates (every insert
    bumps counters), so sharing an instance across runs would leak state
    between sweep points.  Construction is a single zeroed array, so there
    is nothing to amortize; this constructor exists so the drivers route
    every index acquisition through one module with one stated policy.
    """
    return CountingBloomFilter(num_counters, num_hashes=num_hashes,
                               counter_bits=counter_bits)


#: The process-wide cache instance the drivers and baselines share.
GLOBAL_CACHE = IndexCache()


def get_cache() -> IndexCache:
    """The shared per-process cache (workers each get their own copy)."""
    return GLOBAL_CACHE


def cache_stats() -> Dict[str, Any]:
    """Snapshot of the shared cache's counters (for bench notes / tests)."""
    return GLOBAL_CACHE.stats.snapshot()


def publish_cache_metrics(delta: Optional[Dict[str, Any]] = None) -> None:
    """Fold cache counters into the shared fleet-telemetry registry.

    ``delta`` is a stats-delta dict (the before/after difference one sweep
    job produced); without it the shared cache's *absolute* counters are
    published, which is only correct once per process.  The sweep runner
    calls this per job with the job's delta, so counts sum correctly when
    pool workers ship their registry deltas back to the parent.  Imported
    lazily — telemetry is an optional observer of this module, not a
    dependency.
    """
    from repro.obs.telemetry.registry import get_registry

    rows = delta if delta is not None else cache_stats()
    registry = get_registry()
    events = registry.counter(
        "repro_index_cache_events_total",
        "index-cache activity by kind", labels=("kind",),
    )
    build = registry.counter(
        "repro_index_cache_build_seconds_total",
        "wall seconds spent building indexes on cache misses",
    )
    for kind in ("hits", "misses", "evictions", "bypasses"):
        value = rows.get(kind, 0)
        if value:
            events.labels(kind=kind).inc(value)
    build_s = rows.get("build_s", 0.0)
    if build_s:
        build.inc(build_s)
