"""Functional genomics substrate.

Self-contained implementations of the data structures and algorithms whose
acceleration the paper evaluates:

* FM-index based DNA seeding (BWA-MEM style backward search) —
  :mod:`repro.genomics.fm_index`
* Hash-index based DNA seeding (SMALT style) —
  :mod:`repro.genomics.hash_index`
* k-mer counting with counting Bloom filters (BFCounter/NEST style) —
  :mod:`repro.genomics.kmer_counting`, :mod:`repro.genomics.bloom`
* DNA pre-alignment filtering (Shouji style) —
  :mod:`repro.genomics.prealign`

Each algorithm is implemented twice over the same code path: a pure
functional form (used for correctness tests) and a *trace* form that yields
the memory-access stream the simulated processing engines execute.
"""

from repro.genomics.sequence import (
    BASES,
    complement,
    decode,
    encode,
    random_genome,
    reverse_complement,
)
from repro.genomics.kmer import canonical_kmer, iter_kmers, kmer_to_int
from repro.genomics.bloom import CountingBloomFilter
from repro.genomics.fm_index import FMIndex
from repro.genomics.hash_index import HashIndex
from repro.genomics.prealign import ShoujiFilter

__all__ = [
    "BASES",
    "CountingBloomFilter",
    "FMIndex",
    "HashIndex",
    "ShoujiFilter",
    "canonical_kmer",
    "complement",
    "decode",
    "encode",
    "iter_kmers",
    "kmer_to_int",
    "random_genome",
    "reverse_complement",
]
