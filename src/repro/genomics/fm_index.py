"""FM-index: BWT, sampled occurrence checkpoints, backward search.

The index layout mirrors the flattened structure MEDAL/BEACON walk in DRAM:
the BWT is split into blocks of :data:`FMIndex.BASES_PER_BLOCK` symbols, and
each block is stored as one 32-byte record containing

* four 4-byte cumulative symbol counts (``occ`` up to the block start), and
* the block's BWT symbols packed 2 bits each (16 bytes = 64 symbols).

One backward-search step therefore performs exactly two 32-byte fine-grained
memory reads (``occ`` at ``top`` and at ``bot``), which is the access pattern
Section IV-D and MEDAL describe.  :meth:`FMIndex.search_trace` exposes that
stream of block indices so the simulated FM-index engines execute the real
algorithm on real addresses.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.genomics.sequence import encode

#: Sentinel symbol code (lexicographically smallest, appended to the text).
SENTINEL = 4


def build_suffix_array(codes: np.ndarray) -> np.ndarray:
    """Suffix array by prefix doubling (O(n log^2 n), numpy-vectorized).

    ``codes`` is the text *without* sentinel; the returned array orders the
    ``n + 1`` suffixes of ``text + $`` with the sentinel smallest, so
    ``sa[0] == n`` always.
    """
    n = len(codes) + 1
    # Shift codes up by one so the sentinel can take rank 0.
    rank = np.zeros(n, dtype=np.int64)
    rank[:-1] = codes.astype(np.int64) + 1
    k = 1
    tmp = np.empty(n, dtype=np.int64)
    while k < n:
        second = np.full(n, -1, dtype=np.int64)
        second[:-k] = rank[k:]
        order = np.lexsort((second, rank))
        tmp[order[0]] = 0
        ordered_rank = rank[order]
        ordered_second = second[order]
        changed = (ordered_rank[1:] != ordered_rank[:-1]) | (
            ordered_second[1:] != ordered_second[:-1]
        )
        tmp[order[1:]] = np.cumsum(changed)
        rank[:] = tmp
        if rank[order[-1]] == n - 1:
            return order.astype(np.int64)
        k *= 2
    return np.argsort(rank, kind="stable").astype(np.int64)


class FMStepAccess(NamedTuple):
    """One backward-search step's memory footprint.

    ``blocks`` holds the (deduplicated, ordered) index-block numbers read in
    this step; each corresponds to one 32-byte fine-grained access.  A
    NamedTuple: one is constructed per backward-search step across every
    seeding task, where frozen-dataclass construction cost is measurable.
    """

    symbol: int
    blocks: Tuple[int, ...]
    interval: Tuple[int, int]


class FMIndex:
    """FM-index over a DNA text with a block-checkpointed occ structure."""

    #: BWT symbols per checkpoint block.
    BASES_PER_BLOCK = 64
    #: Bytes per block record: 4 counts x 4 B + 64 symbols x 2 bits.
    BLOCK_BYTES = 32

    def __init__(self, text: str) -> None:
        if not text:
            raise ValueError("cannot index an empty text")
        self.text = text
        codes = encode(text)
        self.length = len(codes)
        self.suffix_array = build_suffix_array(codes)
        n = self.length
        # BWT over text + sentinel: bwt[i] = (text + $)[sa[i] - 1], where the
        # row whose suffix starts at position 0 wraps around to the sentinel.
        sa = self.suffix_array
        bwt = np.where(sa == 0, SENTINEL, codes[sa - 1])
        self.bwt = bwt.astype(np.uint8)
        self.num_rows = n + 1
        # C[c]: number of symbols strictly smaller than c in text + $.
        counts = np.bincount(codes, minlength=4)
        self.C = np.zeros(5, dtype=np.int64)
        self.C[0] = 1  # the sentinel
        for c in range(1, 5):
            self.C[c] = self.C[c - 1] + counts[c - 1]
        # Checkpoints: occ counts of each base at every block boundary.
        self.num_blocks = (self.num_rows + self.BASES_PER_BLOCK - 1) // self.BASES_PER_BLOCK
        is_base = self.bwt < 4
        one_hot = np.zeros((self.num_rows, 4), dtype=np.int64)
        one_hot[np.arange(self.num_rows)[is_base], self.bwt[is_base]] = 1
        cumulative = np.vstack([np.zeros((1, 4), dtype=np.int64), np.cumsum(one_hot, axis=0)])
        boundaries = np.arange(self.num_blocks) * self.BASES_PER_BLOCK
        self.checkpoints = cumulative[boundaries]
        # Rank-query fast paths: the BWT as bytes (``bytes.count`` scans a
        # block tail at C speed) and the checkpoint/C tables as plain int
        # tuples — extracting numpy scalars per occ() call dominated the
        # seeding drivers' compute profile.
        self._bwt_bytes = self.bwt.tobytes()
        self._cp_rows = [tuple(int(v) for v in row) for row in self.checkpoints]
        self._c_ints = tuple(int(v) for v in self.C)

    # -- index geometry ------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total byte footprint of the flattened occ/BWT block array."""
        return self.num_blocks * self.BLOCK_BYTES

    def block_of(self, row: int) -> int:
        """Index block a rank query at ``row`` reads."""
        if not 0 <= row <= self.num_rows:
            raise ValueError(f"row {row} out of range 0..{self.num_rows}")
        return min(row // self.BASES_PER_BLOCK, self.num_blocks - 1)

    def block_address(self, block: int) -> int:
        """Byte offset of ``block`` within the flattened index."""
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        return block * self.BLOCK_BYTES

    # -- rank / search ---------------------------------------------------------

    def occ(self, symbol: int, row: int) -> int:
        """Occurrences of ``symbol`` in ``bwt[0:row]``."""
        if not 0 <= symbol < 4:
            raise ValueError(f"symbol must be 0..3, got {symbol}")
        if not 0 <= row <= self.num_rows:
            raise ValueError(f"row {row} out of range")
        block = row // self.BASES_PER_BLOCK
        if block >= self.num_blocks:
            block = self.num_blocks - 1
        base = self._cp_rows[block][symbol]
        start = block * self.BASES_PER_BLOCK
        if row > start:
            base += self._bwt_bytes.count(symbol, start, row)
        return base

    def _step(self, symbol: int, top: int, bot: int) -> Tuple[int, int]:
        c = self._c_ints[symbol]
        return c + self.occ(symbol, top), c + self.occ(symbol, bot)

    def search(self, pattern: str) -> Tuple[int, int]:
        """Backward search; returns the suffix-array interval ``[top, bot)``.

        An empty interval (``top >= bot``) means the pattern does not occur.
        """
        if not pattern:
            raise ValueError("cannot search for an empty pattern")
        codes = encode(pattern)[::-1].tolist()
        top, bot = 0, self.num_rows
        for symbol in codes:
            top, bot = self._step(symbol, top, bot)
            if top >= bot:
                return top, top
        return top, bot

    def count(self, pattern: str) -> int:
        """Number of occurrences of ``pattern`` in the text."""
        top, bot = self.search(pattern)
        return max(0, bot - top)

    def locate(self, pattern: str) -> List[int]:
        """Sorted text positions where ``pattern`` occurs."""
        top, bot = self.search(pattern)
        return sorted(int(p) for p in self.suffix_array[top:bot])

    # -- trace form ------------------------------------------------------------

    def search_trace(self, pattern: str) -> Iterator[FMStepAccess]:
        """Backward search that yields each step's memory accesses.

        Every step reads the occ blocks for ``top`` and ``bot`` (one 32 B
        access each; deduplicated when both ranks fall in the same block,
        exactly what the hardware's request coalescing would do).  The
        iteration stops early when the interval empties, as the engine does.
        """
        if not pattern:
            raise ValueError("cannot search for an empty pattern")
        codes = encode(pattern)[::-1].tolist()
        top, bot = 0, self.num_rows
        # ``block_of`` inlined (rows here are interval bounds, always in
        # range): this loop runs once per search step of every seeding task.
        per_block = self.BASES_PER_BLOCK
        last_block = self.num_blocks - 1
        for symbol in codes:
            b_top = top // per_block
            if b_top > last_block:
                b_top = last_block
            b_bot = bot // per_block
            if b_bot > last_block:
                b_bot = last_block
            blocks = (b_top,) if b_top == b_bot else (b_top, b_bot)
            top, bot = self._step(symbol, top, bot)
            yield FMStepAccess(symbol=symbol, blocks=blocks, interval=(top, bot))
            if top >= bot:
                return

    def seed(self, read: str, min_seed_length: int) -> Optional[Tuple[int, int, int]]:
        """Longest exact-match suffix seed of ``read``.

        Walks backward from the end of the read until the interval empties;
        returns ``(seed_length, top, bot)`` when at least ``min_seed_length``
        symbols matched, else ``None``.  This is the kernel MEDAL/BEACON's
        FM-index engines execute per read.
        """
        if min_seed_length <= 0:
            raise ValueError("min_seed_length must be positive")
        codes = encode(read)[::-1].tolist()
        top, bot = 0, self.num_rows
        matched = 0
        best: Optional[Tuple[int, int, int]] = None
        for symbol in codes:
            new_top, new_bot = self._step(symbol, top, bot)
            if new_top >= new_bot:
                break
            top, bot = new_top, new_bot
            matched += 1
            if matched >= min_seed_length:
                best = (matched, top, bot)
        return best
