"""Shouji-style DNA pre-alignment filter.

Pre-alignment filters sit between seeding and full alignment (Fig. 2): given
a read and a candidate reference location, they cheaply decide whether the
pair can possibly align within an edit-distance threshold ``E``, rejecting
hopeless candidates before the expensive dynamic-programming alignment.

This module implements the sliding-window common-subsequence heuristic of
Shouji (Alser et al., Bioinformatics 2019): build ``2E + 1`` diagonal
match/mismatch bitvectors of the read against the reference window, slide a
4-column window and keep, per column, the best (longest-match) window choice;
count the remaining mismatched columns and reject when they exceed ``E``.

The filter is *conservative by construction*: a pair within edit distance
``E`` is never rejected (no false negatives), while some bad pairs may leak
through (false positives) — the property tests pin both behaviours down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class PrealignResult:
    """Outcome of one filter invocation."""

    accepted: bool
    estimated_edits: int
    threshold: int


def _diagonal_bitvectors(read: str, window: str, max_edits: int) -> List[List[int]]:
    """Match (0) / mismatch (1) vectors for diagonals -E..+E.

    Diagonal ``d`` compares ``read[i]`` with ``window[i + d]``; positions
    falling outside the window count as mismatches.
    """
    length = len(read)
    vectors = []
    for diag in range(-max_edits, max_edits + 1):
        vec = []
        for i in range(length):
            j = i + diag
            if 0 <= j < len(window) and read[i] == window[j]:
                vec.append(0)
            else:
                vec.append(1)
        vectors.append(vec)
    return vectors


class ShoujiFilter:
    """Sliding-window pre-alignment filter.

    Parameters
    ----------
    max_edits:
        Edit-distance threshold ``E``.  Pairs within ``E`` edits always pass.
    window_size:
        Sliding-window width; Shouji uses 4.
    """

    def __init__(self, max_edits: int, window_size: int = 4) -> None:
        if max_edits < 0:
            raise ValueError("max_edits must be non-negative")
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.max_edits = max_edits
        self.window_size = window_size

    def filter(self, read: str, reference_window: str) -> PrealignResult:
        """Decide whether ``read`` may align to ``reference_window``.

        The reference window should be the candidate location's slice of the
        reference, at least ``len(read)`` bases long (pad with flanking
        reference bases for indel headroom; the workload generator extracts
        ``len(read) + 2 * max_edits`` windows).
        """
        if not read:
            raise ValueError("read must be non-empty")
        if self.max_edits == 0:
            # Degenerate case: exact match required.
            exact = reference_window[: len(read)] == read
            return PrealignResult(accepted=exact, estimated_edits=0 if exact else 1,
                                  threshold=0)
        # Vectorized equivalent of :func:`_diagonal_bitvectors` + the
        # per-window best-diagonal selection (the pure-Python form is kept
        # above as the readable reference).  Rows are diagonals -E..+E,
        # columns are read positions; out-of-window positions hit the zero
        # sentinel (no ASCII base is 0) and therefore mismatch.
        length = len(read)
        max_edits = self.max_edits
        span = 2 * max_edits + 1
        read_codes = np.frombuffer(read.encode("ascii"), dtype=np.uint8)
        win_codes = np.frombuffer(
            reference_window.encode("ascii"), dtype=np.uint8
        )
        padded = np.zeros(length + span - 1, dtype=np.uint8)
        visible = min(len(win_codes), length + max_edits)
        padded[max_edits : max_edits + visible] = win_codes[:visible]
        index = np.arange(span)[:, None] + np.arange(length)[None, :]
        mismatch = (padded[index] != read_codes[None, :]).astype(np.uint8)
        # Shouji grid: choose, per sliding window, the diagonal segment with
        # the most matches; OR of chosen segments approximates the alignment.
        step = self.window_size
        chunks = -(-length // step)
        pad = chunks * step - length
        if pad:
            # Zero padding counts as a match on every diagonal equally, so
            # it changes neither the per-window argmin nor the total.
            mismatch = np.concatenate(
                [mismatch, np.zeros((span, pad), dtype=np.uint8)], axis=1
            )
        windows = mismatch.reshape(span, chunks, step)
        # First index of the minimal mismatch count == the scalar loop's
        # "first diagonal with strictly more matches" tie-break.
        best = windows.sum(axis=2, dtype=np.int64).argmin(axis=0)
        chosen = windows[best, np.arange(chunks), :]
        estimated = int(chosen.sum(dtype=np.int64))
        return PrealignResult(
            accepted=estimated <= self.max_edits,
            estimated_edits=estimated,
            threshold=self.max_edits,
        )

    def accepts(self, read: str, reference_window: str) -> bool:
        """Shorthand for ``filter(...).accepted``."""
        return self.filter(read, reference_window).accepted


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (reference implementation for the tests)."""
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]


def banded_edit_distance(a: str, b: str, band: int) -> int:
    """Edit distance restricted to a +/-``band`` diagonal band.

    Returns ``band + 1`` when the true distance exceeds the band, which is
    all the pre-alignment property tests need to know.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    if abs(len(a) - len(b)) > band:
        return band + 1
    infinity = band + 1
    previous = {j: j for j in range(0, band + 1)}
    for i in range(1, len(a) + 1):
        current = {}
        lo = max(0, i - band)
        hi = min(len(b), i + band)
        for j in range(lo, hi + 1):
            if j == 0:
                current[j] = i
                continue
            best = previous.get(j - 1, infinity) + (a[i - 1] != b[j - 1])
            best = min(best, previous.get(j, infinity) + 1)
            best = min(best, current.get(j - 1, infinity) + 1)
            current[j] = min(best, infinity)
        previous = current
    return min(previous.get(len(b), infinity), infinity)
