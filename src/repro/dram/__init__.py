"""DDR4 DRAM substrate (the repository's Ramulator equivalent).

Models DIMMs at bank granularity: per-bank row-buffer state machines with
DDR4-1600 timing constraints, per-chip-group data buses, FR-FCFS memory
controllers, the fine-grained chip-select capability of CXLG-DIMMs
(including multi-chip coalescing), the Fig. 10 address-mapping schemes, and
a DRAMPower-style energy model.
"""

from repro.dram.request import AccessKind, DataClass, DramCoord, MemoryRequest
from repro.dram.timing import DramTiming, DimmGeometry
from repro.dram.mapping import (
    AddressMapping,
    ChipInterleaveMapping,
    RankInterleaveMapping,
    RowLocalityMapping,
)
from repro.dram.dimm import Dimm, DimmKind
from repro.dram.controller import DimmController
from repro.dram.power import DramEnergyModel

__all__ = [
    "AccessKind",
    "AddressMapping",
    "ChipInterleaveMapping",
    "DataClass",
    "Dimm",
    "DimmController",
    "DimmGeometry",
    "DimmKind",
    "DramCoord",
    "DramEnergyModel",
    "DramTiming",
    "MemoryRequest",
    "RankInterleaveMapping",
    "RowLocalityMapping",
]
