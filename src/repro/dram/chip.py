"""Per-chip access accounting.

Fig. 13 of the paper plots normalized memory access per DRAM chip with and
without multi-chip coalescing; :class:`ChipAccessCounters` collects exactly
that data while the controller serves requests.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dram.timing import DimmGeometry


class ChipAccessCounters:
    """Burst counters per (rank, chip) of one DIMM."""

    def __init__(self, geometry: DimmGeometry) -> None:
        self.geometry = geometry
        self.bursts = np.zeros((geometry.ranks, geometry.chips_per_rank), dtype=np.int64)

    def record(self, rank: int, chip_group: int, chips_per_group: int, bursts: int) -> None:
        """Credit ``bursts`` bursts to every chip in the accessed group."""
        first = chip_group * chips_per_group
        self.bursts[rank, first : first + chips_per_group] += bursts

    def per_chip(self) -> List[int]:
        """Total bursts per chip position, summed over ranks."""
        return [int(v) for v in self.bursts.sum(axis=0)]

    def normalized(self) -> List[float]:
        """Per-chip bursts normalized to the mean (the Fig. 13 series).

        Float arithmetic is deliberate here and in :meth:`imbalance`: these
        are post-run *statistics over burst counts* (a normalized series and
        a coefficient of variation), not cycle timing — nothing downstream
        schedules events from them, so the int-cycle-arithmetic determinism
        contract does not apply.
        """
        totals = np.asarray(self.per_chip(), dtype=np.float64)
        mean = totals.mean()
        if mean == 0:
            return [0.0] * len(totals)
        return [float(v) for v in totals / mean]

    def imbalance(self) -> float:
        """Coefficient of variation across chips (0 == perfectly balanced)."""
        totals = np.asarray(self.per_chip(), dtype=np.float64)
        mean = totals.mean()
        if mean == 0:
            return 0.0
        return float(totals.std() / mean)
