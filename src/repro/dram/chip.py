"""Per-chip access accounting.

Fig. 13 of the paper plots normalized memory access per DRAM chip with and
without multi-chip coalescing; :class:`ChipAccessCounters` collects exactly
that data while the controller serves requests.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dram.timing import DimmGeometry


class ChipAccessCounters:
    """Burst counters per (rank, chip) of one DIMM."""

    def __init__(self, geometry: DimmGeometry) -> None:
        self.geometry = geometry
        # Flat Python ints: the controller credits a handful of chips per
        # issued request, where a numpy fancy-index add costs microseconds
        # of dispatch for a 16-element slice.
        self._chips_per_rank = geometry.chips_per_rank
        self.bursts: List[int] = [0] * (geometry.ranks * geometry.chips_per_rank)

    def record(self, rank: int, chip_group: int, chips_per_group: int, bursts: int) -> None:
        """Credit ``bursts`` bursts to every chip in the accessed group."""
        base = rank * self._chips_per_rank + chip_group * chips_per_group
        counts = self.bursts
        for index in range(base, base + chips_per_group):
            counts[index] += bursts

    def per_chip(self) -> List[int]:
        """Total bursts per chip position, summed over ranks."""
        chips = self._chips_per_rank
        totals = [0] * chips
        for index, value in enumerate(self.bursts):
            totals[index % chips] += value
        return totals

    def normalized(self) -> List[float]:
        """Per-chip bursts normalized to the mean (the Fig. 13 series).

        Float arithmetic is deliberate here and in :meth:`imbalance`: these
        are post-run *statistics over burst counts* (a normalized series and
        a coefficient of variation), not cycle timing — nothing downstream
        schedules events from them, so the int-cycle-arithmetic determinism
        contract does not apply.
        """
        totals = np.asarray(self.per_chip(), dtype=np.float64)
        mean = totals.mean()
        if mean == 0:
            return [0.0] * len(totals)
        return [float(v) for v in totals / mean]

    def imbalance(self) -> float:
        """Coefficient of variation across chips (0 == perfectly balanced)."""
        totals = np.asarray(self.per_chip(), dtype=np.float64)
        mean = totals.mean()
        if mean == 0:
            return 0.0
        return float(totals.std() / mean)
