"""DDR4 timing and geometry parameters (Table I configuration).

All timings are in DRAM clock cycles of a DDR4-1600 part (tCK = 1.25 ns,
CL-tRCD-tRP = 22-22-22 per Table I).  The geometry matches Table I's DIMM:
8 Gb x4 devices, 4 ranks of 16 chips, 4 bank groups x 4 banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property


@dataclass(frozen=True)
class DramTiming:
    """DDR4 timing constraints in DRAM cycles.

    Derived figures use ``cached_property`` (which writes straight into the
    instance ``__dict__``, bypassing the frozen ``__setattr__``) because the
    DRAM controller reads them in its per-request planning loop.
    """

    tck_ns: float = 1.25   # DDR4-1600
    tcas: int = 22         # CL: read command -> first data
    trcd: int = 22         # ACT -> column command
    trp: int = 22          # PRE -> ACT
    tras: int = 52         # ACT -> PRE (row must stay open this long)
    tbl: int = 4           # burst of 8 on a DDR bus = 4 clock cycles
    tccd: int = 4          # column command spacing (same bank group)
    trrd: int = 6          # ACT -> ACT, different banks
    tfaw: int = 32         # four-activate window
    twr: int = 12          # write recovery before PRE
    twl: int = 16          # write command -> first data (CWL)
    trefi: int = 6240      # refresh interval (7.8 us at 1.25 ns/cycle)
    trfc: int = 280        # refresh cycle time (350 ns for 8 Gb parts)

    @cached_property
    def trc(self) -> int:
        """Minimum time between activates to the same bank."""
        return self.tras + self.trp

    @cached_property
    def row_hit_read(self) -> int:
        """Cycles from issuing a read on an open row to last data beat."""
        return self.tcas + self.tbl

    @cached_property
    def row_miss_read(self) -> int:
        """Closed/conflicting row: PRE + ACT + read."""
        return self.trp + self.trcd + self.tcas + self.tbl

    @cached_property
    def row_closed_read(self) -> int:
        """Precharged bank: ACT + read."""
        return self.trcd + self.tcas + self.tbl

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.tck_ns

    def ns_to_cycles(self, ns: float) -> int:
        """Ceiling conversion so latencies never round down to zero."""
        return max(0, int(-(-ns // self.tck_ns)))


@dataclass(frozen=True)
class DimmGeometry:
    """Physical organization of one DIMM (Table I)."""

    ranks: int = 4
    chips_per_rank: int = 16
    bank_groups: int = 4
    banks_per_group: int = 4
    #: Bytes one chip contributes per row (8 Gb x4 device: 1 KiB page).
    row_bytes_per_chip: int = 1024
    #: Bytes one x4 chip delivers per BL8 burst (8 beats x 4 bits).
    burst_bytes_per_chip: int = 4
    #: Simulated per-DIMM capacity.  The paper's DIMMs are 64 GiB; the
    #: simulator only touches the index footprint, so the default is kept
    #: at the real value and the mappings simply never exceed it.
    capacity_bytes: int = 64 << 30

    @cached_property
    def banks(self) -> int:
        """Flat banks per rank."""
        return self.bank_groups * self.banks_per_group

    @cached_property
    def row_bytes_per_rank(self) -> int:
        """Bytes per row across a lockstep rank (all chips)."""
        return self.row_bytes_per_chip * self.chips_per_rank

    @cached_property
    def burst_bytes_per_rank(self) -> int:
        """Bytes per burst across a lockstep rank: the 64 B line."""
        return self.burst_bytes_per_chip * self.chips_per_rank

    def chip_groups(self, chips_per_group: int) -> int:
        """Number of chip-select groups at a given coalescing factor."""
        if chips_per_group <= 0 or self.chips_per_rank % chips_per_group:
            raise ValueError(
                f"chips_per_group must divide {self.chips_per_rank}, "
                f"got {chips_per_group}"
            )
        return self.chips_per_rank // chips_per_group

    def rows_per_bank(self, capacity_bytes: int = 0) -> int:
        """Rows per bank implied by the capacity (per rank, per bank)."""
        cap = capacity_bytes or self.capacity_bytes
        bytes_per_bank_row = self.row_bytes_per_rank
        total_rows = cap // (bytes_per_bank_row * self.banks * self.ranks)
        return max(1, int(total_rows))
