"""DIMM memory controller with FR-FCFS scheduling.

One controller fronts one DIMM.  Architecturally the controller logic lives
in different places per system — on the CXLG-DIMM's NDP module in BEACON-D,
in the CXL-Switch's Switch-Logic for unmodified DIMMs, on the buffer device
of MEDAL/NEST DDR-DIMMs — but the scheduling behaviour is identical; *where*
it lives only changes the communication path requests take to reach it,
which the topology layer models.

Scheduling policy: FR-FCFS (first-ready, first-come-first-served) — among
queued requests whose banks and chips can accept a command now, prefer row
hits, then age.  ``policy="fcfs"`` disables the row-hit bypass for the
ablation study.

This module is the simulator's hottest code path; it trades a little
elegance for speed (flat bank arrays, plan objects reused between the
scheduling decision and the issue).
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.dram.bank import Bank
from repro.dram.dimm import Dimm
from repro.dram.request import MemoryRequest
from repro.sim.component import Component
from repro.sim.queueing import BoundedQueue

#: A timing plan: (start, pre_data, transfer, activate, banks, chip_span).
#: ``start`` is *now-independent*: the earliest cycle the bank/bus state
#: permits, ignoring the current time; the effective start of an issue is
#: ``max(now, start)``.  That makes a plan valid for as long as the DIMM's
#: state epoch is unchanged, which is what the plan cache keys on.
Plan = Tuple[int, int, int, bool, List[Bank], range]


class DimmController(Component):
    """Request scheduler + bank timing orchestrator for one DIMM."""

    #: Cap on how deep FR-FCFS searches the queue for a ready row hit; real
    #: controllers bound the associative search the same way.
    SCHED_WINDOW = 8

    def __init__(
        self,
        engine,
        name: str,
        parent,
        dimm: Dimm,
        queue_capacity: int = 64,
        policy: str = "frfcfs",
    ) -> None:
        super().__init__(engine, name, parent)
        if policy not in ("frfcfs", "fcfs"):
            raise ValueError(f"unknown policy {policy!r}")
        self.dimm = dimm
        self.policy = policy
        self.queue: BoundedQueue[MemoryRequest] = BoundedQueue(
            f"{name}.reqq", capacity=queue_capacity
        )
        #: Requests waiting for queue space (admitted FIFO as slots free up).
        self._waiters: Deque[MemoryRequest] = deque()
        self._wake_at: Optional[int] = None
        #: Live handle for the pending scheduling pass; superseding an
        #: already-scheduled later pass cancels it outright instead of
        #: letting a stale event fire and bail.
        self._wake_handle = None
        #: The issue path updates four counters per request; it writes the
        #: scope's dict directly rather than paying a ``stats.add`` call each.
        self._counters = self.stats.counters
        # Per-DIMM constants hoisted out of the planning loop (both the
        # timing and geometry dataclasses are frozen for the DIMM's life).
        self._timing = dimm.timing
        self._burst_bytes_per_chip = dimm.geometry.burst_bytes_per_chip
        #: Cached plans live on each request's ``plan_entry`` slot as
        #: (global epoch, bank epoch, bus-epoch digest, plan).  Validity is
        #: two-tier: an unchanged global epoch (a scheduling pass that
        #: issued nothing) validates every entry in O(1); after an issue,
        #: the per-bank/per-bus epochs revalidate entries that do not share
        #: state with what was issued.
        #: ``REPRO_DISABLE_PLAN_CACHE=1`` forces the always-recompute path
        #: (the perf harness uses it to verify bit-identical results).
        self._plan_cache_enabled = os.environ.get(
            "REPRO_DISABLE_PLAN_CACHE", ""
        ).lower() not in ("1", "true", "yes")
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- submission -------------------------------------------------------------

    def submit(self, request: MemoryRequest) -> bool:
        """Queue a request; returns False (backpressure) when full."""
        if request.coord is None:
            raise ValueError("request must be address-mapped before submission")
        self.dimm.validate_group(request.coord.chips_per_group)
        if not self.queue.try_push(request):
            self.stats.add("rejected", 1)
            return False
        if request.issued_at is None:
            request.issued_at = self.engine.now
        if request.mc_enqueued_at is None:
            request.mc_enqueued_at = self.engine.now
        self.stats.add("accepted", 1)
        self.dimm.refresh.notify_activity()
        self._wake(0)
        return True

    def submit_when_possible(self, request: MemoryRequest) -> None:
        """Queue a request, parking it until the controller has space.

        This is what the I/O buffers in front of the MCs do (Section IV-B):
        remote requests "wait at the MCs to be issued out" rather than being
        dropped, so callers never need to poll.
        """
        if request.coord is None:
            raise ValueError("request must be address-mapped before submission")
        self.dimm.validate_group(request.coord.chips_per_group)
        if request.issued_at is None:
            request.issued_at = self.engine.now
        if request.mc_enqueued_at is None:
            request.mc_enqueued_at = self.engine.now
        self.dimm.refresh.notify_activity()
        if not self.queue.full() and not self._waiters:
            self.queue.push(request)
            self.stats.add("accepted", 1)
            self._wake(0)
        else:
            self._waiters.append(request)
            self.stats.add("parked", 1)
            tracer = self.engine.tracer
            if tracer:
                tracer.instant(
                    "dram", "queue_full", self.path, self.engine.now,
                    pid=self.engine.trace_id,
                    args={"waiting": len(self._waiters)},
                )

    def _admit_waiters(self) -> None:
        while self._waiters and not self.queue.full():
            self.queue.push(self._waiters.popleft())
            self.stats.add("accepted", 1)

    @property
    def pending(self) -> int:
        return len(self.queue) + len(self._waiters)

    # -- scheduling ---------------------------------------------------------------

    def _wake(self, delay: int) -> None:
        """Schedule a scheduling pass, collapsing redundant wakeups.

        An already-pending pass at or before ``target`` covers this wakeup;
        a pending *later* pass is cancelled (O(1) via its handle) and
        replaced, so superseded wakeups never reach the event loop.
        """
        target = self.engine.now + delay
        if self._wake_at is not None:
            if self._wake_at <= target:
                return
            self._wake_handle.cancel()
        self._wake_at = target
        self._wake_handle = self.engine.schedule_cancellable(
            delay, self._schedule_pass
        )

    def _schedule_pass(self) -> None:
        self._wake_at = None
        self._wake_handle = None
        next_start: Optional[int] = None
        while self.queue:
            picked = self._pick_ready()
            if isinstance(picked, int):
                next_start = picked
                break
            request, plan = picked
            self.queue.remove(request)
            self._issue(request, plan)
            self._admit_waiters()
        if self.queue and next_start is not None:
            self._wake(max(1, next_start - self.engine.now))

    def _compute_plan(self, request: MemoryRequest) -> Plan:
        """Derive the now-independent timing plan for a request.

        The command phase may begin while the chip data bus still serves an
        earlier transfer — only the *data windows* serialize on the bus —
        which is what lets accesses to different banks pipeline.
        """
        coord = request.coord
        dimm = self.dimm
        timing = self._timing
        group_bytes = self._burst_bytes_per_chip * coord.chips_per_group
        transfer = -(-request.size // group_bytes) * timing.tbl
        first_chip = coord.first_chip
        chips = range(first_chip, first_chip + coord.chips_per_group)
        rank, bank_index, row = coord.rank, coord.bank, coord.row
        banks = dimm.bank_group(
            rank, first_chip, coord.chips_per_group, bank_index
        )
        pre_data, activate = banks[0].classify(row, timing, request.is_write)
        # All constraints below are pure maxima over bank/bus state, so the
        # earliest start relative to any ``now`` is just ``max(now, start)``
        # — computing from 0 yields a plan reusable across wakeups.
        start = 0
        chip_free, index = dimm.chip_free_window(rank, first_chip)
        for bank in banks:
            s = bank.earliest_start(start, activate, timing)
            if s > start:
                start = s
            bus = chip_free[index] - pre_data
            if bus > start:
                start = bus
            index += 1
        return start, pre_data, transfer, activate, banks, chips

    def _plan(self, request: MemoryRequest) -> Plan:
        """Cached timing plan, invalidated when the DIMM's state advances."""
        if not self._plan_cache_enabled:
            return self._compute_plan(request)
        dimm = self.dimm
        epoch = dimm.state_epoch
        cached = request.plan_entry
        if cached is not None:
            if cached[0] == epoch:
                self.plan_cache_hits += 1
                return cached[3]
            coord = request.coord
            bank_ep = dimm.bank_epoch(coord.rank, coord.bank)
            bus_ep = dimm.bus_epoch_sum(
                coord.rank, coord.first_chip, coord.chips_per_group
            )
            if cached[1] == bank_ep and cached[2] == bus_ep:
                # State advanced elsewhere on the DIMM; this plan's banks
                # and buses did not move.  Refresh the fast-path stamp.
                request.plan_entry = (epoch, bank_ep, bus_ep, cached[3])
                self.plan_cache_hits += 1
                return cached[3]
        else:
            coord = request.coord
            bank_ep = dimm.bank_epoch(coord.rank, coord.bank)
            bus_ep = dimm.bus_epoch_sum(
                coord.rank, coord.first_chip, coord.chips_per_group
            )
        plan = self._compute_plan(request)
        request.plan_entry = (epoch, bank_ep, bus_ep, plan)
        self.plan_cache_misses += 1
        return plan

    def _earliest_start(self, request: MemoryRequest) -> int:
        return max(self.engine.now, self._plan(request)[0])

    def _pick_ready(self):
        """FR-FCFS pick: ``(request, plan)`` ready now, else the earliest
        future start time (int), for the next wakeup."""
        now = self.engine.now
        window = 0
        first_ready = None
        first_ready_plan = None
        min_start = None
        prefer_hits = self.policy == "frfcfs"
        for request in self.queue.items():
            if window >= self.SCHED_WINDOW:
                break
            window += 1
            plan = self._plan(request)
            start = plan[0]
            if start <= now:
                if not prefer_hits:
                    return request, plan
                if not plan[3]:  # row hit (no activate needed)
                    return request, plan
                if first_ready is None:
                    first_ready, first_ready_plan = request, plan
            elif min_start is None or start < min_start:
                min_start = start
        if first_ready is not None:
            return first_ready, first_ready_plan
        return min_start if min_start is not None else self.engine.now + 1

    # -- issue ---------------------------------------------------------------------

    def _issue(self, request: MemoryRequest, plan: Plan) -> None:
        start, pre_data, transfer_cycles, activate, banks, chips = plan
        engine = self.engine
        now = engine.now
        if start < now:
            start = now  # plan start is now-independent
        request.plan_entry = None
        coord = request.coord
        dimm = self.dimm
        timing = self._timing
        bursts = transfer_cycles // timing.tbl
        tracer = engine.tracer
        trace_dram = bool(tracer) and tracer.wants("dram")
        if trace_dram:
            # Row-buffer outcome must be read *before* commit mutates it.
            if not activate:
                row_state = "hit"
            elif banks[0].open_row is None:
                row_state = "miss"
            else:
                row_state = "conflict"
        # ``Bank.commit`` always completes at start + pre_data + transfer
        # regardless of bank state, so the finish cycle is computed once
        # rather than max-folded over the group.
        finish = start + pre_data + transfer_cycles
        row = coord.row
        is_write = request.is_write
        for bank in banks:
            bank.commit(start, row, pre_data, transfer_cycles,
                        activate, timing, is_write)
        if trace_dram:
            # The span covers the full service window [start, finish) —
            # completion is scheduled at ``finish`` — so the profiler's
            # queue/service/response phase boundaries meet exactly.
            op = "WR" if request.is_write else "RD"
            enq = request.mc_enqueued_at
            tracer.complete(
                "dram", f"ACT+{op}" if activate else op, self.path,
                start, finish - start,
                pid=self.engine.trace_id,
                args={
                    "row_state": row_state, "rank": coord.rank,
                    "bank": coord.bank, "row": coord.row,
                    "chips": coord.chips_per_group, "bursts": bursts,
                    "queue_depth": len(self.queue) + len(self._waiters),
                    "req": request.req_id, "task": request.task_id,
                    "wait": start - enq if enq is not None else 0,
                },
            )
        dimm.note_bank_commit(coord.rank, coord.bank)
        if activate:
            dimm.energy.on_activate(chips=coord.chips_per_group)
        # The chip data bus is occupied only during the transfer window.
        dimm.set_group_free_at(
            coord.rank, coord.first_chip, coord.chips_per_group, finish
        )
        dimm.chip_counters.record(
            coord.rank, coord.chip_group, coord.chips_per_group, bursts
        )
        dimm.energy.on_burst(coord.chips_per_group, bursts, request.is_write)
        # Inlined counter updates (four per issued request), keys created
        # lazily on the first issue exactly as ``stats.add`` would.
        counters = self._counters
        if "issued" not in counters:
            counters["issued"] = 0.0
            counters["bursts"] = 0.0
            counters["bytes_accessed"] = 0.0
            counters["useful_bytes"] = 0.0
        counters["issued"] += 1
        counters["bursts"] += bursts
        counters["bytes_accessed"] += (
            bursts * self._burst_bytes_per_chip * coord.chips_per_group
        )
        counters["useful_bytes"] += request.size
        self.stats.record("service_cycles", finish - now)
        # The completion cycle is known now: stamp it and schedule the
        # request's bound completion method instead of a per-request lambda.
        request.completed_at = finish
        engine.schedule_at(finish, request.fire_completion)
