"""DRAMPower-style energy model.

Energy is accrued per event (activation, read/write burst) plus a
background term proportional to simulated time.  The per-event constants
follow the DRAMPower methodology for an 8 Gb x4 DDR4-1600 device: current
profiles (IDD0/IDD4R/IDD4W/IDD2N at VDD = 1.2 V) folded into per-operation
energies.  Absolute joules matter less than the *relative* costs — an
activation is far more expensive than a column access, and fine-grained
accesses that touch fewer chips proportionally save both — which is what
the paper's energy figures exercise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event DRAM energies in nanojoules, per chip."""

    #: One ACT+PRE pair on a single chip (IDD0 envelope over tRC).
    act_pre_nj_per_chip: float = 0.14
    #: One BL8 read burst on a single chip (IDD4R over tBL).
    read_burst_nj_per_chip: float = 0.045
    #: One BL8 write burst on a single chip (IDD4W over tBL).
    write_burst_nj_per_chip: float = 0.05
    #: Background (standby/refresh) power per chip in milliwatts.  Real
    #: DDR4 idles around 10-15 mW/chip, but the paper's workloads keep the
    #: pool saturated for hours so background is a small share of total
    #: energy; the scaled simulations run the same pool for microseconds,
    #: so the constant is reduced to keep the *share* representative
    #: (documented in DESIGN.md's substitution table).
    background_mw_per_chip: float = 3.0


class DramEnergyModel:
    """Accumulates DRAM energy into a stats scope.

    One model instance serves one DIMM; the controller reports events and
    the experiment harness calls :meth:`finalize` once with the end time to
    add the background term.
    """

    def __init__(self, stats, total_chips: int, tck_ns: float,
                 params: DramEnergyParams = DramEnergyParams()) -> None:
        self.stats = stats
        self.total_chips = total_chips
        self.tck_ns = tck_ns
        self.params = params

    def on_activate(self, chips: int) -> None:
        """An ACT(+eventual PRE) on ``chips`` chips of one rank."""
        self.stats.add("energy_act_nj", self.params.act_pre_nj_per_chip * chips)

    def on_burst(self, chips: int, bursts: int, is_write: bool) -> None:
        """``bursts`` BL8 data bursts across ``chips`` chips."""
        per = (
            self.params.write_burst_nj_per_chip
            if is_write
            else self.params.read_burst_nj_per_chip
        )
        self.stats.add("energy_rw_nj", per * chips * bursts)

    def finalize(self, end_cycle: int) -> None:
        """Add background energy for the whole run (idempotent via ``set``)."""
        seconds = end_cycle * self.tck_ns * 1e-9
        background_nj = self.params.background_mw_per_chip * 1e-3 * self.total_chips * seconds * 1e9
        self.stats.set("energy_background_nj", background_nj)

    def total_nj(self) -> float:
        """Dynamic + background energy accrued so far (nJ)."""
        return (
            self.stats.get("energy_act_nj")
            + self.stats.get("energy_rw_nj")
            + self.stats.get("energy_refresh_nj")
            + self.stats.get("energy_background_nj")
        )
