"""DDR4 refresh engine.

Every tREFI, each rank executes a REF command that blocks all of its banks
for tRFC.  The engine is per-DIMM and *auto-dormant*: it arms itself when
the controller sees traffic and parks once the DIMM has been idle for a
couple of refresh intervals, so simulations still quiesce (the event queue
drains) while any active phase pays the full refresh tax.

Refresh matters to the reproduction in two ways: it steals ~4-5% of row
bandwidth from every configuration equally (keeping the relative results
honest), and it contributes the refresh term of the DRAMPower-style energy
model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dram.dimm import Dimm

#: Refresh energy per chip per REF command (8 Gb device, IDD5 envelope).
REFRESH_NJ_PER_CHIP = 0.9


class RefreshEngine:
    """Per-DIMM periodic refresh with idle dormancy."""

    #: Park after this many refresh intervals without any traffic.
    IDLE_INTERVALS = 2

    def __init__(self, dimm: "Dimm") -> None:
        self.dimm = dimm
        self.engine = dimm.engine
        self.timing = dimm.timing
        self._armed = False
        self._last_activity = 0
        self.refreshes = 0

    def notify_activity(self) -> None:
        """Controller hook: traffic arrived; make sure refresh is running."""
        self._last_activity = self.engine.now
        if not self._armed:
            self._armed = True
            self.engine.schedule(self.timing.trefi, self._tick)

    def _tick(self) -> None:
        now = self.engine.now
        if now - self._last_activity > self.IDLE_INTERVALS * self.timing.trefi:
            # Dormant: the DIMM is idle; re-armed on the next submit.
            self._armed = False
            return
        self._refresh_all_ranks()
        self.engine.schedule(self.timing.trefi, self._tick)

    def _refresh_all_ranks(self) -> None:
        dimm = self.dimm
        geo = dimm.geometry
        busy_until = self.engine.now + self.timing.trfc
        dimm.apply_refresh(busy_until)
        self.refreshes += 1
        # Banks and buses moved without going through the controller's
        # issue path: cached timing plans are stale.
        dimm.bump_state_epoch()
        dimm.stats.add("refreshes", 1)
        dimm.stats.add(
            "energy_refresh_nj",
            REFRESH_NJ_PER_CHIP * geo.ranks * geo.chips_per_rank,
        )
