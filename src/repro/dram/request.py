"""Memory request/response records shared across the whole stack."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional


class AccessKind(enum.Enum):
    """What a request does to memory."""

    READ = "read"
    WRITE = "write"
    #: Atomic read-modify-write; orchestrated by an Atomic Engine (Fig. 7)
    #: as a read + compute + write sequence against the same address.
    ATOMIC_RMW = "atomic_rmw"


class DataClass(enum.Enum):
    """Which index structure an address belongs to.

    The architecture & data aware address mapping (Section IV-C) keys its
    placement decisions on the data type carried in each memory request;
    this enum is that tag.
    """

    FM_INDEX_BLOCK = "fm_index_block"        # 32 B occ/BWT blocks, fine-grained
    HASH_DIRECTORY = "hash_directory"        # 8 B bucket headers
    HASH_LOCATIONS = "hash_locations"        # 4 B location entries, spatially local
    BLOOM_COUNTER = "bloom_counter"          # sub-byte counters, fine-grained RMW
    REFERENCE_WINDOW = "reference_window"    # sequential reference slices
    READ_INPUT = "read_input"                # streaming input reads
    GENERIC = "generic"

    @property
    def spatially_local(self) -> bool:
        """Whether consecutive elements are accessed together (row-major
        placement candidates per principle 2 of the mapping scheme)."""
        return self in (
            DataClass.HASH_LOCATIONS,
            DataClass.REFERENCE_WINDOW,
            DataClass.READ_INPUT,
        )

    @property
    def fine_grained(self) -> bool:
        """Whether accesses are much smaller than a 64 B line."""
        return self in (
            DataClass.FM_INDEX_BLOCK,
            DataClass.HASH_DIRECTORY,
            DataClass.HASH_LOCATIONS,
            DataClass.BLOOM_COUNTER,
        )


class DramCoord(NamedTuple):
    """Physical DRAM coordinates of an address within one DIMM.

    A ``NamedTuple`` rather than a frozen dataclass: one coordinate is
    constructed per address-mapped request, and tuple construction skips
    the per-field ``object.__setattr__`` cost frozen dataclasses pay.
    """

    rank: int
    bank: int          # flat bank index (bank_group * banks_per_group + bank)
    row: int
    column: int        # byte offset within the (chip-group) row
    chip_group: int    # which chip-select group serves the access
    chips_per_group: int = 16  # group width (16 == lockstep rank access)

    @property
    def first_chip(self) -> int:
        """Index of the first physical chip in the accessed group."""
        return self.chip_group * self.chips_per_group


_request_ids = itertools.count()


@dataclass(slots=True)
class MemoryRequest:
    """One memory access travelling through the pool.

    ``addr`` is a *pool-global* physical byte address; the memory-management
    framework's region map locates the owning DIMM and the DIMM's address
    mapping derives the :class:`DramCoord`.  ``size`` is the number of
    *useful* bytes — the Data Packer decides how many wire bytes they cost.
    """

    addr: int
    size: int
    kind: AccessKind = AccessKind.READ
    data_class: DataClass = DataClass.GENERIC
    task_id: Optional[int] = None
    source: str = ""
    on_complete: Optional[Callable[["MemoryRequest"], None]] = None
    req_id: int = field(default_factory=_request_ids.__next__)
    issued_at: Optional[int] = None
    completed_at: Optional[int] = None
    #: Cycle the request first reached its DIMM controller (parked or
    #: queued) — the boundary between fabric time and controller queueing
    #: in the latency-attribution profiler.
    mc_enqueued_at: Optional[int] = None
    #: Filled in during routing.
    dimm_index: Optional[int] = None
    coord: Optional[DramCoord] = None
    #: DIMM-controller scratch: ``(global epoch, bank epoch, bus-epoch
    #: digest, plan)`` for this request, or ``None``.  Living on the
    #: request (one slot, cleared at issue) instead of a controller-side
    #: dict keyed by ``req_id`` keeps the planning fast path free of
    #: dictionary traffic.
    plan_entry: Optional[tuple] = field(init=False, default=None, repr=False)
    #: ``kind is WRITE``, fixed at construction; the DRAM timing path reads
    #: this per bank per scheduling pass, so it is a plain attribute.
    is_write: bool = field(init=False)

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr:#x}")
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        self.is_write = self.kind is AccessKind.WRITE

    @property
    def latency(self) -> Optional[int]:
        """End-to-end cycles, available once completed."""
        if self.issued_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def complete(self, now: int) -> None:
        """Mark completion and invoke the continuation."""
        self.completed_at = now
        if self.on_complete is not None:
            self.on_complete(self)

    def fire_completion(self) -> None:
        """Invoke the continuation; ``completed_at`` must already be set.

        The DRAM controller knows the completion cycle at issue time, so it
        stamps ``completed_at`` up front and schedules this zero-argument
        bound method directly instead of allocating a closure per request.
        """
        if self.on_complete is not None:
            self.on_complete(self)
