"""DIMM device model: banks, chips, energy, and kind."""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.dram.bank import Bank
from repro.dram.chip import ChipAccessCounters
from repro.dram.refresh import RefreshEngine
from repro.dram.power import DramEnergyModel, DramEnergyParams
from repro.dram.timing import DimmGeometry, DramTiming
from repro.sim.component import Component


class DimmKind(enum.Enum):
    """Which flavour of DIMM this is."""

    #: Unmodified CXL-DIMM: lockstep rank access only, no NDP logic.
    UNMODIFIED_CXL = "unmodified_cxl"
    #: CXLG-DIMM: NDP module on the PCB, per-chip chip selects (BEACON-D).
    CXLG = "cxlg"
    #: Customized DDR-DIMM of the prior work (MEDAL/NEST), also per-chip CS.
    DDR_CUSTOM = "ddr_custom"
    #: Plain DDR-DIMM (CPU baseline memory).
    DDR_PLAIN = "ddr_plain"

    @property
    def fine_grained(self) -> bool:
        """Whether per-chip chip-select access is available."""
        return self in (DimmKind.CXLG, DimmKind.DDR_CUSTOM)


class Dimm(Component):
    """One DIMM: bank state machines per (rank, chip, bank) plus accounting.

    Bank state is tracked per *chip* so that chip groups of any width —
    lockstep ranks, single chips, coalesced multi-chip groups — interact
    correctly when regions with different mappings share a DIMM.
    """

    def __init__(
        self,
        engine,
        name: str,
        parent,
        kind: DimmKind,
        geometry: DimmGeometry = DimmGeometry(),
        timing: DramTiming = DramTiming(),
        energy_params: DramEnergyParams = DramEnergyParams(),
    ) -> None:
        super().__init__(engine, name, parent)
        self.kind = kind
        self.geometry = geometry
        self.timing = timing
        #: Monotonic counter bumped whenever any bank or chip-bus state
        #: advances (an access commits, refresh fires).  The controller keys
        #: its per-request timing-plan cache on this: while the epoch is
        #: unchanged, every previously computed plan is still valid.  The
        #: per-(rank, bank) and per-(rank, chip) epochs below refine it so
        #: an issue only invalidates plans that actually share state with it.
        self.state_epoch: int = 0
        # Flat bank array indexed by (rank, chip, bank) — this is the
        # simulator's hottest data structure.  The geometry scalars the
        # index math needs are hoisted to plain ints here; going through
        # the DimmGeometry properties costs a descriptor call per lookup.
        self._banks_per_chip = geometry.banks
        self._chips_per_rank = geometry.chips_per_rank
        self._banks_per_rank = geometry.chips_per_rank * geometry.banks
        # Bank state objects materialize lazily on first touch: a sweep
        # configuration builds hundreds of DIMMs whose workloads often hit
        # only a fraction of the bank space, and constructing the full
        # array dominated small-figure setup profiles.  An untouched bank
        # is indistinguishable from a fresh one (refresh only clamps
        # ``free_at`` forward and closes rows — both no-ops on idle banks).
        self._banks: List[Optional[Bank]] = [None] * (
            geometry.ranks * self._banks_per_rank
        )
        # Chip-group -> bank-object list memo for the controller's planning
        # loop.  Bank objects live for the DIMM's lifetime, so entries never
        # invalidate; the key space is bounded by (ranks x groups x banks).
        self._group_memo: Dict[Tuple[int, int, int, int], List[Bank]] = {}
        self.chip_counters = ChipAccessCounters(geometry)
        # Per-(rank, chip) data-bus availability, flat.
        self._chip_free_at: List[int] = [0] * (
            geometry.ranks * geometry.chips_per_rank
        )
        # Fine-grained plan-invalidation epochs: per (rank, bank-index) for
        # command-sequencing state, per (rank, chip) for data-bus state.
        self._bank_epoch: List[int] = [0] * (geometry.ranks * geometry.banks)
        self._bus_epoch: List[int] = [0] * (
            geometry.ranks * geometry.chips_per_rank
        )
        self.energy = DramEnergyModel(
            self.stats,
            total_chips=geometry.ranks * geometry.chips_per_rank,
            tck_ns=timing.tck_ns,
            params=energy_params,
        )
        self.refresh = RefreshEngine(self)

    def bank(self, rank: int, chip: int, bank: int) -> Bank:
        index = rank * self._banks_per_rank + chip * self._banks_per_chip + bank
        entry = self._banks[index]
        if entry is None:
            entry = self._banks[index] = Bank()
        return entry

    def bank_group(
        self, rank: int, first_chip: int, chips_per_group: int, bank: int
    ) -> List[Bank]:
        """The ``bank``-index banks of one chip group, in chip order.

        Memoized: the controller re-plans the same (rank, group, bank)
        combinations constantly and the bank objects never move.  Callers
        must not mutate the returned list.
        """
        key = (rank, first_chip, chips_per_group, bank)
        try:
            return self._group_memo[key]
        except KeyError:
            banks = self._banks
            base = rank * self._banks_per_rank + bank
            per_chip = self._banks_per_chip
            group = []
            for chip in range(first_chip, first_chip + chips_per_group):
                index = base + chip * per_chip
                entry = banks[index]
                if entry is None:
                    entry = banks[index] = Bank()
                group.append(entry)
            self._group_memo[key] = group
            return group

    def chip_free_at(self, rank: int, chip: int) -> int:
        return self._chip_free_at[rank * self._chips_per_rank + chip]

    def set_chip_free_at(self, rank: int, chip: int, time: int) -> None:
        index = rank * self._chips_per_rank + chip
        self._chip_free_at[index] = time
        self._bus_epoch[index] += 1
        self.state_epoch += 1

    def set_group_free_at(
        self, rank: int, first_chip: int, chips: int, time: int
    ) -> None:
        """Advance every data bus of one chip group to ``time``.

        Equivalent to ``chips`` calls of :meth:`set_chip_free_at` (the
        epochs move identically); batched because the controller does this
        once per issued request across the whole group.
        """
        base = rank * self._chips_per_rank + first_chip
        free = self._chip_free_at
        epochs = self._bus_epoch
        for index in range(base, base + chips):
            free[index] = time
            epochs[index] += 1
        self.state_epoch += chips

    def chip_free_window(self, rank: int, first_chip: int) -> Tuple[List[int], int]:
        """The flat bus-availability list and the index of ``first_chip``.

        The controller's planning loop reads one bus slot per chip in a
        group; handing it the backing list plus a base index turns those
        reads into plain subscripts.  The list is mutated in place and
        never rebound, so the reference stays valid for the DIMM's life.
        """
        return self._chip_free_at, rank * self._chips_per_rank + first_chip

    # -- plan-cache invalidation --------------------------------------------------

    def note_bank_commit(self, rank: int, bank: int) -> None:
        """An access committed against bank ``bank`` of ``rank`` (any chip
        group): plans reading that bank index are stale."""
        self._bank_epoch[rank * self._banks_per_chip + bank] += 1
        self.state_epoch += 1

    def bank_epoch(self, rank: int, bank: int) -> int:
        return self._bank_epoch[rank * self._banks_per_chip + bank]

    def bus_epoch_sum(self, rank: int, first_chip: int, chips: int) -> int:
        """Monotonic digest of the data-bus state a chip group depends on
        (strictly increases whenever any covered chip's bus advances)."""
        base = rank * self._chips_per_rank + first_chip
        return sum(self._bus_epoch[base : base + chips])

    def apply_refresh(self, busy_until: int) -> None:
        """Block every bank and chip bus until ``busy_until`` (REF for all
        ranks) and close all rows.

        Flat sweeps over the state arrays on behalf of the refresh engine —
        the triple (rank, chip, bank) loop through :meth:`bank` showed up in
        profiles.  Bus epochs are bumped wholesale by the caller's
        :meth:`bump_state_epoch`, which invalidates every cached plan, so
        the per-entry epochs need no individual increments here.
        """
        for bank in self._banks:
            if bank is None:
                # Never-touched bank: clamping ``free_at`` forward and
                # closing the (already closed) row would be no-ops.
                continue
            if bank.free_at < busy_until:
                bank.free_at = busy_until
            # REF implicitly precharges every row.
            bank.open_row = None
        free = self._chip_free_at
        for index, at in enumerate(free):
            if at < busy_until:
                free[index] = busy_until

    def bump_state_epoch(self) -> None:
        """Invalidate every cached timing plan (refresh moved all banks)."""
        self.state_epoch += 1
        self._bank_epoch = [e + 1 for e in self._bank_epoch]
        self._bus_epoch = [e + 1 for e in self._bus_epoch]

    def validate_group(self, chips_per_group: int) -> None:
        """Reject fine-grained access on DIMMs that cannot do it."""
        if chips_per_group < self.geometry.chips_per_rank and not self.kind.fine_grained:
            raise ValueError(
                f"{self.path}: {self.kind.value} DIMMs only support lockstep "
                f"rank access, got group of {chips_per_group} chips"
            )

    # -- aggregate statistics ---------------------------------------------------

    @property
    def total_activations(self) -> int:
        return sum(b.activations for b in self._banks if b is not None)

    @property
    def total_row_hits(self) -> int:
        return sum(b.row_hits for b in self._banks if b is not None)

    @property
    def total_row_conflicts(self) -> int:
        return sum(b.row_conflicts for b in self._banks if b is not None)
