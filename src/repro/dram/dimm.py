"""DIMM device model: banks, chips, energy, and kind."""

from __future__ import annotations

import enum
from typing import List

from repro.dram.bank import Bank
from repro.dram.chip import ChipAccessCounters
from repro.dram.refresh import RefreshEngine
from repro.dram.power import DramEnergyModel, DramEnergyParams
from repro.dram.timing import DimmGeometry, DramTiming
from repro.sim.component import Component


class DimmKind(enum.Enum):
    """Which flavour of DIMM this is."""

    #: Unmodified CXL-DIMM: lockstep rank access only, no NDP logic.
    UNMODIFIED_CXL = "unmodified_cxl"
    #: CXLG-DIMM: NDP module on the PCB, per-chip chip selects (BEACON-D).
    CXLG = "cxlg"
    #: Customized DDR-DIMM of the prior work (MEDAL/NEST), also per-chip CS.
    DDR_CUSTOM = "ddr_custom"
    #: Plain DDR-DIMM (CPU baseline memory).
    DDR_PLAIN = "ddr_plain"

    @property
    def fine_grained(self) -> bool:
        """Whether per-chip chip-select access is available."""
        return self in (DimmKind.CXLG, DimmKind.DDR_CUSTOM)


class Dimm(Component):
    """One DIMM: bank state machines per (rank, chip, bank) plus accounting.

    Bank state is tracked per *chip* so that chip groups of any width —
    lockstep ranks, single chips, coalesced multi-chip groups — interact
    correctly when regions with different mappings share a DIMM.
    """

    def __init__(
        self,
        engine,
        name: str,
        parent,
        kind: DimmKind,
        geometry: DimmGeometry = DimmGeometry(),
        timing: DramTiming = DramTiming(),
        energy_params: DramEnergyParams = DramEnergyParams(),
    ) -> None:
        super().__init__(engine, name, parent)
        self.kind = kind
        self.geometry = geometry
        self.timing = timing
        #: Monotonic counter bumped whenever any bank or chip-bus state
        #: advances (an access commits, refresh fires).  The controller keys
        #: its per-request timing-plan cache on this: while the epoch is
        #: unchanged, every previously computed plan is still valid.  The
        #: per-(rank, bank) and per-(rank, chip) epochs below refine it so
        #: an issue only invalidates plans that actually share state with it.
        self.state_epoch: int = 0
        # Flat bank array indexed by (rank, chip, bank) — this is the
        # simulator's hottest data structure.
        self._banks_per_rank = geometry.chips_per_rank * geometry.banks
        self._banks: List[Bank] = [
            Bank() for _ in range(geometry.ranks * self._banks_per_rank)
        ]
        self.chip_counters = ChipAccessCounters(geometry)
        # Per-(rank, chip) data-bus availability, flat.
        self._chip_free_at: List[int] = [0] * (
            geometry.ranks * geometry.chips_per_rank
        )
        # Fine-grained plan-invalidation epochs: per (rank, bank-index) for
        # command-sequencing state, per (rank, chip) for data-bus state.
        self._bank_epoch: List[int] = [0] * (geometry.ranks * geometry.banks)
        self._bus_epoch: List[int] = [0] * (
            geometry.ranks * geometry.chips_per_rank
        )
        self.energy = DramEnergyModel(
            self.stats,
            total_chips=geometry.ranks * geometry.chips_per_rank,
            tck_ns=timing.tck_ns,
            params=energy_params,
        )
        self.refresh = RefreshEngine(self)

    def bank(self, rank: int, chip: int, bank: int) -> Bank:
        return self._banks[
            rank * self._banks_per_rank + chip * self.geometry.banks + bank
        ]

    def chip_free_at(self, rank: int, chip: int) -> int:
        return self._chip_free_at[rank * self.geometry.chips_per_rank + chip]

    def set_chip_free_at(self, rank: int, chip: int, time: int) -> None:
        index = rank * self.geometry.chips_per_rank + chip
        self._chip_free_at[index] = time
        self._bus_epoch[index] += 1
        self.state_epoch += 1

    # -- plan-cache invalidation --------------------------------------------------

    def note_bank_commit(self, rank: int, bank: int) -> None:
        """An access committed against bank ``bank`` of ``rank`` (any chip
        group): plans reading that bank index are stale."""
        self._bank_epoch[rank * self.geometry.banks + bank] += 1
        self.state_epoch += 1

    def bank_epoch(self, rank: int, bank: int) -> int:
        return self._bank_epoch[rank * self.geometry.banks + bank]

    def bus_epoch_sum(self, rank: int, first_chip: int, chips: int) -> int:
        """Monotonic digest of the data-bus state a chip group depends on
        (strictly increases whenever any covered chip's bus advances)."""
        base = rank * self.geometry.chips_per_rank + first_chip
        return sum(self._bus_epoch[base : base + chips])

    def bump_state_epoch(self) -> None:
        """Invalidate every cached timing plan (refresh moved all banks)."""
        self.state_epoch += 1
        self._bank_epoch = [e + 1 for e in self._bank_epoch]
        self._bus_epoch = [e + 1 for e in self._bus_epoch]

    def validate_group(self, chips_per_group: int) -> None:
        """Reject fine-grained access on DIMMs that cannot do it."""
        if chips_per_group < self.geometry.chips_per_rank and not self.kind.fine_grained:
            raise ValueError(
                f"{self.path}: {self.kind.value} DIMMs only support lockstep "
                f"rank access, got group of {chips_per_group} chips"
            )

    # -- aggregate statistics ---------------------------------------------------

    @property
    def total_activations(self) -> int:
        return sum(b.activations for b in self._banks)

    @property
    def total_row_hits(self) -> int:
        return sum(b.row_hits for b in self._banks)

    @property
    def total_row_conflicts(self) -> int:
        return sum(b.row_conflicts for b in self._banks)
