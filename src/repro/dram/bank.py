"""Per-bank row-buffer state machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dram.timing import DramTiming


@dataclass(slots=True)
class Bank:
    """State of one DRAM bank (per rank, per chip).

    With lockstep chips a whole rank's same-index banks move together; with
    per-chip chip selects (CXLG-DIMMs) every chip keeps an independent open
    row in the same bank index — that independence is where the fine-grained
    parallelism comes from.

    Timing is split between the bank (command sequencing: ACT/PRE/CAS,
    enforced here) and the chip data bus (transfer windows, enforced by the
    controller), so column accesses to *different* banks of one chip
    pipeline behind each other at burst granularity, as in real DDR4.
    """

    open_row: Optional[int] = None
    #: Cycle at which the bank can accept the next access sequence.
    free_at: int = 0
    #: Start cycle of the most recent ACT (enforces tRC).
    last_act_at: int = field(default=-(10 ** 9))
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    def classify(self, row: int, timing: DramTiming, is_write: bool) -> Tuple[int, bool]:
        """Command-phase latency before data for an access to ``row``.

        Returns ``(pre_data_cycles, needs_activate)`` without mutating
        state; the controller uses it to plan bus occupancy.
        """
        column = timing.twl if is_write else timing.tcas
        if self.open_row == row:
            return column, False
        if self.open_row is None:
            return timing.trcd + column, True
        return timing.trp + timing.trcd + column, True

    def earliest_start(self, now: int, needs_activate: bool, timing: DramTiming) -> int:
        """Earliest cycle the access's command sequence may begin."""
        # Branching instead of max() chains: called per bank per planning
        # pass, and builtins.max on two ints is slower than a compare.
        start = self.free_at
        if start < now:
            start = now
        if needs_activate:
            act = self.last_act_at
            gate = act + timing.trc
            if start < gate:
                start = gate
            if self.open_row is not None:
                # Conflicting row must satisfy tRAS before its precharge.
                gate = act + timing.tras
                if start < gate:
                    start = gate
        return start

    def commit(
        self,
        start: int,
        row: int,
        pre_data_cycles: int,
        transfer_cycles: int,
        needs_activate: bool,
        timing: DramTiming,
        is_write: bool,
    ) -> int:
        """Apply the access; returns the cycle the last data beat completes.

        The bank is then busy until the data transfer ends (+tWR for
        writes); other banks of the same chip may interleave freely.
        """
        finish = start + pre_data_cycles + transfer_cycles
        if needs_activate:
            self.activations += 1
            self.last_act_at = start if self.open_row is None else start + timing.trp
            if self.open_row is None:
                self.row_misses += 1
            else:
                self.row_conflicts += 1
            self.open_row = row
        else:
            self.row_hits += 1
        self.free_at = finish + (timing.twr if is_write else 0)
        return finish
