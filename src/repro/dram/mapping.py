"""Address mapping schemes (Fig. 10).

A mapping turns a *region-local* byte address into physical DRAM
coordinates.  The memory-management framework gives every allocated region
its own mapping instance with a private ``row_base``, so regions with
different schemes occupy disjoint rows of the same DIMM and can never
collide.

The two principles of the paper's architecture & data aware scheme
(Section IV-C) appear as three concrete mappings:

* :class:`RankInterleaveMapping` — rank-level interleaving of 64 B lines;
  the only option for unmodified CXL-DIMMs (lockstep chips) and the naive
  scheme of prior work.
* :class:`ChipInterleaveMapping` — chip-group-level interleaving of
  fine-grained units; exploits the CXLG-DIMM's individual chip selects
  (principle 1).  The group size is the multi-chip-coalescing factor.
* :class:`RowLocalityMapping` — consecutive addresses fill a DRAM row
  before moving to the next bank; used for spatially-local data such as
  hash-bucket location lists (principle 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.dram.request import DramCoord
from repro.dram.timing import DimmGeometry

#: The CXL transfer line / lockstep access granularity in bytes.
LINE_BYTES = 64


class AddressMapping(ABC):
    """Region-local byte address -> :class:`DramCoord`."""

    def __init__(self, geometry: DimmGeometry, row_base: int = 0) -> None:
        self.geometry = geometry
        if row_base < 0:
            raise ValueError("row_base must be non-negative")
        self.row_base = row_base

    @abstractmethod
    def map(self, addr: int) -> DramCoord:
        """Coordinates of region-local byte ``addr``."""

    @abstractmethod
    def rows_used(self, region_bytes: int) -> int:
        """How many rows (per rank x bank x group) a region of this size
        consumes; the allocator stacks ``row_base`` values with this."""

    @property
    @abstractmethod
    def chips_per_group(self) -> int:
        """Chips activated per access under this mapping."""

    def _check(self, addr: int) -> None:
        if addr < 0:
            raise ValueError(f"negative address {addr:#x}")


class RankInterleaveMapping(AddressMapping):
    """64 B lines interleaved across banks then ranks; lockstep chips."""

    def __init__(self, geometry: DimmGeometry, row_base: int = 0) -> None:
        super().__init__(geometry, row_base)
        self._lines_per_row = geometry.row_bytes_per_rank // LINE_BYTES

    @property
    def chips_per_group(self) -> int:
        return self.geometry.chips_per_rank

    def map(self, addr: int) -> DramCoord:
        self._check(addr)
        geo = self.geometry
        line = addr // LINE_BYTES
        bank = line % geo.banks
        rank = (line // geo.banks) % geo.ranks
        slot = line // (geo.banks * geo.ranks)
        row = slot // self._lines_per_row
        column = (slot % self._lines_per_row) * LINE_BYTES + addr % LINE_BYTES
        return DramCoord(rank=rank, bank=bank, row=self.row_base + row,
                         column=column, chip_group=0,
                         chips_per_group=self.geometry.chips_per_rank)

    def rows_used(self, region_bytes: int) -> int:
        bytes_per_row_layer = (
            self.geometry.row_bytes_per_rank * self.geometry.banks * self.geometry.ranks
        )
        return -(-region_bytes // bytes_per_row_layer)


class ChipInterleaveMapping(AddressMapping):
    """Fine-grained units interleaved across chip groups, then banks, ranks.

    ``chips_per_group`` is the multi-chip-coalescing factor: 1 reproduces
    MEDAL's single-chip fine-grained access, 16 degenerates to lockstep.
    """

    def __init__(
        self,
        geometry: DimmGeometry,
        chips_per_group: int = 1,
        row_base: int = 0,
        unit_bytes: int = 0,
    ) -> None:
        """``unit_bytes`` is the interleaving granularity — the size of the
        fine-grained element (e.g. a 32 B occ block), which must live wholly
        inside one chip group so a single chip-select burst sequence fetches
        it.  Defaults to one burst of the group."""
        super().__init__(geometry, row_base)
        self.num_groups = geometry.chip_groups(chips_per_group)
        self._chips_per_group = chips_per_group
        if unit_bytes <= 0:
            unit_bytes = geometry.burst_bytes_per_chip * chips_per_group
        self.unit_bytes = unit_bytes
        self._row_bytes_per_group = geometry.row_bytes_per_chip * chips_per_group
        if self._row_bytes_per_group % self.unit_bytes:
            raise ValueError(
                f"unit_bytes {unit_bytes} must divide the group row size "
                f"{self._row_bytes_per_group}"
            )
        self._units_per_row = self._row_bytes_per_group // self.unit_bytes

    @property
    def chips_per_group(self) -> int:
        return self._chips_per_group

    def map(self, addr: int) -> DramCoord:
        self._check(addr)
        geo = self.geometry
        unit = addr // self.unit_bytes
        group = unit % self.num_groups
        bank = (unit // self.num_groups) % geo.banks
        rank = (unit // (self.num_groups * geo.banks)) % geo.ranks
        slot = unit // (self.num_groups * geo.banks * geo.ranks)
        row = slot // self._units_per_row
        column = (slot % self._units_per_row) * self.unit_bytes + addr % self.unit_bytes
        return DramCoord(rank=rank, bank=bank, row=self.row_base + row,
                         column=column, chip_group=group,
                         chips_per_group=self._chips_per_group)

    def rows_used(self, region_bytes: int) -> int:
        bytes_per_row_layer = (
            self._row_bytes_per_group
            * self.num_groups
            * self.geometry.banks
            * self.geometry.ranks
        )
        return -(-region_bytes // bytes_per_row_layer)


class RowLocalityMapping(AddressMapping):
    """Row-major: consecutive addresses stay in one row as long as possible.

    Used for data with spatial locality so that, e.g., all matching
    locations of one hash bucket land in a single DRAM row (one activate,
    many column hits).  Operates at rank lockstep (the data lives on
    unmodified CXL-DIMMs in BEACON-S) unless a chip group size is given.
    """

    def __init__(
        self,
        geometry: DimmGeometry,
        chips_per_group: int = 0,
        row_base: int = 0,
    ) -> None:
        super().__init__(geometry, row_base)
        if chips_per_group <= 0:
            chips_per_group = geometry.chips_per_rank
        self.num_groups = geometry.chip_groups(chips_per_group)
        self._chips_per_group = chips_per_group
        self.row_bytes = geometry.row_bytes_per_chip * chips_per_group

    @property
    def chips_per_group(self) -> int:
        return self._chips_per_group

    def map(self, addr: int) -> DramCoord:
        self._check(addr)
        geo = self.geometry
        row_slab = addr // self.row_bytes
        column = addr % self.row_bytes
        group = row_slab % self.num_groups
        bank = (row_slab // self.num_groups) % geo.banks
        rank = (row_slab // (self.num_groups * geo.banks)) % geo.ranks
        row = row_slab // (self.num_groups * geo.banks * geo.ranks)
        return DramCoord(rank=rank, bank=bank, row=self.row_base + row,
                         column=column, chip_group=group,
                         chips_per_group=self._chips_per_group)

    def rows_used(self, region_bytes: int) -> int:
        bytes_per_row_layer = (
            self.row_bytes * self.num_groups * self.geometry.banks * self.geometry.ranks
        )
        return -(-region_bytes // bytes_per_row_layer)
