"""Memory management framework (Section IV-C).

The framework manages pool memory at CXL-DIMM granularity: the host sends
allocation requests (application, algorithm, dataset, parameters) to the
CXL switches, which allocate DIMMs in proximity to the NDP modules, migrate
evicted tenants (memory clean), pick per-region address mappings, and hand
back region handles the Address Translators resolve at run time.
"""

from repro.memmgmt.regions import (
    BlockMapLayout,
    Region,
    RegionLayout,
    RegionMap,
    ReplicatedLayout,
    StripedLayout,
)
from repro.memmgmt.allocator import AllocationError, PoolAllocator
from repro.memmgmt.placement import PlacementPlanner
from repro.memmgmt.framework import (
    AllocationRequest,
    AllocationResponse,
    MemoryManagementFramework,
)

__all__ = [
    "AllocationError",
    "AllocationRequest",
    "AllocationResponse",
    "BlockMapLayout",
    "MemoryManagementFramework",
    "PlacementPlanner",
    "PoolAllocator",
    "Region",
    "RegionLayout",
    "RegionMap",
    "ReplicatedLayout",
    "StripedLayout",
]
