"""Architecture & data aware placement planning (Section IV-C).

The planner turns "allocate an FM-index / hash index / Bloom filter /
reference" into a concrete :class:`~repro.memmgmt.regions.RegionLayout` +
per-DIMM address mappings, according to the system flavour and whether the
data placement & address mapping optimization is enabled:

* **naive** (optimization off, the CXL-vanilla configuration): every region
  is striped at 64 B across *all* pool DIMMs with rank-interleaved lockstep
  mapping — data lands anywhere, half the traffic crosses switches, and
  every fine-grained access drags a full 64 B line out of 16 chips.
* **optimized**: principle 1 — interleave at the level the DIMM supports
  (chip groups on CXLG-DIMMs, ranks on unmodified ones); principle 2 —
  spatially-local data mapped row-major.  Plus the placement policy proper:
  read-only indexes are replicated per switch (the pool has abundant
  capacity), profile-hot FM blocks go onto the CXLG-DIMMs nearest the PEs,
  and Bloom filters live on the requesting NDP's own switch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.mapping import (
    AddressMapping,
    ChipInterleaveMapping,
    RankInterleaveMapping,
    RowLocalityMapping,
)
from repro.dram.request import DataClass
from repro.dram.timing import DimmGeometry
from repro.memmgmt.allocator import PoolAllocator
from repro.memmgmt.regions import (
    BlockMapLayout,
    Region,
    RegionLayout,
    ReplicatedLayout,
    StripedLayout,
)

MappingFactory = Callable[[int, int], AddressMapping]


class PlacementPlanner:
    """Builds regions for one system configuration."""

    def __init__(
        self,
        allocator: PoolAllocator,
        geometry: DimmGeometry,
        optimized: bool,
        fine_grained_chips: int = 1,
        near_fraction: float = 0.5,
        baseline_fixed: bool = False,
    ) -> None:
        """``fine_grained_chips`` is the chip-group width used on DIMMs with
        individual chip selects (1 = MEDAL-style single chip; the multi-chip
        coalescing optimization raises it).  ``near_fraction`` caps how much
        of a hot region the planner pushes onto the (scarce) CXLG-DIMMs.
        ``baseline_fixed`` selects the prior work's *fixed* address mapping
        (Section IV-C: "different from the previous work, which provides a
        fixed address mapping scheme"): stripe everything across every DIMM
        but use the customized DIMMs' fine-grained chip access."""
        if not 0.0 < near_fraction <= 1.0:
            raise ValueError("near_fraction must be in (0, 1]")
        self.allocator = allocator
        self.geometry = geometry
        self.optimized = optimized
        self.fine_grained_chips = fine_grained_chips
        self.near_fraction = near_fraction
        self.baseline_fixed = baseline_fixed

    # -- mapping factories ----------------------------------------------------------

    def _lockstep(self) -> MappingFactory:
        return lambda dimm, row_base: RankInterleaveMapping(
            self.geometry, row_base=row_base
        )

    def _per_dimm_fine(self, element_bytes: int = 0) -> MappingFactory:
        """Chip-interleaved on fine-grained DIMMs, lockstep elsewhere.

        ``element_bytes`` is the fine-grained element size; each element
        lives wholly in one chip group (one chip-select burst sequence).
        """

        unit = max(
            element_bytes,
            self.geometry.burst_bytes_per_chip * self.fine_grained_chips,
        )

        def factory(dimm: int, row_base: int) -> AddressMapping:
            if self.allocator.dimm(dimm).is_cxlg:
                return ChipInterleaveMapping(
                    self.geometry, self.fine_grained_chips,
                    row_base=row_base, unit_bytes=unit,
                )
            return RankInterleaveMapping(self.geometry, row_base=row_base)

        return factory

    def _node_to_switch(self):
        """Requester node -> switch resolver for replicated layouts."""
        table = {}
        for index in self.allocator.all_dimms():
            state = self.allocator.dimm(index)
            table[state.node] = state.switch
            table[state.switch] = state.switch
        return lambda node: table.get(node)

    def _row_local(self) -> MappingFactory:
        return lambda dimm, row_base: RowLocalityMapping(
            self.geometry, row_base=row_base
        )

    # -- layout helpers -----------------------------------------------------------------

    def _all_striped(self, stripe: int = 64) -> RegionLayout:
        return StripedLayout(self.allocator.all_dimms(), stripe_bytes=stripe)

    def _switches(self) -> List[str]:
        return sorted({self.allocator.dimm(d).switch for d in self.allocator.all_dimms()})

    def _replicated_per_switch(
        self, inner: Callable[[Sequence[int]], RegionLayout]
    ) -> RegionLayout:
        replicas: Dict[str, RegionLayout] = {}
        for switch in self._switches():
            replicas[switch] = inner(self.allocator.dimms_near(switch))
        return ReplicatedLayout(replicas, home_resolver=self._node_to_switch())

    # -- region planners -----------------------------------------------------------------

    def fm_index(
        self,
        name: str,
        num_blocks: int,
        block_bytes: int,
        hot_scores: Optional[np.ndarray] = None,
    ) -> Region:
        """Place an FM-index (array of fixed-size occ/BWT blocks).

        Optimized + CXLG available: one replica per switch; within a
        replica the profile-hottest blocks fill the switch's CXLG-DIMMs
        (chip-interleaved, fine-grained) and the tail round-robins over the
        unmodified DIMMs.  Optimized without CXLG (BEACON-S): one
        rank-interleaved replica per switch.  Naive: one copy striped over
        everything.
        """
        size = num_blocks * block_bytes
        if self.baseline_fixed:
            return self.allocator.allocate_region(
                name, size, DataClass.FM_INDEX_BLOCK,
                self._all_striped(block_bytes), self._per_dimm_fine(block_bytes),
            )
        if not self.optimized:
            return self.allocator.allocate_region(
                name, size, DataClass.FM_INDEX_BLOCK,
                self._all_striped(), self._lockstep(),
            )
        has_cxlg = any(
            self.allocator.dimm(d).is_cxlg for d in self.allocator.all_dimms()
        )
        if not has_cxlg:
            layout = self._replicated_per_switch(
                lambda dimms: StripedLayout(dimms, stripe_bytes=64)
            )
            return self.allocator.allocate_region(
                name, size, DataClass.FM_INDEX_BLOCK, layout, self._lockstep()
            )
        replicas: Dict[str, RegionLayout] = {}
        for switch in self._switches():
            replicas[switch] = self._hot_block_layout(
                switch, num_blocks, block_bytes, hot_scores
            )
        return self.allocator.allocate_region(
            name, size, DataClass.FM_INDEX_BLOCK,
            ReplicatedLayout(replicas, home_resolver=self._node_to_switch()),
            self._per_dimm_fine(block_bytes),
        )

    def _hot_block_layout(
        self,
        switch: str,
        num_blocks: int,
        block_bytes: int,
        hot_scores: Optional[np.ndarray],
    ) -> RegionLayout:
        near = [
            d for d in self.allocator.dimms_near(switch)
            if self.allocator.dimm(d).is_cxlg
        ]
        far = [
            d for d in self.allocator.dimms_near(switch)
            if not self.allocator.dimm(d).is_cxlg
        ] or near
        if hot_scores is None:
            order = np.arange(num_blocks)
        else:
            if len(hot_scores) != num_blocks:
                raise ValueError("hot_scores length must equal num_blocks")
            order = np.argsort(-np.asarray(hot_scores))  # hottest first
        near_budget = int(num_blocks * self.near_fraction)
        block_to_dimm = np.zeros(num_blocks, dtype=np.int64)
        for rank_pos, block in enumerate(order):
            if near and rank_pos < near_budget:
                block_to_dimm[block] = near[rank_pos % len(near)]
            else:
                block_to_dimm[block] = far[rank_pos % len(far)]
        return BlockMapLayout(block_bytes, block_to_dimm)

    def hash_directory(self, name: str, size: int) -> Region:
        """Bucket directory: fine-grained random 8 B reads."""
        if self.baseline_fixed:
            return self.allocator.allocate_region(
                name, size, DataClass.HASH_DIRECTORY,
                self._all_striped(), self._per_dimm_fine(8),
            )
        if not self.optimized:
            return self.allocator.allocate_region(
                name, size, DataClass.HASH_DIRECTORY,
                self._all_striped(), self._lockstep(),
            )
        layout = self._replicated_per_switch(
            lambda dimms: StripedLayout(dimms, stripe_bytes=64)
        )
        return self.allocator.allocate_region(
            name, size, DataClass.HASH_DIRECTORY, layout, self._per_dimm_fine(8)
        )

    def hash_locations(self, name: str, size: int) -> Region:
        """Location lists: spatially local; row-major when optimized
        (principle 2: a bucket's matches share one DRAM row)."""
        if self.baseline_fixed:
            return self.allocator.allocate_region(
                name, size, DataClass.HASH_LOCATIONS,
                self._all_striped(), self._per_dimm_fine(64),
            )
        if not self.optimized:
            return self.allocator.allocate_region(
                name, size, DataClass.HASH_LOCATIONS,
                self._all_striped(), self._lockstep(),
            )
        layout = self._replicated_per_switch(
            lambda dimms: StripedLayout(
                dimms, stripe_bytes=self.geometry.row_bytes_per_rank
            )
        )
        return self.allocator.allocate_region(
            name, size, DataClass.HASH_LOCATIONS, layout, self._row_local()
        )

    def bloom_filter(
        self,
        name: str,
        size: int,
        home_switch: Optional[str] = None,
        home_dimm: Optional[int] = None,
    ) -> Region:
        """A counting Bloom filter.

        ``home_switch`` names the owning NDP's switch for the per-NDP
        filters of the multi-pass flow; ``None`` means the single global
        filter of single-pass counting.  ``home_dimm`` pins the filter to a
        single DIMM — NEST's design, where every DIMM's filter is strictly
        DIMM-local.  Optimized placement keeps a homed filter on its own
        switch's DIMMs (locality at the cost of striping over fewer DIMMs —
        less DRAM parallelism, the Section VI-D trade-off); the naive
        scheme stripes everything pool-wide.
        """
        if home_dimm is not None:
            return self.allocator.allocate_region(
                name, size, DataClass.BLOOM_COUNTER,
                StripedLayout([home_dimm], stripe_bytes=64),
                self._per_dimm_fine(4),
            )
        if not self.optimized or home_switch is None:
            # Global (or un-optimized) filter: striped pool-wide.  The
            # address-mapping half of the placement optimization still
            # applies when enabled: chip-level interleaving on fine-grained
            # DIMMs so a 4-bit counter RMW doesn't drag a 64 B lockstep
            # line out of 16 chips.
            mapping = self._per_dimm_fine(4) if self.optimized else self._lockstep()
            return self.allocator.allocate_region(
                name, size, DataClass.BLOOM_COUNTER,
                self._all_striped(), mapping,
            )
        dimms = self.allocator.dimms_near(home_switch)
        return self.allocator.allocate_region(
            name, size, DataClass.BLOOM_COUNTER,
            StripedLayout(dimms, stripe_bytes=64), self._per_dimm_fine(4),
        )

    def reference(self, name: str, size: int) -> Region:
        """Reference genome windows: sequential, spatially local."""
        if self.baseline_fixed:
            return self.allocator.allocate_region(
                name, size, DataClass.REFERENCE_WINDOW,
                self._all_striped(self.geometry.row_bytes_per_rank),
                self._row_local(),
            )
        if not self.optimized:
            return self.allocator.allocate_region(
                name, size, DataClass.REFERENCE_WINDOW,
                self._all_striped(), self._lockstep(),
            )
        layout = self._replicated_per_switch(
            lambda dimms: StripedLayout(
                dimms, stripe_bytes=self.geometry.row_bytes_per_rank
            )
        )
        return self.allocator.allocate_region(
            name, size, DataClass.REFERENCE_WINDOW, layout, self._row_local()
        )
