"""DIMM-granularity pool allocation with proximity preference and memory clean.

The framework manages memory "in the granularity of CXL-DIMM": an
allocation names the DIMMs it wants (nearest the requesting NDP module
first), evicted tenants are migrated elsewhere (memory clean), and the
chosen DIMMs are marked dedicated + non-cacheable for the host.  Row-space
accounting per DIMM hands out disjoint ``row_base`` values so every
region's address mapping lands on rows no other region uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.dram.mapping import AddressMapping
from repro.dram.request import DataClass
from repro.memmgmt.regions import Region, RegionLayout, RegionMap


class AllocationError(RuntimeError):
    """Raised when the pool cannot satisfy an allocation."""


@dataclass
class DimmState:
    """Allocator-side view of one DIMM."""

    index: int
    node: str
    switch: str
    is_cxlg: bool
    total_rows: int
    used_rows: int = 0
    dedicated_to: Optional[str] = None
    non_cacheable: bool = False
    #: Bytes of foreign tenant data migrated away during memory clean.
    tenant_bytes: int = 0

    @property
    def free_rows(self) -> int:
        return self.total_rows - self.used_rows


class PoolAllocator:
    """Tracks DIMM ownership and row-space usage across the pool."""

    def __init__(self) -> None:
        self._dimms: Dict[int, DimmState] = {}
        self.region_map = RegionMap()
        self._next_base = 0
        self.migrated_bytes = 0
        self.page_table_updates = 0

    # -- inventory -----------------------------------------------------------------

    def register_dimm(
        self,
        index: int,
        node: str,
        switch: str,
        is_cxlg: bool,
        total_rows: int = 1 << 20,
        tenant_bytes: int = 0,
    ) -> None:
        """Add a DIMM to the allocator's inventory.

        ``tenant_bytes`` models pre-existing data of other applications that
        a dedication must migrate away (the memory clean step).
        """
        if index in self._dimms:
            raise ValueError(f"DIMM {index} already registered")
        self._dimms[index] = DimmState(
            index=index, node=node, switch=switch, is_cxlg=is_cxlg,
            total_rows=total_rows, tenant_bytes=tenant_bytes,
        )

    def dimm(self, index: int) -> DimmState:
        return self._dimms[index]

    def dimms_near(self, switch: str, include_cxlg: bool = True) -> List[int]:
        """DIMMs under ``switch``, CXLG first (nearest to computation)."""
        members = [d for d in self._dimms.values() if d.switch == switch]
        members.sort(key=lambda d: (not d.is_cxlg, d.index))
        return [d.index for d in members if include_cxlg or not d.is_cxlg]

    def all_dimms(self) -> List[int]:
        return sorted(self._dimms)

    # -- dedication / memory clean -----------------------------------------------------

    def dedicate(self, dimm_indices: Sequence[int], owner: str) -> int:
        """Dedicate DIMMs to ``owner``; returns bytes migrated by memory clean.

        Active data of other applications on the chosen DIMMs is migrated to
        non-dedicated DIMMs with free space, the page tables are updated, and
        the DIMMs are marked non-cacheable for the host.
        """
        migrated = 0
        for index in dimm_indices:
            state = self._dimms[index]
            if state.dedicated_to not in (None, owner):
                raise AllocationError(
                    f"DIMM {index} already dedicated to {state.dedicated_to!r}"
                )
            if state.tenant_bytes:
                self._migrate_tenants(state)
                migrated += state.tenant_bytes
                state.tenant_bytes = 0
            state.dedicated_to = owner
            state.non_cacheable = True
        self.migrated_bytes += migrated
        return migrated

    def _migrate_tenants(self, source: DimmState) -> None:
        # Prefer other non-dedicated pool DIMMs; when the whole pool is being
        # dedicated, the tenants fall back to host memory (always possible).
        # Either way the host+switches update one page-table entry per
        # migrated 4 KiB page.
        self.page_table_updates += -(-source.tenant_bytes // 4096)

    # -- region allocation ---------------------------------------------------------------

    def allocate_region(
        self,
        name: str,
        size: int,
        data_class: DataClass,
        layout: RegionLayout,
        mapping_factory: Callable[[int, int], AddressMapping],
    ) -> Region:
        """Create a region over ``layout``.

        ``mapping_factory(dimm_index, row_base)`` builds the per-DIMM
        address mapping; the allocator provides a ``row_base`` disjoint from
        everything else on that DIMM and accounts the rows consumed.
        """
        if size <= 0:
            raise ValueError("region size must be positive")
        mappings: Dict[int, AddressMapping] = {}
        for dimm_index in layout.dimm_indices:
            state = self._dimms.get(dimm_index)
            if state is None:
                raise AllocationError(f"unknown DIMM {dimm_index}")
            mapping = mapping_factory(dimm_index, state.used_rows)
            share = layout.bytes_on_dimm(dimm_index, size)
            rows = mapping.rows_used(share)
            if rows > state.free_rows:
                raise AllocationError(
                    f"DIMM {dimm_index} out of rows for region {name!r} "
                    f"(need {rows}, free {state.free_rows})"
                )
            state.used_rows += rows
            mappings[dimm_index] = mapping
        region = Region(
            name=name, base=self._next_base, size=size,
            data_class=data_class, layout=layout, mappings=mappings,
        )
        # Regions are laid out back to back in virtual space, 1 MiB aligned.
        self._next_base += -(-size // (1 << 20)) * (1 << 20)
        self.region_map.add(region)
        return region

    def free_region(self, name: str) -> None:
        """De-allocate a region (rows are *not* compacted, as in hardware:
        freed rows return to the pool only when the DIMM is released)."""
        self.region_map.remove(name)

    def release(self, dimm_indices: Sequence[int], owner: str) -> None:
        """Return dedicated DIMMs to the host memory space."""
        for index in dimm_indices:
            state = self._dimms[index]
            if state.dedicated_to != owner:
                raise AllocationError(
                    f"DIMM {index} is not dedicated to {owner!r}"
                )
            state.dedicated_to = None
            state.non_cacheable = False
            state.used_rows = 0
