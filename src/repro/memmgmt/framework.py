"""Host <-> switch memory-management protocol (Fig. 8).

The host talks to the CXL switches through the framework interface: an
allocation request carries the application/algorithm/dataset information,
the switches coordinate DIMM allocation + memory clean + data migration,
and a success/failure response returns.  The protocol itself is cheap
control traffic; what matters to the experiments is the *state* it sets up
(dedicated DIMMs, regions, mappings), so the exchange is simulated with a
pair of control messages and the state changes happen synchronously at the
response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cxl.flit import MessageKind
from repro.cxl.topology import MemoryPool
from repro.memmgmt.allocator import AllocationError, PoolAllocator
from repro.memmgmt.regions import Region
from repro.sim.component import Component

#: Wire bytes of a framework control message.
CONTROL_PAYLOAD = 48


@dataclass(frozen=True)
class AllocationRequest:
    """What the host tells the framework (Fig. 8's detailed information)."""

    application: str            # e.g. "fm_seeding", "kmer_counting"
    algorithm: str              # e.g. "backward_search", "single_pass"
    dataset: str                # dataset name (for the logs/reports)
    size_bytes: int
    parameters: Dict[str, object] = field(default_factory=dict)


@dataclass
class AllocationResponse:
    """Success/failure plus the resulting region handle."""

    success: bool
    region: Optional[Region] = None
    error: str = ""
    migrated_bytes: int = 0


class MemoryManagementFramework(Component):
    """The framework endpoint: dedication, allocation, de-allocation."""

    def __init__(
        self,
        engine,
        name: str,
        parent,
        pool: MemoryPool,
        allocator: PoolAllocator,
    ) -> None:
        super().__init__(engine, name, parent)
        self.pool = pool
        self.allocator = allocator
        self.requests_served = 0

    # -- setup-time API ------------------------------------------------------------

    def dedicate_dimms(self, dimm_indices: Sequence[int], owner: str) -> int:
        """Dedicate DIMMs (with memory clean) before the first allocation."""
        migrated = self.allocator.dedicate(dimm_indices, owner)
        self.stats.add("dedicated_dimms", len(dimm_indices))
        self.stats.add("migrated_bytes", migrated)
        tracer = self.engine.tracer
        if tracer:
            tracer.complete(
                "mem", "dedicate", self.path, self.engine.now, 0,
                pid=self.engine.trace_id,
                args={"owner": owner, "dimms": len(dimm_indices),
                      "migrated_bytes": migrated},
            )
        return migrated

    def allocate(
        self,
        request: AllocationRequest,
        build_region: Callable[[], Region],
        on_response: Optional[Callable[[AllocationResponse], None]] = None,
    ) -> AllocationResponse:
        """Run the Fig. 8 allocation workflow.

        ``build_region`` performs the actual placement (via
        :class:`~repro.memmgmt.placement.PlacementPlanner`); the framework
        wraps it in the host->switch->host control exchange and failure
        handling.  Returns the response synchronously *and* optionally
        delivers it through ``on_response`` after the simulated control
        round trip (first switch is the framework interface endpoint).
        """
        try:
            region = build_region()
            response = AllocationResponse(success=True, region=region)
        except AllocationError as exc:
            response = AllocationResponse(success=False, error=str(exc))
        self.requests_served += 1
        self.stats.add("allocations" if response.success else "allocation_failures", 1)
        tracer = self.engine.tracer
        if tracer:
            tracer.complete(
                "mem", "allocate", self.path, self.engine.now, 0,
                pid=self.engine.trace_id,
                args={
                    "application": request.application,
                    "algorithm": request.algorithm,
                    "dataset": request.dataset,
                    "size_bytes": request.size_bytes,
                    "success": response.success,
                    "region": response.region.name if response.region else "",
                },
            )
        self._control_round_trip(on_response, response)
        return response

    def deallocate(
        self,
        region_name: str,
        on_response: Optional[Callable[[AllocationResponse], None]] = None,
    ) -> AllocationResponse:
        """De-allocation workflow: unmap the region, answer the host."""
        try:
            self.allocator.free_region(region_name)
            response = AllocationResponse(success=True)
        except KeyError as exc:
            response = AllocationResponse(success=False, error=str(exc))
        self.stats.add("deallocations" if response.success else "deallocation_failures", 1)
        tracer = self.engine.tracer
        if tracer:
            tracer.complete(
                "mem", "deallocate", self.path, self.engine.now, 0,
                pid=self.engine.trace_id,
                args={"region": region_name, "success": response.success},
            )
        self._control_round_trip(on_response, response)
        return response

    # -- internals --------------------------------------------------------------------

    def _control_round_trip(
        self,
        on_response: Optional[Callable[[AllocationResponse], None]],
        response: AllocationResponse,
    ) -> None:
        fabric = self.pool.fabric
        if fabric.host is None or not fabric.switches:
            if on_response is not None:
                self.engine.schedule(0, lambda: on_response(response))
            return
        switch = next(iter(fabric.switches))
        there = fabric.route(fabric.host.name, switch)
        back = fabric.route(switch, fabric.host.name)

        def after_request() -> None:
            fabric.send(
                back, MessageKind.CONTROL, CONTROL_PAYLOAD,
                on_delivered=(lambda: on_response(response))
                if on_response is not None
                else (lambda: None),
            )

        fabric.send(
            there, MessageKind.CONTROL, CONTROL_PAYLOAD, on_delivered=after_request
        )
