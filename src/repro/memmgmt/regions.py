"""Regions, layouts, and virtual -> physical translation.

A **region** is one logical data structure (an FM-index, a hash directory, a
Bloom filter...) in the pool's flat virtual space.  Its **layout** decides
which DIMM each byte lives on, and a per-(region, DIMM) **address mapping**
(:mod:`repro.dram.mapping`) turns DIMM-local offsets into bank/row/column
coordinates.  The Address Translators in the NDP modules resolve requests
against a :class:`RegionMap` — this module is the data side of the memory
management framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.mapping import AddressMapping
from repro.dram.request import DataClass, DramCoord, MemoryRequest


class RegionLayout:
    """Distributes a region's bytes over DIMMs."""

    def locate(self, offset: int, requester: Optional[str] = None) -> Tuple[int, int]:
        """Map a region-local byte offset to ``(dimm_index, dimm_local_offset)``.

        ``requester`` (a fabric node name) matters only for replicated
        layouts, which serve each requester from its nearest replica.
        """
        raise NotImplementedError

    @property
    def dimm_indices(self) -> Sequence[int]:
        """Every DIMM this layout touches."""
        raise NotImplementedError

    def bytes_on_dimm(self, dimm_index: int, region_size: int) -> int:
        """Upper bound of bytes the layout places on one DIMM."""
        raise NotImplementedError


class StripedLayout(RegionLayout):
    """Round-robin stripes of ``stripe_bytes`` across a DIMM list.

    The naive scheme stripes at 64 B line granularity across every DIMM of
    the pool; placement-optimized configurations stripe across a proximity-
    filtered subset instead.
    """

    def __init__(self, dimms: Sequence[int], stripe_bytes: int = 64) -> None:
        if not dimms:
            raise ValueError("need at least one DIMM")
        if stripe_bytes <= 0:
            raise ValueError("stripe_bytes must be positive")
        self._dimms = list(dimms)
        self.stripe_bytes = stripe_bytes

    def locate(self, offset: int, requester: Optional[str] = None) -> Tuple[int, int]:
        stripe = offset // self.stripe_bytes
        which = stripe % len(self._dimms)
        local_stripe = stripe // len(self._dimms)
        return (
            self._dimms[which],
            local_stripe * self.stripe_bytes + offset % self.stripe_bytes,
        )

    @property
    def dimm_indices(self) -> Sequence[int]:
        return tuple(self._dimms)

    def bytes_on_dimm(self, dimm_index: int, region_size: int) -> int:
        if dimm_index not in self._dimms:
            return 0
        return -(-region_size // len(self._dimms)) + self.stripe_bytes


class BlockMapLayout(RegionLayout):
    """Explicit block -> DIMM assignment (profile-guided hot placement).

    The region is an array of fixed-size blocks; ``block_to_dimm[b]`` names
    the DIMM of block ``b`` and blocks are packed densely per DIMM.  The
    placement planner fills this with "hottest blocks nearest the NDP".
    """

    def __init__(self, block_bytes: int, block_to_dimm: Sequence[int]) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if len(block_to_dimm) == 0:
            raise ValueError("need at least one block")
        self.block_bytes = block_bytes
        self.block_to_dimm = np.asarray(block_to_dimm, dtype=np.int64)
        # Dense per-DIMM slot numbering, preserving block order per DIMM.
        self._slot_of_block = np.zeros(len(block_to_dimm), dtype=np.int64)
        counters: Dict[int, int] = {}
        for b, d in enumerate(self.block_to_dimm):
            d = int(d)
            self._slot_of_block[b] = counters.get(d, 0)
            counters[d] = counters.get(d, 0) + 1
        self._blocks_per_dimm = counters

    def locate(self, offset: int, requester: Optional[str] = None) -> Tuple[int, int]:
        block = offset // self.block_bytes
        if block >= len(self.block_to_dimm):
            raise ValueError(f"offset {offset} beyond mapped blocks")
        dimm = int(self.block_to_dimm[block])
        local = int(self._slot_of_block[block]) * self.block_bytes + offset % self.block_bytes
        return dimm, local

    @property
    def dimm_indices(self) -> Sequence[int]:
        return tuple(sorted(self._blocks_per_dimm))

    def bytes_on_dimm(self, dimm_index: int, region_size: int) -> int:
        return self._blocks_per_dimm.get(dimm_index, 0) * self.block_bytes


class ReplicatedLayout(RegionLayout):
    """A full copy of the region per replica group, served by proximity.

    Used for read-only indexes when capacity allows (the pool has plenty):
    every switch gets its own copy, so no index access ever crosses the
    host.  ``replicas`` maps a *home* (switch name) to an inner layout
    holding that copy; ``home_resolver`` maps a requester fabric node to
    its home switch (the planner wires in the topology's node->switch map).
    """

    def __init__(
        self,
        replicas: Dict[str, RegionLayout],
        home_resolver: Optional[Callable[[str], Optional[str]]] = None,
        default_home: Optional[str] = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = dict(replicas)
        self.home_resolver = home_resolver
        self.default_home = default_home or next(iter(replicas))

    def _home_of(self, requester: Optional[str]) -> str:
        if requester is not None:
            if self.home_resolver is not None:
                home = self.home_resolver(requester)
                if home in self.replicas:
                    return home  # type: ignore[return-value]
            for home in self.replicas:
                if requester == home or requester.startswith(home + "."):
                    return home
        return self.default_home

    def locate(self, offset: int, requester: Optional[str] = None) -> Tuple[int, int]:
        return self.replicas[self._home_of(requester)].locate(offset, requester)

    @property
    def dimm_indices(self) -> Sequence[int]:
        out: List[int] = []
        for layout in self.replicas.values():
            out.extend(layout.dimm_indices)
        return tuple(sorted(set(out)))

    def bytes_on_dimm(self, dimm_index: int, region_size: int) -> int:
        return sum(
            layout.bytes_on_dimm(dimm_index, region_size)
            for layout in self.replicas.values()
        )


@dataclass
class Region:
    """One allocated data structure in the pool's virtual space."""

    name: str
    base: int
    size: int
    data_class: DataClass
    layout: RegionLayout
    #: Per-DIMM address mapping chosen by the framework (keyed by DIMM index).
    mappings: Dict[int, AddressMapping] = field(default_factory=dict)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def end(self) -> int:
        return self.base + self.size


class RegionMap:
    """The pool-wide virtual address space: sorted, non-overlapping regions."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add(self, region: Region) -> None:
        for existing in self._regions:
            if region.base < existing.end() and existing.base < region.end():
                raise ValueError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)

    def remove(self, name: str) -> Region:
        for i, region in enumerate(self._regions):
            if region.name == name:
                return self._regions.pop(i)
        raise KeyError(f"no region named {name!r}")

    def find(self, addr: int) -> Region:
        """Region containing ``addr`` (binary search)."""
        lo, hi = 0, len(self._regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if addr < region.base:
                hi = mid - 1
            elif addr >= region.end():
                lo = mid + 1
            else:
                return region
        raise KeyError(f"address {addr:#x} not in any region")

    def by_name(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self):
        return iter(self._regions)

    # -- translation ------------------------------------------------------------

    def translate(self, request: MemoryRequest, requester: Optional[str] = None) -> None:
        """Fill ``request.dimm_index`` and ``request.coord`` in place."""
        region = self.find(request.addr)
        offset = request.addr - region.base
        dimm_index, local = region.layout.locate(offset, requester)
        mapping = region.mappings[dimm_index]
        request.dimm_index = dimm_index
        request.coord = mapping.map(local)

    def resolve(self, addr: int, requester: Optional[str] = None) -> Tuple[int, DramCoord]:
        """Translate a bare address (convenience for tests)."""
        probe = MemoryRequest(addr=addr, size=1)
        self.translate(probe, requester)
        assert probe.dimm_index is not None and probe.coord is not None
        return probe.dimm_index, probe.coord
