"""Span stitching: from a trace-event stream to per-request/per-task
latency decompositions.

The instrument sites emit *local* facts — a DRAM service span on one
controller, a wire-serialization span on one link, a task park on one NDP
module.  :class:`SpanStitcher` joins them back into end-to-end stories
using the ids threaded through the span args: every memory request carries
its ``req_id`` (the async ``req``/``mem_req`` lifecycle span, the ``req``
arg on DRAM spans, the ``reqs`` list on ``xfer``/``flit_flush`` events)
and every task its ``task_id``.

The stitcher consumes Chrome ``trace_event`` dictionaries — the exact
objects a :class:`~repro.obs.recorder.TraceRecorder` records — either
in-stream (as a recorder listener, no JSON round trip) or post-hoc from a
loaded trace file.  Events may arrive in any order; unmatched halves are
counted, never fatal.

All arithmetic is integer DRAM cycles (timestamps are converted back from
trace microseconds), and each stitched request's phase decomposition sums
to its end-to-end latency *by construction*: measured sub-components are
clamped into their enclosing interval and the remainder is reported as an
explicit ``*_other`` phase rather than silently lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Phase-key prefixes: the request leg (entry to controller arrival), the
#: response leg (service end to completion), and ``fab_`` for requests
#: whose interior could not be split (e.g. routed atomics, which never
#: visit a controller themselves).
LEG_REQUEST = "req"
LEG_RESPONSE = "resp"
LEG_FABRIC = "fab"

#: Mapping from a link's ``role`` arg to the attribution component its
#: serialization (+ propagation, for buses) cycles land in.
_ROLE_COMPONENTS = {
    "cxl_link": ("cxl_serialize", "cxl_propagate"),
    "switch_bus": ("switch_bus", "switch_bus"),
    "host_bus": ("host_detour", "host_detour"),
    "ddr_bus": ("ddr_bus", "ddr_bus"),
}


@dataclass
class _Hop:
    """One wire crossing attributed to a request."""

    start: int
    serialize: int
    lat: int
    wait: int
    role: str


@dataclass
class _RequestTrace:
    """Mutable per-request accumulator (internal)."""

    begin: Optional[int] = None
    end: Optional[int] = None
    task: Optional[int] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    kind: Optional[str] = None
    size: Optional[int] = None
    enq: Optional[int] = None
    svc_start: Optional[int] = None
    svc_dur: Optional[int] = None
    row_state: Optional[str] = None
    mc_tid: Optional[int] = None
    hops: List[_Hop] = field(default_factory=list)
    packer: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class _TaskTrace:
    """Mutable per-task accumulator (internal)."""

    begin: Optional[int] = None
    end: Optional[int] = None
    algorithm: Optional[str] = None
    node: Optional[str] = None
    computes: List[Tuple[int, int]] = field(default_factory=list)
    stalls: List[int] = field(default_factory=list)
    readies: List[int] = field(default_factory=list)


@dataclass
class RequestProfile:
    """One stitched memory request: identity, endpoints, and a phase
    decomposition whose values sum exactly to ``total_cycles``."""

    pid: int
    req_id: int
    task: Optional[int]
    begin: int
    end: int
    phases: Dict[str, int]
    row_state: Optional[str]
    complete: bool
    clamped: bool

    @property
    def total_cycles(self) -> int:
        """End-to-end latency in cycles."""
        return self.end - self.begin


@dataclass
class TaskProfile:
    """One stitched NDP task: lifetime split into compute, memory stall,
    PE wait, and the scheduling remainder."""

    pid: int
    task_id: int
    algorithm: Optional[str]
    begin: int
    end: int
    phases: Dict[str, int]
    complete: bool

    @property
    def total_cycles(self) -> int:
        """Submit-to-complete lifetime in cycles."""
        return self.end - self.begin


@dataclass
class StitchedRun:
    """Everything :class:`SpanStitcher.finalize` reconstructs."""

    requests: List[RequestProfile]
    tasks: List[TaskProfile]
    #: Request/task records missing their begin or end half.
    unmatched_requests: int
    unmatched_tasks: int
    #: (pid, component path) -> total busy cycles from duration spans.
    busy_cycles: Dict[Tuple[int, str], int]
    #: (pid, component path) -> per-span-name busy cycles, for flamegraphs.
    span_stacks: Dict[Tuple[str, int, str, str], int]
    #: pid -> final engine clock (noted runtimes, else last event seen).
    runtimes: Dict[int, int]
    #: pid -> root-component label.
    process_names: Dict[int, str]
    #: (pid, MC path) -> Little's-law inputs: (issued requests, summed
    #: queue+service residence cycles, time-integrated sampled queue depth
    #: in depth-cycles).  Dividing the last two by runtime gives the
    #: predicted and observed time-average occupancy respectively.
    mc_queueing: Dict[Tuple[int, str], Tuple[int, int, int]]
    #: (pid, PE-pool path) -> time-integrated (busy-area, capacity) cycles.
    pe_occupancy: Dict[Tuple[int, str], Tuple[float, int]]
    #: pid -> instant-event counts (host detours, switch turnarounds).
    host_detours: Dict[int, int]
    turnarounds: Dict[int, int]
    events_seen: int


class SpanStitcher:
    """Incremental trace-event consumer that rebuilds request/task stories.

    Feed it events in any order (listener callback or loaded trace list),
    then call :meth:`finalize` once.  ``tck_ns`` must match the recorder
    that produced the events so microsecond timestamps convert back to the
    original integer cycles exactly.
    """

    def __init__(self, tck_ns: float = 1.25) -> None:
        if tck_ns <= 0:
            raise ValueError("tck_ns must be positive")
        self.tck_ns = float(tck_ns)
        self._requests: Dict[Tuple[int, int], _RequestTrace] = {}
        self._tasks: Dict[Tuple[int, int], _TaskTrace] = {}
        self._busy: Dict[Tuple[int, int], int] = {}
        self._stacks: Dict[Tuple[str, int, int, str], int] = {}
        self._names: Dict[Tuple[int, int], str] = {}
        self._pnames: Dict[int, str] = {}
        self._runtimes: Dict[int, int] = {}
        self._max_ts: Dict[int, int] = {}
        self._mc_q: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._pe_samples: Dict[Tuple[int, str], List[Tuple[int, int, int]]] = {}
        self._detours: Dict[int, int] = {}
        self._turnarounds: Dict[int, int] = {}
        self.events_seen = 0

    # -- unit conversion ----------------------------------------------------------

    def _cyc(self, us: float) -> int:
        return int(round(float(us) * 1000.0 / self.tck_ns))

    # -- feeding ------------------------------------------------------------------

    def feed_many(self, events) -> None:
        """Feed an iterable of trace-event dicts."""
        for event in events:
            self.feed(event)

    def feed(self, event: Dict[str, object]) -> None:
        """Consume one trace-event dict (metadata events included)."""
        ph = event.get("ph")
        if ph == "M":
            self._feed_metadata(event)
            return
        self.events_seen += 1
        pid = int(event.get("pid", 0))
        ts = self._cyc(event.get("ts", 0.0))
        if ts > self._max_ts.get(pid, 0):
            self._max_ts[pid] = ts
        if ph == "X":
            self._feed_span(event, pid, ts)
        elif ph in ("b", "e"):
            self._feed_async(event, pid, ts, ph)
        elif ph == "i":
            self._feed_instant(event, pid, ts)
        elif ph == "C":
            self._feed_counter(event, pid, ts)

    def _feed_metadata(self, event) -> None:
        args = event.get("args") or {}
        pid = int(event.get("pid", 0))
        if event.get("name") == "thread_name":
            self._names[(pid, int(event.get("tid", 0)))] = str(
                args.get("name", "")
            )
        elif event.get("name") == "process_name":
            self._pnames[pid] = str(args.get("name", f"engine{pid}"))

    def _feed_span(self, event, pid: int, ts: int) -> None:
        tid = int(event.get("tid", 0))
        dur = self._cyc(event.get("dur", 0.0))
        if ts + dur > self._max_ts.get(pid, 0):
            self._max_ts[pid] = ts + dur
        cat = str(event.get("cat", ""))
        name = str(event.get("name", ""))
        self._busy[(pid, tid)] = self._busy.get((pid, tid), 0) + dur
        key = (cat, pid, tid, name)
        self._stacks[key] = self._stacks.get(key, 0) + dur
        args = event.get("args") or {}
        if cat == "dram" and "req" in args:
            rec = self._request(pid, int(args["req"]))
            rec.svc_start = ts
            rec.svc_dur = dur
            rec.row_state = str(args.get("row_state")) if "row_state" in args else None
            rec.mc_tid = tid
            rec.enq = ts - int(args.get("wait", 0))
            if rec.task is None and args.get("task") is not None:
                rec.task = int(args["task"])
            self._mc_q.setdefault((pid, tid), []).append(
                (ts, int(args.get("queue_depth", 0)))
            )
        elif cat == "cxl" and name == "xfer" and "reqs" in args:
            hop = dict(
                start=ts,
                serialize=dur,
                lat=int(args.get("lat", 0)),
                wait=int(args.get("wait", 0)),
                role=str(args.get("role", "link")),
            )
            for rid in args["reqs"]:
                self._request(pid, int(rid)).hops.append(_Hop(**hop))
        elif cat == "ndp" and name == "compute" and "task" in args:
            self._task(pid, int(args["task"])).computes.append((ts, dur))

    def _feed_async(self, event, pid: int, ts: int, ph: str) -> None:
        name = str(event.get("name", ""))
        cat = str(event.get("cat", ""))
        raw_id = event.get("id", "0x0")
        try:
            event_id = int(str(raw_id), 16)
        except ValueError:
            return
        args = event.get("args") or {}
        if cat == "req" and name == "mem_req":
            rec = self._request(pid, event_id)
            if ph == "b":
                rec.begin = ts
                rec.task = (
                    int(args["task"]) if args.get("task") is not None
                    else rec.task
                )
                rec.src = args.get("src")
                rec.dst = args.get("dst")
                rec.kind = args.get("kind")
                rec.size = args.get("size")
            else:
                rec.end = ts
        elif cat == "ndp" and name == "task":
            task = self._task(pid, event_id)
            if ph == "b":
                task.begin = ts
                task.algorithm = args.get("algorithm")
                task.node = args.get("node")
            else:
                task.end = ts

    def _feed_instant(self, event, pid: int, ts: int) -> None:
        name = str(event.get("name", ""))
        args = event.get("args") or {}
        if name == "flit_flush" and "reqs" in args:
            waits = args.get("waits") or []
            for index, rid in enumerate(args["reqs"]):
                wait = int(waits[index]) if index < len(waits) else 0
                self._request(pid, int(rid)).packer.append((ts, wait))
        elif name == "stall" and "task" in args:
            self._task(pid, int(args["task"])).stalls.append(ts)
        elif name == "ready" and "task" in args:
            self._task(pid, int(args["task"])).readies.append(ts)
        elif name == "host_detour":
            self._detours[pid] = self._detours.get(pid, 0) + 1
        elif name == "turnaround":
            self._turnarounds[pid] = self._turnarounds.get(pid, 0) + 1

    def _feed_counter(self, event, pid: int, ts: int) -> None:
        name = str(event.get("name", ""))
        if not name.endswith(".pes_busy"):
            return
        values = event.get("args") or {}
        path = name[: -len(".pes_busy")]
        self._pe_samples.setdefault((pid, path), []).append(
            (ts, int(values.get("busy", 0)), int(values.get("total", 0)))
        )

    def note_runtime(self, pid: int, now_cycles: int) -> None:
        """Record a pid's exact final engine clock (overrides the
        last-event-timestamp fallback)."""
        if now_cycles > self._runtimes.get(pid, 0):
            self._runtimes[pid] = now_cycles

    # -- internals ----------------------------------------------------------------

    def _request(self, pid: int, rid: int) -> _RequestTrace:
        return self._requests.setdefault((pid, rid), _RequestTrace())

    def _task(self, pid: int, task_id: int) -> _TaskTrace:
        return self._tasks.setdefault((pid, task_id), _TaskTrace())

    # -- finalization --------------------------------------------------------------

    @staticmethod
    def _fit(components: Dict[str, int], interval: int) -> Tuple[Dict[str, int], bool]:
        """Clamp measured components into their enclosing interval.

        Returns the (possibly proportionally scaled-down) components and
        whether scaling was needed.  Guarantees ``sum <= interval``.
        """
        raw = sum(components.values())
        if raw <= interval or raw == 0:
            return components, False
        scaled = {
            key: (value * interval) // raw for key, value in components.items()
        }
        return scaled, True

    def _leg_components(
        self, hops: List[_Hop], packer: List[Tuple[int, int]], prefix: str
    ) -> Dict[str, int]:
        components: Dict[str, int] = {}

        def add(component: str, cycles: int) -> None:
            if cycles > 0:
                key = f"{prefix}_{component}"
                components[key] = components.get(key, 0) + cycles

        for hop in hops:
            serialize_key, lat_key = _ROLE_COMPONENTS.get(
                hop.role, ("link_other", "link_other")
            )
            add(serialize_key, hop.serialize)
            add(lat_key, hop.lat)
            add("link_wait", hop.wait)
        for _cycle, wait in packer:
            add("packer_wait", wait)
        return components

    def _finalize_request(
        self, pid: int, rid: int, rec: _RequestTrace
    ) -> Optional[RequestProfile]:
        if rec.begin is None or rec.end is None or rec.end < rec.begin:
            return None
        total = rec.end - rec.begin
        phases: Dict[str, int] = {}
        clamped = False
        interior_ok = (
            rec.svc_start is not None
            and rec.svc_dur is not None
            and rec.enq is not None
            and rec.begin <= rec.enq <= rec.svc_start
            and rec.svc_start + rec.svc_dur <= rec.end
        )
        if interior_ok:
            svc_end = rec.svc_start + rec.svc_dur
            req_hops = [h for h in rec.hops if h.start < rec.svc_start]
            resp_hops = [h for h in rec.hops if h.start >= rec.svc_start]
            req_packs = [p for p in rec.packer if p[0] < rec.svc_start]
            resp_packs = [p for p in rec.packer if p[0] >= rec.svc_start]

            req_leg = rec.enq - rec.begin
            comps, c1 = self._fit(
                self._leg_components(req_hops, req_packs, LEG_REQUEST), req_leg
            )
            phases.update(comps)
            phases[f"{LEG_REQUEST}_other"] = req_leg - sum(comps.values())

            phases["mc_queue"] = rec.svc_start - rec.enq
            state = rec.row_state or "unknown"
            phases[f"dram_row_{state}"] = rec.svc_dur

            resp_leg = rec.end - svc_end
            comps, c2 = self._fit(
                self._leg_components(resp_hops, resp_packs, LEG_RESPONSE),
                resp_leg,
            )
            phases.update(comps)
            phases[f"{LEG_RESPONSE}_other"] = resp_leg - sum(comps.values())
            clamped = c1 or c2
        else:
            # No controller interior (routed atomics, filtered categories):
            # attribute what the wire spans cover, remainder unattributed.
            comps, clamped = self._fit(
                self._leg_components(rec.hops, rec.packer, LEG_FABRIC), total
            )
            phases.update(comps)
            phases["unattributed"] = total - sum(comps.values())
        phases = {k: v for k, v in phases.items() if v != 0}
        return RequestProfile(
            pid=pid, req_id=rid, task=rec.task,
            begin=rec.begin, end=rec.end, phases=phases,
            row_state=rec.row_state, complete=interior_ok, clamped=clamped,
        )

    def _finalize_task(
        self, pid: int, task_id: int, rec: _TaskTrace
    ) -> Optional[TaskProfile]:
        if rec.begin is None or rec.end is None or rec.end < rec.begin:
            return None
        total = rec.end - rec.begin
        computes = sorted(rec.computes)
        compute = sum(dur for _start, dur in computes)
        # Scheduler instants can land a cycle outside the task's async span
        # (e.g. a ready fired on the same cycle the end event was emitted);
        # clamp them into the lifetime so no interval goes negative.
        clamp = lambda cycle: min(max(cycle, rec.begin), rec.end)  # noqa: E731
        stalls = sorted(clamp(s) for s in rec.stalls)
        readies = sorted(clamp(r) for r in rec.readies)
        compute_starts = [start for start, _dur in computes]

        def next_after(values: List[int], cycle: int, limit: int) -> int:
            for value in values:
                if value >= cycle:
                    return min(value, limit)
            return limit

        mem_stall = 0
        for stall in stalls:
            mem_stall += next_after(readies, stall, rec.end) - stall
        pe_wait = 0
        for ready in readies:
            pe_wait += next_after(compute_starts, ready, rec.end) - ready

        components, clamped = self._fit(
            {"compute": compute, "mem_stall": mem_stall, "pe_wait": pe_wait},
            total,
        )
        phases = {k: v for k, v in components.items() if v != 0}
        phases["sched_other"] = total - sum(components.values())
        complete = bool(computes) and not clamped
        if phases.get("sched_other") == 0:
            phases.pop("sched_other")
        return TaskProfile(
            pid=pid, task_id=task_id, algorithm=rec.algorithm,
            begin=rec.begin, end=rec.end, phases=phases, complete=complete,
        )

    def finalize(self) -> StitchedRun:
        """Resolve every accumulated record into profiles."""
        requests: List[RequestProfile] = []
        unmatched_requests = 0
        for (pid, rid), rec in sorted(self._requests.items()):
            profile = self._finalize_request(pid, rid, rec)
            if profile is None:
                unmatched_requests += 1
            else:
                requests.append(profile)
        tasks: List[TaskProfile] = []
        unmatched_tasks = 0
        for (pid, task_id), rec in sorted(self._tasks.items()):
            profile = self._finalize_task(pid, task_id, rec)
            if profile is None:
                unmatched_tasks += 1
            else:
                tasks.append(profile)

        runtimes = dict(self._max_ts)
        runtimes.update(self._runtimes)

        def name_of(pid: int, tid: int) -> str:
            return self._names.get((pid, tid), f"tid{tid}")

        busy_cycles = {
            (pid, name_of(pid, tid)): cycles
            for (pid, tid), cycles in self._busy.items()
        }
        span_stacks: Dict[Tuple[str, int, str, str], int] = {}
        for (cat, pid, tid, name), cycles in self._stacks.items():
            key = (cat, pid, name_of(pid, tid), name)
            span_stacks[key] = span_stacks.get(key, 0) + cycles

        mc_queueing: Dict[Tuple[int, str], Tuple[int, int, int]] = {}
        per_mc: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for profile in requests:
            if not profile.complete:
                continue
            rec = self._requests[(profile.pid, profile.req_id)]
            if rec.mc_tid is None:
                continue
            wait = profile.phases.get("mc_queue", 0)
            service = rec.svc_dur or 0
            per_mc.setdefault((profile.pid, rec.mc_tid), []).append(
                (1, wait + service)
            )
        for (pid, tid), samples in per_mc.items():
            issues = sum(n for n, _ in samples)
            latency = sum(lat for _, lat in samples)
            # Step-integrate the issue-instant depth samples (each held
            # until the next sample, the last until run end) so the
            # observed value is a time average, comparable to L = lambda*W.
            depth_samples = sorted(
                self._mc_q.get((pid, tid), []), key=lambda s: s[0]
            )
            depth_area = 0
            end = runtimes.get(pid, 0)
            for index, (cycle, depth) in enumerate(depth_samples):
                nxt = (
                    depth_samples[index + 1][0]
                    if index + 1 < len(depth_samples)
                    else max(end, cycle)
                )
                depth_area += depth * max(0, nxt - cycle)
            mc_queueing[(pid, name_of(pid, tid))] = (
                issues, latency, depth_area
            )

        pe_occupancy: Dict[Tuple[int, str], Tuple[float, int]] = {}
        for (pid, path), samples in self._pe_samples.items():
            # Sort by cycle only — a stable sort keeps same-cycle samples
            # in feed order, so the last value at a cycle wins as it did
            # live (acquire and release can land on the same cycle).
            samples = sorted(samples, key=lambda s: s[0])
            end = runtimes.get(pid, samples[-1][0] if samples else 0)
            area = 0.0
            capacity = 0
            for index, (cycle, busy, total) in enumerate(samples):
                nxt = samples[index + 1][0] if index + 1 < len(samples) else end
                area += busy * max(0, nxt - cycle)
                capacity = max(capacity, total, busy)
            pe_occupancy[(pid, path)] = (area, capacity)

        return StitchedRun(
            requests=requests,
            tasks=tasks,
            unmatched_requests=unmatched_requests,
            unmatched_tasks=unmatched_tasks,
            busy_cycles=busy_cycles,
            span_stacks=span_stacks,
            runtimes=runtimes,
            process_names=dict(self._pnames),
            mc_queueing=mc_queueing,
            pe_occupancy=pe_occupancy,
            host_detours=dict(self._detours),
            turnarounds=dict(self._turnarounds),
            events_seen=self.events_seen,
        )
