"""The run ledger: append-only JSONL stream of sweep-job lifecycle events.

Every campaign executed through :class:`~repro.experiments.parallel.
ParallelSweepRunner` can write a **ledger**: one JSON object per line,
each a lifecycle event of one sweep job (or of the campaign itself).
Workers produce their own ``started`` / ``finished`` / ``failed`` events
(stamped with their worker id and wall clock) and ship them back with the
job result; the parent merges them into the single ledger file in
completion order, interleaved with its own ``queued`` / ``heartbeat`` /
campaign bracket events.  The result: any campaign is reconstructable
after the fact — what ran, where, how long, what failed with which
traceback — and a resumable-sweep layer can diff the ledger's
``finished`` set against a job list to find the remainder.

Event names form a **closed registry** (:data:`LEDGER_EVENTS`), enforced
both at runtime (:meth:`LedgerWriter.emit` rejects unknown names) and
statically (the ``telemetry-event-registry`` lint rule requires emit
sites to pass a literal, registered name — the exact discipline the
trace-category registry applies to instrument sites).

Ledger line fields (all lines)::

    {"schema": "repro-ledger/1", "seq": <int>, "event": <LEDGER_EVENTS>,
     "t_wall": <unix seconds>, "worker": "<host>-pid<N>", ...}

plus per-event payload fields — ``job`` (the sweep key), ``scenario``,
``params`` (the job's parameter digest), ``wall_s``, ``index_cache``
(hit/miss/... deltas), ``fingerprint`` (result digest), ``error`` /
``traceback_sha256`` on failure, ``running`` on heartbeats, and the
job/failure totals on ``campaign-end``.  Lines are JSON with sorted
keys; ``seq`` is the parent's merge order, so a ledger sorts stably even
when worker wall clocks disagree.

The ledger is *observational by construction*: nothing in it feeds back
into job execution, and the bench harness's ``--verify-telemetry`` mode
proves result fingerprints are bit-identical with the ledger enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple

from repro.schemas import SCHEMAS

#: Version tag carried on every ledger line.
LEDGER_SCHEMA = SCHEMAS["ledger"]

#: The closed event-name registry.  ``queued``/``started``/``heartbeat``/
#: ``finished``/``failed`` are per-job lifecycle; ``campaign-begin`` /
#: ``campaign-end`` bracket one runner batch.  Extend this tuple (and the
#: docs table) before emitting a new event name — the
#: ``telemetry-event-registry`` lint enforces it.
LEDGER_EVENTS: Tuple[str, ...] = (
    "campaign-begin",
    "queued",
    "started",
    "heartbeat",
    "finished",
    "failed",
    "campaign-end",
)


class LedgerError(ValueError):
    """A malformed ledger line, unknown event name, or foreign schema."""


def worker_id() -> str:
    """Stable-within-process worker identifier: ``<hostname>-pid<N>``."""
    return f"{socket.gethostname()}-pid{os.getpid()}"


def param_digest(func_name: str, args: Tuple[Any, ...],
                 kwargs: Mapping[str, Any]) -> str:
    """Content digest of one sweep job's parameters.

    Built from ``repr`` of the callable's qualified name and its
    arguments (kwargs in sorted key order), so two jobs with identical
    parameters digest identically across processes and sessions — the
    key a result-memoizing layer would cache on.
    """
    payload = repr((func_name, args, tuple(sorted(kwargs.items()))))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def traceback_digest(formatted_traceback: str) -> str:
    """Digest of a formatted traceback (stable failure identity)."""
    return hashlib.sha256(formatted_traceback.encode("utf-8")).hexdigest()


class LedgerWriter:
    """Appends lifecycle events to a JSONL ledger file.

    The writer owns the parent-side sequence number (``seq``) and stamps
    every line with the schema and — unless the event dict already
    carries one — this process's worker id and the current wall time.
    Opened in append mode so successive campaigns can share one ledger
    file; each campaign is bracketed by ``campaign-begin`` /
    ``campaign-end`` events.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle: IO[str] = open(path, "a", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line; returns the full line dict.

        ``event`` must name a registered :data:`LEDGER_EVENTS` member.
        Caller-supplied ``t_wall`` / ``worker`` fields win (worker-origin
        events keep their original stamps through the parent merge).
        """
        if event not in LEDGER_EVENTS:
            raise LedgerError(
                f"unknown ledger event {event!r}; registered: "
                f"{', '.join(LEDGER_EVENTS)}"
            )
        line: Dict[str, Any] = {
            "schema": LEDGER_SCHEMA,
            "seq": self._seq,
            "event": event,
            "worker": worker_id(),
            "t_wall": _wall_now(),
        }
        line.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._handle.flush()
        return line

    def merge(self, events: Iterable[Mapping[str, Any]]) -> int:
        """Append worker-produced event dicts, re-sequencing each.

        Each event keeps its original ``t_wall`` / ``worker`` stamps but
        receives the parent's next ``seq``, so one ledger file has one
        total order.  Returns the number of lines written.
        """
        written = 0
        for event in events:
            payload = {k: v for k, v in event.items()
                       if k not in ("schema", "seq")}
            name = payload.pop("event", None)
            if name is None:
                raise LedgerError(f"worker event without a name: {event!r}")
            self.emit(name, **payload)
            written += 1
        return written

    def close(self) -> None:
        """Flush and close the underlying file."""
        self._handle.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _wall_now() -> float:
    """Wall-clock stamp for ledger lines (isolated for testability)."""
    import time

    return time.time()


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Parse a ledger file; validates schema and event names per line."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if line.get("schema") != LEDGER_SCHEMA:
                raise LedgerError(
                    f"{path}:{lineno}: schema {line.get('schema')!r} is not "
                    f"{LEDGER_SCHEMA}"
                )
            if line.get("event") not in LEDGER_EVENTS:
                raise LedgerError(
                    f"{path}:{lineno}: unknown event {line.get('event')!r}"
                )
            events.append(line)
    return events


@dataclass
class LedgerSummary:
    """Aggregate view of one ledger: the ``status`` command's payload."""

    total_jobs: int = 0
    queued: int = 0
    running: int = 0
    finished: int = 0
    failed: int = 0
    #: Wall seconds from the first to the last event seen.
    elapsed_s: float = 0.0
    #: Finished jobs per wall second over the observed window.
    throughput_jobs_s: float = 0.0
    #: Naive remaining-work estimate: unfinished jobs / throughput.
    eta_s: Optional[float] = None
    #: ``(job key, wall_s)`` of completed jobs, slowest first.
    slowest: List[Tuple[str, float]] = field(default_factory=list)
    #: Jobs finished per worker id.
    per_worker: Dict[str, int] = field(default_factory=dict)
    #: Summed index-cache deltas across finished jobs.
    index_cache: Dict[str, float] = field(default_factory=dict)
    #: ``(job key, traceback digest, error head)`` per failure.
    failures: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Scenario names seen on campaign-begin events.
    scenarios: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (``status --json``)."""
        return {
            "total_jobs": self.total_jobs,
            "queued": self.queued,
            "running": self.running,
            "finished": self.finished,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "throughput_jobs_s": self.throughput_jobs_s,
            "eta_s": self.eta_s,
            "slowest": [list(pair) for pair in self.slowest],
            "per_worker": dict(sorted(self.per_worker.items())),
            "index_cache": dict(sorted(self.index_cache.items())),
            "failures": [list(row) for row in self.failures],
            "scenarios": list(self.scenarios),
        }


def summarize_ledger(events: Iterable[Mapping[str, Any]],
                     slowest_n: int = 5) -> LedgerSummary:
    """Fold ledger events into a :class:`LedgerSummary`.

    Job state is the last lifecycle event seen per key: ``queued`` →
    ``started`` (running) → ``finished`` / ``failed``.  Throughput and
    ETA come from the observed wall-time window, so a live ledger (tail
    of a running campaign) yields a live estimate.
    """
    summary = LedgerSummary()
    state: Dict[str, str] = {}
    wall_by_job: Dict[str, float] = {}
    first_t: Optional[float] = None
    last_t: Optional[float] = None
    for event in events:
        t_wall = event.get("t_wall")
        if isinstance(t_wall, (int, float)):
            first_t = t_wall if first_t is None else min(first_t, t_wall)
            last_t = t_wall if last_t is None else max(last_t, t_wall)
        name = event.get("event")
        if name == "campaign-begin" and event.get("scenario"):
            summary.scenarios.append(str(event["scenario"]))
        job = event.get("job")
        if job is None:
            continue
        if name in ("queued", "started", "finished", "failed"):
            state[job] = name
        if name == "finished":
            wall = float(event.get("wall_s") or 0.0)
            wall_by_job[job] = wall
            worker = str(event.get("worker", "?"))
            summary.per_worker[worker] = summary.per_worker.get(worker, 0) + 1
            for key, value in (event.get("index_cache") or {}).items():
                summary.index_cache[key] = (
                    summary.index_cache.get(key, 0) + value
                )
        elif name == "failed":
            summary.failures.append((
                job,
                str(event.get("traceback_sha256", "")),
                str(event.get("error", "")).splitlines()[0]
                if event.get("error") else "",
            ))
    summary.total_jobs = len(state)
    for status in state.values():
        if status == "queued":
            summary.queued += 1
        elif status == "started":
            summary.running += 1
        elif status == "finished":
            summary.finished += 1
        elif status == "failed":
            summary.failed += 1
    if first_t is not None and last_t is not None:
        summary.elapsed_s = max(0.0, last_t - first_t)
    if summary.elapsed_s > 0 and summary.finished:
        summary.throughput_jobs_s = summary.finished / summary.elapsed_s
        remaining = summary.queued + summary.running
        if remaining:
            summary.eta_s = remaining / summary.throughput_jobs_s
    summary.slowest = sorted(
        wall_by_job.items(), key=lambda kv: (-kv[1], kv[0])
    )[:slowest_n]
    return summary


def render_status(summary: LedgerSummary) -> str:
    """Human-readable status block (the ``python -m repro status`` body)."""
    lines = []
    scenarios = ", ".join(summary.scenarios) or "?"
    lines.append(f"[status] campaigns: {scenarios}")
    lines.append(
        f"[status] jobs: {summary.total_jobs} total — "
        f"{summary.finished} finished, {summary.running} running, "
        f"{summary.queued} queued, {summary.failed} failed"
    )
    lines.append(
        f"[status] elapsed {summary.elapsed_s:.1f}s, throughput "
        f"{summary.throughput_jobs_s:.2f} jobs/s"
        + (f", eta {summary.eta_s:.1f}s" if summary.eta_s is not None
           else "")
    )
    if summary.per_worker:
        per_worker = "  ".join(
            f"{worker}={count}"
            for worker, count in sorted(summary.per_worker.items())
        )
        lines.append(f"[status] per worker: {per_worker}")
    if summary.index_cache:
        cache = "  ".join(
            f"{key}={value:g}"
            for key, value in sorted(summary.index_cache.items())
        )
        lines.append(f"[status] index cache: {cache}")
    if summary.slowest:
        lines.append("[status] slowest jobs:")
        for key, wall in summary.slowest:
            lines.append(f"    {key:40s} {wall:8.2f}s")
    if summary.failures:
        lines.append("[status] failures:")
        for key, digest, head in summary.failures:
            lines.append(f"    {key:40s} {digest[:12]}  {head}")
    return "\n".join(lines) + "\n"
