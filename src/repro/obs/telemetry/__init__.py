"""Fleet telemetry: metrics registry, run ledger, progress, bench gate.

``repro.obs.telemetry`` is the *orchestration-layer* counterpart of the
per-run tracing stack (``repro.obs.recorder`` / ``repro.obs.profile``).
Tracing answers "where did the cycles of one simulation go?"; telemetry
answers "what is the fleet doing?" — which sweep jobs ran where, how
long they took, what the caches did, whether throughput regressed — and
it is the surface every later serving/distributed layer (simulation as a
service, resumable sweeps) emits into.

Four pieces, all stdlib-only and deliberately host-side:

* :mod:`~repro.obs.telemetry.registry` — a process-safe
  :class:`MetricsRegistry` of :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with label sets, deterministic snapshot
  ordering, and exporters to JSON and Prometheus text format.  Worker
  processes snapshot their registries and the parent merges the deltas,
  so pooled sweeps aggregate correctly.
* :mod:`~repro.obs.telemetry.ledger` — the append-only JSONL **run
  ledger**: one lifecycle event per line (``queued`` / ``started`` /
  ``heartbeat`` / ``finished`` / ``failed``, drawn from the closed
  :data:`LEDGER_EVENTS` registry) with wall time, worker id, parameter
  digest, index-cache deltas, and a result fingerprint digest.  Any
  campaign is reconstructable from its ledger, and a resumable-sweep
  layer can diff the ledger against the job list.
* :mod:`~repro.obs.telemetry.progress` — an opt-in, stderr-only
  in-terminal progress line for ``run`` / ``bench``.  Like the tracing
  layer it is purely observational: it never touches simulated state,
  and the bench harness's ``--verify-telemetry`` mode proves result
  fingerprints are bit-identical with it enabled.
* :mod:`~repro.obs.telemetry.compare` — the **bench regression gate**:
  a deterministic ``repro-telemetry/1`` report of per-figure events/sec
  and wall-time deltas between two ``BENCH_results.json`` payloads, with
  a configurable threshold (``python -m repro bench --compare OLD.json``
  exits non-zero on regression; CI runs it against the committed
  baseline).

Everything here reads the wall clock on purpose — job timing *is* the
payload — which is why the ``no-wall-clock`` lint excludes this package;
nothing in it can reach simulated state (see docs/OBSERVABILITY.md,
"Fleet telemetry").
"""

from repro.obs.telemetry.compare import (
    DEFAULT_THRESHOLD,
    TELEMETRY_SCHEMA,
    CompareError,
    compare_bench,
    load_bench_payload,
    render_compare,
    write_report,
)
from repro.obs.telemetry.ledger import (
    LEDGER_EVENTS,
    LEDGER_SCHEMA,
    LedgerError,
    LedgerSummary,
    LedgerWriter,
    param_digest,
    read_ledger,
    render_status,
    summarize_ledger,
    traceback_digest,
    worker_id,
)
from repro.obs.telemetry.progress import ProgressLine
from repro.obs.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    reset_registry,
)

__all__ = [
    "Counter",
    "CompareError",
    "DEFAULT_THRESHOLD",
    "Gauge",
    "Histogram",
    "LEDGER_EVENTS",
    "LEDGER_SCHEMA",
    "LedgerError",
    "LedgerSummary",
    "LedgerWriter",
    "MetricsRegistry",
    "ProgressLine",
    "TELEMETRY_SCHEMA",
    "compare_bench",
    "diff_snapshots",
    "get_registry",
    "load_bench_payload",
    "param_digest",
    "read_ledger",
    "render_compare",
    "render_status",
    "reset_registry",
    "summarize_ledger",
    "traceback_digest",
    "worker_id",
    "write_report",
]
