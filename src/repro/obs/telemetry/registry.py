"""Process-safe metrics registry: Counter / Gauge / Histogram with labels.

A deliberately small, stdlib-only subset of the Prometheus client model,
tuned for this repository's constraints:

* **Deterministic snapshots.**  ``snapshot()`` orders series by
  ``(metric name, sorted label items)`` — never by dict identity or
  insertion accident — so the JSON export of two identical runs is
  byte-identical and the Prometheus text export diffs cleanly.
* **Process-safe aggregation.**  A :class:`ParallelSweepRunner
  <repro.experiments.parallel.ParallelSweepRunner>` worker cannot share
  the parent's registry, so workers ship snapshot *deltas* back with
  their job results and the parent folds them in via
  :meth:`MetricsRegistry.merge_snapshot` (counters and histograms sum;
  gauges take the incoming value, last-writer-wins).  Within one process
  a single :class:`threading.Lock` serializes mutation.
* **No wall clock, no RNG.**  Instruments only store what callers hand
  them; exporters never stamp timestamps, so the artifacts stay
  deterministic for identical inputs.

Usage::

    from repro.obs.telemetry import get_registry

    jobs = get_registry().counter(
        "repro_sweep_jobs_total", "sweep jobs by terminal status",
        labels=("status",))
    jobs.labels(status="finished").inc()
    print(get_registry().render_prometheus())
"""

from __future__ import annotations

import json
import re
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.schemas import SCHEMAS

#: Version tag of the metrics snapshot emitted by :meth:`MetricsRegistry.to_json`.
METRICS_SCHEMA = SCHEMAS["metrics"]

#: Default histogram bucket upper bounds (seconds-flavoured, matching the
#: sweep-job wall times this registry mostly observes).  ``+Inf`` is
#: implicit and always present.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(names: Tuple[str, ...], values: Mapping[str, Any]) -> LabelKey:
    """Canonical ``((name, value), ...)`` key for one labelled series."""
    missing = set(names) - set(values)
    extra = set(values) - set(names)
    if missing or extra:
        raise ValueError(
            f"label mismatch: declared {sorted(names)}, "
            f"got {sorted(values)}"
        )
    return tuple((name, str(values[name])) for name in sorted(names))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping for a label value."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


class _Instrument:
    """Shared mechanics of one named metric family (all label children)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: Tuple[str, ...], lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(labels)
        self._lock = lock
        self._children: Dict[LabelKey, Any] = {}

    def labels(self, **values: Any) -> "_Instrument":
        """The child series for one label-value combination.

        Unlabelled instruments are their own single series; calling
        ``labels()`` with no declared labels returns ``self``.
        """
        key = _label_key(self.label_names, values)
        with self._lock:
            if key not in self._children:
                self._children[key] = self._new_child()
        return _BoundChild(self, key)

    def _new_child(self) -> Any:
        raise NotImplementedError

    def _series(self) -> List[Tuple[LabelKey, Any]]:
        """Deterministically ordered ``(label key, state)`` pairs."""
        with self._lock:
            return sorted(self._children.items())

    # -- single-series conveniences (no labels declared) -------------------

    def _default_key(self) -> LabelKey:
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; "
                "use .labels(...)"
            )
        key: LabelKey = ()
        with self._lock:
            if key not in self._children:
                self._children[key] = self._new_child()
        return key


class _BoundChild:
    """One labelled series of an instrument, bound for mutation."""

    def __init__(self, parent: _Instrument, key: LabelKey) -> None:
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        """Increment (counters and gauges)."""
        self._parent._inc(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement (gauges only)."""
        self._parent._inc(self._key, -amount)

    def set(self, value: float) -> None:
        """Set the current value (gauges only)."""
        self._parent._set(self._key, value)

    def observe(self, value: float) -> None:
        """Record one observation (histograms only)."""
        self._parent._observe(self._key, value)

    @property
    def value(self) -> float:
        """The series' current scalar value (counter/gauge)."""
        return self._parent._value(self._key)


class Counter(_Instrument):
    """Monotonically increasing count (per label set)."""

    kind = "counter"

    def _new_child(self) -> float:
        return 0.0

    def _inc(self, key: LabelKey, amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def _set(self, key: LabelKey, value: float) -> None:
        raise TypeError("counters cannot be set; use inc()")

    def _observe(self, key: LabelKey, value: float) -> None:
        raise TypeError("counters do not observe; use a Histogram")

    def _value(self, key: LabelKey) -> float:
        with self._lock:
            return self._children.get(key, 0.0)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        self._inc(self._default_key(), amount)

    @property
    def value(self) -> float:
        """Current value of the unlabelled series."""
        return self._value(self._default_key())


class Gauge(Counter):
    """A value that can go up and down (per label set)."""

    kind = "gauge"

    def _inc(self, key: LabelKey, amount: float) -> None:
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def _set(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._children[key] = float(value)

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabelled series."""
        self._inc(self._default_key(), -amount)

    def set(self, value: float) -> None:
        """Set the unlabelled series."""
        self._set(self._default_key(), value)


class Histogram(_Instrument):
    """Cumulative-bucket distribution (per label set).

    State per series: one cumulative count per bucket upper bound (plus
    the implicit ``+Inf``), the observation count, and the value sum —
    exactly the Prometheus histogram triple, so the text export is a
    valid scrape target.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labels: Tuple[str, ...],
                 lock: threading.Lock,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labels, lock)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = cleaned

    def _new_child(self) -> Dict[str, Any]:
        return {
            "bucket_counts": [0] * (len(self.buckets) + 1),
            "count": 0,
            "sum": 0.0,
        }

    def _inc(self, key: LabelKey, amount: float) -> None:
        raise TypeError("histograms do not inc; use observe()")

    def _set(self, key: LabelKey, value: float) -> None:
        raise TypeError("histograms cannot be set; use observe()")

    def _value(self, key: LabelKey) -> float:
        with self._lock:
            return self._children[key]["sum"]

    def _observe(self, key: LabelKey, value: float) -> None:
        value = float(value)
        with self._lock:
            state = self._children.setdefault(key, self._new_child())
            state["count"] += 1
            state["sum"] += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["bucket_counts"][i] += 1
                    break
            else:
                state["bucket_counts"][-1] += 1

    def observe(self, value: float) -> None:
        """Record one observation on the unlabelled series."""
        self._observe(self._default_key(), value)


class MetricsRegistry:
    """A named collection of instruments with deterministic export order.

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*: calling
    them twice with the same name returns the same instrument (a kind or
    label-set mismatch raises, so two call sites cannot silently fork a
    metric).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str,
                  labels: Iterable[str], **kwargs: Any) -> _Instrument:
        # Label order is semantically meaningless (series keys sort label
        # names), so normalize the declaration: two call sites declaring
        # the same label *set* in different orders — or a worker delta,
        # which always arrives sorted — must resolve to one instrument.
        labels = tuple(sorted(labels))
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                if existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, got {labels}"
                    )
                return existing
            metric = cls(name, help_text, labels, threading.Lock(), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str,
                labels: Iterable[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str,
              labels: Iterable[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str,
                  labels: Iterable[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` with ``buckets`` bounds."""
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every series as a flat, deterministically ordered row list.

        Rows are sorted by ``(name, labels)`` and each carries ``name``,
        ``kind``, ``help``, ``labels`` (sorted ``[name, value]`` pairs),
        and either ``value`` (counter/gauge) or the histogram triple
        (``buckets``/``bucket_counts``/``count``/``sum``).
        """
        rows: List[Dict[str, Any]] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            for key, state in metric._series():
                row: Dict[str, Any] = {
                    "name": name,
                    "kind": metric.kind,
                    "help": metric.help_text,
                    "labels": [list(pair) for pair in key],
                }
                if metric.kind == "histogram":
                    row["buckets"] = list(metric.buckets)
                    row["bucket_counts"] = list(state["bucket_counts"])
                    row["count"] = state["count"]
                    row["sum"] = state["sum"]
                else:
                    row["value"] = state
                rows.append(row)
        return rows

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document (sorted keys, stable order)."""
        return json.dumps({"schema": METRICS_SCHEMA,
                           "series": self.snapshot()},
                          indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            series = metric._series()
            if not series:
                continue
            lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for key, state in series:
                label_str = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in key
                )
                if metric.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(
                        list(metric.buckets) + [float("inf")],
                        state["bucket_counts"],
                    ):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        bucket_labels = (
                            f'{label_str},le="{le}"' if label_str
                            else f'le="{le}"'
                        )
                        lines.append(
                            f"{name}_bucket{{{bucket_labels}}} {cumulative}"
                        )
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{name}_sum{suffix} {state['sum']:g}")
                    lines.append(f"{name}_count{suffix} {state['count']}")
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{name}{suffix} {state:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- cross-process merge ----------------------------------------------

    def merge_snapshot(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Fold a snapshot (typically a worker's *delta*) into this registry.

        Counters and histograms add; gauges take the incoming value.
        Unknown metrics are created with the snapshot's declared kind and
        labels, so the parent does not need to pre-register everything a
        worker might emit.
        """
        for row in rows:
            name = row["name"]
            kind = row["kind"]
            label_names = tuple(sorted(k for k, _v in row["labels"]))
            values = {k: v for k, v in row["labels"]}
            if kind == "counter":
                metric = self.counter(name, row.get("help", ""), label_names)
                target = metric.labels(**values) if label_names else metric
                if row["value"]:
                    target.inc(row["value"])
            elif kind == "gauge":
                metric = self.gauge(name, row.get("help", ""), label_names)
                target = metric.labels(**values) if label_names else metric
                target.set(row["value"])
            elif kind == "histogram":
                metric = self.histogram(
                    name, row.get("help", ""), label_names,
                    buckets=tuple(row["buckets"]),
                )
                if tuple(float(b) for b in row["buckets"]) != metric.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                key = _label_key(metric.label_names, values)
                with metric._lock:
                    state = metric._children.setdefault(
                        key, metric._new_child()
                    )
                    for i, count in enumerate(row["bucket_counts"]):
                        state["bucket_counts"][i] += count
                    state["count"] += row["count"]
                    state["sum"] += row["sum"]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


def diff_snapshots(
    before: Iterable[Mapping[str, Any]],
    after: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Per-series delta ``after - before`` (for shipping worker activity).

    Counter and histogram rows subtract; gauge rows pass through with
    their ``after`` value (a gauge is a level, not a flow).  Rows whose
    delta is entirely zero are dropped, so an idle worker ships nothing.
    """
    def key_of(row: Mapping[str, Any]) -> Tuple[str, Tuple]:
        return (row["name"], tuple(tuple(p) for p in row["labels"]))

    base = {key_of(row): row for row in before}
    out: List[Dict[str, Any]] = []
    for row in after:
        prior = base.get(key_of(row))
        delta = dict(row)
        if row["kind"] == "gauge":
            out.append(delta)
            continue
        if row["kind"] == "histogram":
            if prior is not None:
                delta["bucket_counts"] = [
                    a - b for a, b in zip(row["bucket_counts"],
                                          prior["bucket_counts"])
                ]
                delta["count"] = row["count"] - prior["count"]
                delta["sum"] = row["sum"] - prior["sum"]
            if delta["count"] == 0:
                continue
        else:
            if prior is not None:
                delta["value"] = row["value"] - prior["value"]
            if delta["value"] == 0:
                continue
        out.append(delta)
    return out


#: The process-wide registry the sweep runner, caches, and serving layer
#: share.  Workers get their own copy (fresh per process) and ship deltas.
_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The shared per-process :class:`MetricsRegistry`."""
    return _GLOBAL_REGISTRY


def reset_registry() -> MetricsRegistry:
    """Replace the global registry with a fresh one (tests, new campaigns)."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = MetricsRegistry()
    return _GLOBAL_REGISTRY
