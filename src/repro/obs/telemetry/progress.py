"""Opt-in, stderr-only live progress line for sweeps and benches.

A :class:`ProgressLine` rewrites a single terminal line (carriage
return, no newline until :meth:`close`) as sweep jobs complete::

    [progress] 12/40 jobs  1 failed  3.4 jobs/s  eta 8.2s  last fig12/d2 (0.41s)

It is deliberately the dumbest possible implementation — no threads, no
timers, no escape codes beyond ``\\r`` — and it writes **only** to the
stream it was given (stderr by default), never to stdout, so paper-style
row output and payload-run determinism contracts are untouched.  Nothing
here reads or writes simulator state; the bench harness's
``--verify-telemetry`` mode proves result fingerprints are bit-identical
with the progress line enabled.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressLine:
    """One in-place terminal progress line over ``total`` jobs.

    Parameters
    ----------
    total:
        Number of jobs in the batch (for the ``k/n`` and ETA fields).
    stream:
        Where to write; defaults to ``sys.stderr``.  Pass any text IO in
        tests.
    enabled:
        ``False`` turns every method into a no-op, so call sites can
        construct one unconditionally and let a flag decide.
    """

    def __init__(self, total: int, stream: Optional[IO[str]] = None,
                 enabled: bool = True) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.failed = 0
        self._started = time.time()
        self._last_width = 0

    def update(self, key: str, wall_s: float, failed: bool = False) -> None:
        """Record one completed job and redraw the line."""
        self.done += 1
        if failed:
            self.failed += 1
        if not self.enabled:
            return
        elapsed = max(time.time() - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else 0.0
        text = (
            f"[progress] {self.done}/{self.total} jobs"
            + (f"  {self.failed} failed" if self.failed else "")
            + f"  {rate:.2f} jobs/s  eta {eta:.1f}s"
            + f"  last {key} ({wall_s:.2f}s)"
        )
        pad = max(0, self._last_width - len(text))
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()
        self._last_width = len(text)

    def close(self) -> None:
        """Finish the line (newline) if anything was drawn."""
        if self.enabled and self._last_width:
            self.stream.write("\n")
            self.stream.flush()
            self._last_width = 0
