"""The bench regression gate: compare two BENCH_results.json payloads.

``BENCH_results.json`` is the committed performance trajectory of the
simulator — per-figure events/sec and wall time at quick scale, with
bit-identical-fingerprint verification.  This module turns that one-shot
artifact into a **machine-checkable gate**: :func:`compare_bench` takes
an old (baseline) and a new payload and produces a deterministic
``repro-telemetry/1`` report of per-figure throughput ratios and
wall-time deltas; any figure whose events/sec falls below ``threshold``
× baseline is a **regression**, and ``python -m repro bench --compare
OLD.json`` exits non-zero so CI can hold the line against the committed
baseline.

Determinism: figures are ordered by sorted name, the report is plain
JSON-ready data with no wall-clock stamps of its own, and identical
inputs produce byte-identical reports.  Figures present on only one side
are reported (``new`` / ``removed``) but never fail the gate — adding a
scenario must not look like a regression.  Figures benched with
``jobs > 1`` report ``events_per_sec == 0`` (events execute in workers);
those are marked ``skipped`` rather than compared against garbage.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.schemas import SCHEMAS

#: Version tag of the comparison report.
TELEMETRY_SCHEMA = SCHEMAS["telemetry"]

#: Default gate: fail when a figure drops below 75% of baseline
#: events/sec (quick-scale wall times are noisy; 25% headroom holds the
#: trajectory without flaking on scheduler jitter).
DEFAULT_THRESHOLD = 0.75

#: Bench payload schemas this gate knows how to read: the current id
#: plus the superseded bench ids (old baselines stay comparable — every
#: bench version so far kept the per-figure events_per_sec/wall_s core).
_KNOWN_BENCH_SCHEMAS = ("repro-bench/1", "repro-bench/2", SCHEMAS["bench"])


class CompareError(ValueError):
    """Unreadable or foreign-schema bench payload handed to the gate."""


def load_bench_payload(path: str) -> Dict[str, Any]:
    """Load one BENCH_results.json; rejects foreign schemas clearly."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CompareError(f"cannot read bench payload {path}: {exc}") from exc
    schema = payload.get("schema")
    if schema not in _KNOWN_BENCH_SCHEMAS:
        raise CompareError(
            f"{path}: schema {schema!r} is not a bench payload "
            f"(known: {', '.join(_KNOWN_BENCH_SCHEMAS)})"
        )
    if not isinstance(payload.get("figures"), dict):
        raise CompareError(f"{path}: bench payload has no figures table")
    return payload


def compare_bench(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Dict[str, Any]:
    """Per-figure throughput/wall deltas between two bench payloads.

    Returns the ``repro-telemetry/1`` report::

        {"schema": "repro-telemetry/1", "threshold": 0.75,
         "figures": [{"name": ..., "verdict": "ok" | "regression" |
                      "improved" | "new" | "removed" | "skipped",
                      "old_events_per_sec": ..., "new_events_per_sec": ...,
                      "throughput_ratio": ..., "old_wall_s": ...,
                      "new_wall_s": ..., "wall_delta_s": ...}, ...],
         "regressions": [names...], "ok": bool}

    ``ok`` is ``False`` iff at least one figure regressed.  ``improved``
    marks figures at ≥ 1/threshold × baseline (the same margin, upward)
    so a gate run also surfaces wins.
    """
    if not 0 < threshold <= 1:
        raise CompareError(
            f"threshold must be in (0, 1], got {threshold}"
        )
    old_figures = dict(old.get("figures", {}))
    new_figures = dict(new.get("figures", {}))
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for name in sorted(set(old_figures) | set(new_figures)):
        old_row = old_figures.get(name)
        new_row = new_figures.get(name)
        row: Dict[str, Any] = {
            "name": name,
            "old_events_per_sec": (
                old_row.get("events_per_sec") if old_row else None
            ),
            "new_events_per_sec": (
                new_row.get("events_per_sec") if new_row else None
            ),
            "old_wall_s": old_row.get("wall_s") if old_row else None,
            "new_wall_s": new_row.get("wall_s") if new_row else None,
            "throughput_ratio": None,
            "wall_delta_s": None,
        }
        if old_row is None:
            row["verdict"] = "new"
        elif new_row is None:
            row["verdict"] = "removed"
        else:
            old_eps = float(old_row.get("events_per_sec") or 0.0)
            new_eps = float(new_row.get("events_per_sec") or 0.0)
            row["wall_delta_s"] = (
                float(new_row.get("wall_s") or 0.0)
                - float(old_row.get("wall_s") or 0.0)
            )
            if old_eps <= 0 or new_eps <= 0:
                # jobs > 1 benches report 0 events/sec (events execute
                # in workers); nothing meaningful to gate on.
                row["verdict"] = "skipped"
            else:
                ratio = new_eps / old_eps
                row["throughput_ratio"] = ratio
                if ratio < threshold:
                    row["verdict"] = "regression"
                    regressions.append(name)
                elif ratio > 1.0 / threshold:
                    row["verdict"] = "improved"
                else:
                    row["verdict"] = "ok"
        rows.append(row)
    return {
        "schema": TELEMETRY_SCHEMA,
        "threshold": threshold,
        "figures": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def render_compare(report: Mapping[str, Any]) -> str:
    """Human-readable table for one comparison report."""
    lines = [
        f"[compare] bench regression gate, threshold "
        f"{report['threshold']:g}x baseline events/sec",
        f"[compare] {'figure':14s} {'old ev/s':>12s} {'new ev/s':>12s} "
        f"{'ratio':>7s} {'wall Δs':>9s}  verdict",
    ]
    for row in report["figures"]:
        old_eps = row["old_events_per_sec"]
        new_eps = row["new_events_per_sec"]
        ratio = row["throughput_ratio"]
        delta = row["wall_delta_s"]
        lines.append(
            f"[compare] {row['name']:14s} "
            + (f"{old_eps:>12.0f} " if old_eps is not None else f"{'—':>12s} ")
            + (f"{new_eps:>12.0f} " if new_eps is not None else f"{'—':>12s} ")
            + (f"{ratio:>7.2f} " if ratio is not None else f"{'—':>7s} ")
            + (f"{delta:>+9.2f} " if delta is not None else f"{'—':>9s} ")
            + f" {row['verdict']}"
        )
    if report["regressions"]:
        lines.append(
            "[compare] REGRESSION: "
            + ", ".join(report["regressions"])
            + f" below {report['threshold']:g}x baseline"
        )
    else:
        lines.append("[compare] ok: no figure below threshold")
    return "\n".join(lines) + "\n"


def write_report(report: Mapping[str, Any], path: str) -> None:
    """Persist a comparison report (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
