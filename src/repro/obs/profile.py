"""Latency attribution: in-stream profiling on top of the trace feed.

:class:`LatencyProfiler` subscribes to a live
:class:`~repro.obs.recorder.TraceRecorder` (see
:meth:`~repro.obs.recorder.TraceRecorder.subscribe`) and stitches the
span/instant/counter stream into per-request and per-task latency
decompositions *as the simulation runs* — no post-hoc JSON reload on the
hot path, and complete even when the recorder's storage ``limit``
truncates what reaches disk.  The same stitching runs post-hoc over a
saved trace via :func:`profile_trace_file`.

The result is a :class:`ProfileReport`: a deterministic JSON artifact
(schema :data:`PROFILE_SCHEMA`) holding, per simulated system, the phase
decomposition of every stitched memory request (queueing, DRAM service by
row state, CXL serialization/propagation, switch traversal, host detour,
packer wait), the task-side split (compute / memory stall / PE wait),
per-component utilization, a Little's-law queueing sanity check, and a
critical-path verdict.  :func:`write_flamegraph` renders the report as
collapsed stacks (``layer;component;phase count``) for any flamegraph
tool; :func:`diff_reports` ranks attribution shifts between two reports.

CLI: ``python -m repro profile <figure>`` and
``python -m repro profile --diff a.json b.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.stitch import SpanStitcher, StitchedRun
from repro.schemas import SCHEMAS

#: Version tag written into every ProfileReport JSON artifact.
PROFILE_SCHEMA = SCHEMAS["profile"]

#: PE-pool utilization at/above which a system is called compute-bound.
COMPUTE_BOUND_UTILIZATION = 0.60

#: Acceptable band for the Little's-law ratio (sampled / predicted queue
#: depth).  Depths are sampled at issue instants — a biased observer — so
#: the check is a sanity gate, not an equality.
LITTLES_LAW_BAND = (0.2, 5.0)

_UTILIZATION_TOP_N = 12


def _r6(value: float) -> float:
    """Round to 6 decimals: keeps report JSON tidy and bit-stable."""
    return round(float(value), 6)


def _merge(into: Dict[str, int], phases: Dict[str, int]) -> None:
    for key, cycles in phases.items():
        into[key] = into.get(key, 0) + cycles


def _phase_layer(phase: str) -> str:
    """Map a request phase key to its owning layer for the verdict."""
    if phase == "mc_queue" or phase.startswith("dram_"):
        return "dram"
    if phase == "unattributed":
        return "other"
    return "cxl"


def _classify(
    request_phases: Dict[str, int], pe_util_max: float
) -> Dict[str, object]:
    """Critical-path verdict for one system.

    Collapses the request phases into layer totals and names what bounds
    the system: a saturated PE pool wins outright; otherwise the heavier
    of the DRAM side (split into queueing vs. device service) and the
    CXL fabric side (split into host-detour vs. fabric) does.
    """
    layers: Dict[str, int] = {}
    for phase, cycles in request_phases.items():
        layer = _phase_layer(phase)
        layers[layer] = layers.get(layer, 0) + cycles
    total = sum(layers.values())
    if pe_util_max >= COMPUTE_BOUND_UTILIZATION:
        bound = "compute"
    elif total == 0:
        bound = "idle"
    elif layers.get("dram", 0) >= layers.get("cxl", 0):
        queue = request_phases.get("mc_queue", 0)
        service = sum(
            c for p, c in request_phases.items() if p.startswith("dram_")
        )
        bound = "dram-queueing" if queue > service else "dram-service"
    else:
        detour = sum(
            c for p, c in request_phases.items() if p.endswith("host_detour")
        )
        fabric = layers.get("cxl", 0)
        bound = "cxl-host-detour" if detour * 2 > fabric else "cxl-fabric"
    dominant, dominant_cycles = "", 0
    for phase in sorted(request_phases):
        if request_phases[phase] > dominant_cycles:
            dominant, dominant_cycles = phase, request_phases[phase]
    return {
        "bound": bound,
        "dominant_phase": dominant,
        "dominant_fraction": _r6(dominant_cycles / total) if total else 0.0,
        "layers_cycles": {k: layers[k] for k in sorted(layers)},
        "pe_utilization_max": _r6(pe_util_max),
    }


@dataclass
class ProfileReport:
    """One run's latency-attribution artifact (schema
    :data:`PROFILE_SCHEMA`).

    Deterministic by construction: all values derive from simulated
    cycles and event counts — no wall-clock, no environment.  ``systems``
    maps each simulated system's root label (``#2``/``#3`` suffixes
    disambiguate repeated labels across sweep points, in engine order) to
    its decomposition; ``stacks`` holds the collapsed flamegraph
    (``layer;component;phase`` -> cycles).
    """

    figure: str
    scale: str
    tck_ns: float
    source: str
    truncated: bool
    events_seen: int
    events_dropped: int
    systems: Dict[str, Dict[str, object]]
    totals: Dict[str, object]
    stacks: Dict[str, int] = field(default_factory=dict)
    schema: str = PROFILE_SCHEMA

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (inverse of :meth:`from_dict`)."""
        return {
            "schema": self.schema,
            "figure": self.figure,
            "scale": self.scale,
            "tck_ns": self.tck_ns,
            "source": self.source,
            "truncated": self.truncated,
            "events_seen": self.events_seen,
            "events_dropped": self.events_dropped,
            "systems": self.systems,
            "totals": self.totals,
            "stacks": self.stacks,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProfileReport":
        """Rebuild a report from :meth:`to_dict` output; rejects foreign
        schemas with a clear error."""
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise ValueError(
                f"not a ProfileReport (schema {schema!r}, "
                f"expected {PROFILE_SCHEMA!r})"
            )
        return cls(
            figure=str(payload.get("figure", "")),
            scale=str(payload.get("scale", "")),
            tck_ns=float(payload.get("tck_ns", 1.25)),
            source=str(payload.get("source", "")),
            truncated=bool(payload.get("truncated", False)),
            events_seen=int(payload.get("events_seen", 0)),
            events_dropped=int(payload.get("events_dropped", 0)),
            systems=dict(payload.get("systems", {})),
            totals=dict(payload.get("totals", {})),
            stacks={
                str(k): int(v)
                for k, v in dict(payload.get("stacks", {})).items()
            },
            schema=str(schema),
        )

    def save(self, path: str) -> None:
        """Write the report as sorted-key JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ProfileReport":
        """Read a report written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _system_labels(stitched: StitchedRun, pids: Sequence[int]) -> Dict[int, str]:
    """pid -> unique display label, ``#N``-suffixed on collisions."""
    labels: Dict[int, str] = {}
    seen: Dict[str, int] = {}
    for pid in pids:
        base = stitched.process_names.get(pid, f"engine{pid}")
        count = seen.get(base, 0) + 1
        seen[base] = count
        labels[pid] = base if count == 1 else f"{base}#{count}"
    return labels


def build_report(
    stitched: StitchedRun,
    figure: str = "",
    scale: str = "",
    tck_ns: float = 1.25,
    source: str = "live",
    truncated: bool = False,
    events_dropped: int = 0,
) -> ProfileReport:
    """Summarize a :class:`~repro.obs.stitch.StitchedRun` into a
    :class:`ProfileReport` (the pure aggregation step — no I/O)."""
    pids = sorted(
        set(stitched.runtimes)
        | set(stitched.process_names)
        | {pid for pid, _ in stitched.busy_cycles}
        | {r.pid for r in stitched.requests}
        | {t.pid for t in stitched.tasks}
    )
    labels = _system_labels(stitched, pids)

    systems: Dict[str, Dict[str, object]] = {}
    total_req_phases: Dict[str, int] = {}
    total_task_phases: Dict[str, int] = {}
    bound_by_system: Dict[str, str] = {}
    stacks: Dict[str, int] = {}

    for pid in pids:
        label = labels[pid]
        runtime = stitched.runtimes.get(pid, 0)

        requests = [r for r in stitched.requests if r.pid == pid]
        req_phases: Dict[str, int] = {}
        row_states: Dict[str, int] = {}
        latency_sum = 0
        complete = partial = clamped = 0
        for request in requests:
            _merge(req_phases, request.phases)
            latency_sum += request.total_cycles
            if request.complete:
                complete += 1
            else:
                partial += 1
            if request.clamped:
                clamped += 1
            if request.row_state is not None:
                row_states[request.row_state] = (
                    row_states.get(request.row_state, 0) + 1
                )
        _merge(total_req_phases, req_phases)

        tasks = [t for t in stitched.tasks if t.pid == pid]
        task_phases: Dict[str, int] = {}
        task_lifetime = 0
        for task in tasks:
            _merge(task_phases, task.phases)
            task_lifetime += task.total_cycles
        _merge(total_task_phases, task_phases)

        busy = {
            path: cycles
            for (busy_pid, path), cycles in stitched.busy_cycles.items()
            if busy_pid == pid and cycles > 0
        }
        top_busy = sorted(busy.items(), key=lambda kv: (-kv[1], kv[0]))
        utilization = {
            path: _r6(cycles / runtime) if runtime else 0.0
            for path, cycles in top_busy[:_UTILIZATION_TOP_N]
        }

        pe_utilization: Dict[str, float] = {}
        for (pe_pid, path), (area, capacity) in sorted(
            stitched.pe_occupancy.items()
        ):
            if pe_pid == pid and runtime and capacity:
                pe_utilization[path] = _r6(area / (capacity * runtime))
        pe_util_max = max(pe_utilization.values(), default=0.0)

        littles: Dict[str, Dict[str, object]] = {}
        for (mc_pid, path), (issues, latency, depth_area) in sorted(
            stitched.mc_queueing.items()
        ):
            if mc_pid != pid or not issues or not runtime:
                continue
            mean_latency = latency / issues
            # Little's law: time-average occupancy L = lambda * W, checked
            # against the controller's own (time-integrated) depth samples.
            predicted = issues / runtime * mean_latency
            sampled = depth_area / runtime
            ratio = sampled / predicted if predicted else 0.0
            littles[path] = {
                "requests": issues,
                "mean_latency_cycles": _r6(mean_latency),
                "predicted_depth": _r6(predicted),
                "sampled_depth": _r6(sampled),
                "ratio": _r6(ratio),
                "ok": bool(
                    LITTLES_LAW_BAND[0] <= ratio <= LITTLES_LAW_BAND[1]
                ),
            }

        critical_path = _classify(req_phases, pe_util_max)
        bound_by_system[label] = str(critical_path["bound"])

        systems[label] = {
            "pid": pid,
            "runtime_cycles": runtime,
            "requests": {
                "count": len(requests),
                "stitched": complete,
                "partial": partial,
                "clamped": clamped,
                "total_latency_cycles": latency_sum,
                "mean_latency_cycles": _r6(
                    latency_sum / len(requests)
                ) if requests else 0.0,
                "phases_cycles": {k: req_phases[k] for k in sorted(req_phases)},
                "row_states": {k: row_states[k] for k in sorted(row_states)},
            },
            "tasks": {
                "count": len(tasks),
                "total_lifetime_cycles": task_lifetime,
                "mean_lifetime_cycles": _r6(
                    task_lifetime / len(tasks)
                ) if tasks else 0.0,
                "phases_cycles": {
                    k: task_phases[k] for k in sorted(task_phases)
                },
            },
            "utilization": utilization,
            "pe_utilization": pe_utilization,
            "littles_law": littles,
            "critical_path": critical_path,
            "host_detours": stitched.host_detours.get(pid, 0),
            "turnarounds": stitched.turnarounds.get(pid, 0),
        }

        for phase in sorted(req_phases):
            stacks[f"request;{label};{phase}"] = req_phases[phase]
        for phase in sorted(task_phases):
            stacks[f"task;{label};{phase}"] = task_phases[phase]

    for (cat, pid, path, name), cycles in sorted(stitched.span_stacks.items()):
        if cycles <= 0:
            continue
        stack = f"{cat};{labels.get(pid, f'engine{pid}')}:{path};{name}"
        stacks[stack] = stacks.get(stack, 0) + cycles

    totals = {
        "systems": len(pids),
        "requests": {
            "count": sum(
                s["requests"]["count"] for s in systems.values()
            ),
            "unmatched": stitched.unmatched_requests,
            "phases_cycles": {
                k: total_req_phases[k] for k in sorted(total_req_phases)
            },
        },
        "tasks": {
            "count": sum(s["tasks"]["count"] for s in systems.values()),
            "unmatched": stitched.unmatched_tasks,
            "phases_cycles": {
                k: total_task_phases[k] for k in sorted(total_task_phases)
            },
        },
        "bound_by_system": bound_by_system,
    }

    return ProfileReport(
        figure=figure,
        scale=scale,
        tck_ns=tck_ns,
        source=source,
        truncated=truncated,
        events_seen=stitched.events_seen,
        events_dropped=events_dropped,
        systems=systems,
        totals=totals,
        stacks=stacks,
    )


class LatencyProfiler:
    """In-stream latency profiler: a recorder listener that stitches the
    event feed live.

    Usage::

        profiler = LatencyProfiler().attach(session.recorder)
        ...  # run experiments under the session
        report = profiler.report(figure="fig16", scale="quick")

    Attaching subscribes to the recorder's pre-cap listener feed, so the
    report is complete even when the recorder stores few (or zero)
    events.  ``report()`` may be called repeatedly; each call finalizes
    the current accumulated state.
    """

    def __init__(self, tck_ns: float = 1.25) -> None:
        self.stitcher = SpanStitcher(tck_ns=tck_ns)
        self.recorder = None

    def attach(self, recorder) -> "LatencyProfiler":
        """Subscribe to ``recorder``'s event feed; returns ``self``."""
        self.recorder = recorder
        recorder.subscribe(self.stitcher.feed)
        return self

    def report(self, figure: str = "", scale: str = "") -> ProfileReport:
        """Finalize the stream into a :class:`ProfileReport`.

        A live report is never ``truncated``: the listener feed bypasses
        the recorder's *storage* cap, so the profiler saw every event
        even if the trace file on disk did not keep them all.
        """
        if self.recorder is not None:
            self.stitcher.feed_many(self.recorder.metadata_events())
            for pid, now_cycles in self.recorder.runtimes.items():
                self.stitcher.note_runtime(pid, now_cycles)
        return build_report(
            self.stitcher.finalize(),
            figure=figure,
            scale=scale,
            tck_ns=self.stitcher.tck_ns,
            source="live",
            truncated=False,
            events_dropped=0,
        )


def profile_events(
    events: Sequence[Dict[str, object]],
    tck_ns: float = 1.25,
    figure: str = "",
    scale: str = "",
    truncated: bool = False,
    events_dropped: int = 0,
    runtimes: Optional[Dict[int, int]] = None,
) -> ProfileReport:
    """Stitch an in-memory list of trace-event dicts into a report."""
    stitcher = SpanStitcher(tck_ns=tck_ns)
    stitcher.feed_many(events)
    if runtimes:
        for pid, now_cycles in runtimes.items():
            stitcher.note_runtime(int(pid), int(now_cycles))
    return build_report(
        stitcher.finalize(),
        figure=figure,
        scale=scale,
        tck_ns=tck_ns,
        source="events",
        truncated=truncated,
        events_dropped=events_dropped,
    )


def profile_trace_file(path: str, figure: str = "") -> ProfileReport:
    """Profile a saved trace file (post-hoc path).

    Reads ``tck_ns``, drop counts, and exact engine runtimes from the
    file's ``otherData`` when present.  A truncated trace yields a report
    flagged ``truncated`` — phase decompositions still sum per stitched
    request, but coverage is partial; prefer in-stream profiling
    (:class:`LatencyProfiler`) for complete attribution.
    """
    from repro.obs.export import load_trace_payload

    payload = load_trace_payload(path)
    other = payload.get("otherData") or {}
    dropped = int(other.get("dropped", 0))
    runtimes = {
        int(pid): int(cycles)
        for pid, cycles in (other.get("runtimes_cycles") or {}).items()
    }
    return profile_events(
        list(payload.get("traceEvents", [])),
        tck_ns=float(other.get("tck_ns", 1.25)),
        figure=figure,
        truncated=bool(other.get("truncated", dropped > 0)),
        events_dropped=dropped,
        runtimes=runtimes,
    )


def write_flamegraph(report: ProfileReport, path: str) -> int:
    """Write the report's collapsed stacks (``frame;frame;frame count``
    lines, cycle-weighted) for flamegraph tooling; returns line count."""
    lines = [
        f"{stack} {count}"
        for stack, count in sorted(report.stacks.items())
        if count > 0
    ]
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


@dataclass
class AttributionDelta:
    """One ranked row of a report diff."""

    system: str
    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        """Signed change (``b - a``)."""
        return self.b - self.a

    @property
    def relative(self) -> Optional[float]:
        """Relative change, or ``None`` when ``a`` is zero."""
        return self.delta / self.a if self.a else None


def _flatten_metrics(report: Dict[str, object]) -> Dict[Tuple[str, str], float]:
    out: Dict[Tuple[str, str], float] = {}
    for label, system in (report.get("systems") or {}).items():
        out[(label, "runtime_cycles")] = float(system.get("runtime_cycles", 0))
        requests = system.get("requests") or {}
        out[(label, "request_mean_latency_cycles")] = float(
            requests.get("mean_latency_cycles", 0.0)
        )
        for phase, cycles in (requests.get("phases_cycles") or {}).items():
            out[(label, f"request_phase.{phase}")] = float(cycles)
        tasks = system.get("tasks") or {}
        for phase, cycles in (tasks.get("phases_cycles") or {}).items():
            out[(label, f"task_phase.{phase}")] = float(cycles)
    return out


def diff_reports(a, b) -> List[AttributionDelta]:
    """Rank attribution deltas between two reports, largest |Δ| first.

    Accepts :class:`ProfileReport` instances or their ``to_dict`` forms.
    Compares per-system runtime, mean request latency, and every request/
    task phase total; systems are matched by label, and metrics present
    in only one report diff against zero.
    """
    dict_a = a.to_dict() if isinstance(a, ProfileReport) else dict(a)
    dict_b = b.to_dict() if isinstance(b, ProfileReport) else dict(b)
    metrics_a = _flatten_metrics(dict_a)
    metrics_b = _flatten_metrics(dict_b)
    deltas = [
        AttributionDelta(
            system=label, metric=metric,
            a=metrics_a.get((label, metric), 0.0),
            b=metrics_b.get((label, metric), 0.0),
        )
        for label, metric in sorted(set(metrics_a) | set(metrics_b))
    ]
    deltas = [d for d in deltas if d.delta != 0 or d.a != 0 or d.b != 0]
    deltas.sort(key=lambda d: (-abs(d.delta), d.system, d.metric))
    return deltas


def format_diff(deltas: Sequence[AttributionDelta], top: int = 20) -> str:
    """Human-readable table of the top ``top`` attribution deltas."""
    if not deltas:
        return "no attribution differences\n"
    lines = [
        f"{'system':<24} {'metric':<36} {'a':>14} {'b':>14} "
        f"{'delta':>14} {'rel':>8}"
    ]
    for delta in list(deltas)[:top]:
        rel = (
            f"{delta.relative:+.1%}" if delta.relative is not None else "new"
        )
        lines.append(
            f"{delta.system:<24.24} {delta.metric:<36.36} "
            f"{delta.a:>14.0f} {delta.b:>14.0f} "
            f"{delta.delta:>+14.0f} {rel:>8}"
        )
    return "\n".join(lines) + "\n"


def render_summary(report: ProfileReport) -> str:
    """Terminal summary of a report: per-system verdicts and top phases."""
    lines: List[str] = []
    lines.append(
        f"profile {report.figure or '<unnamed>'} "
        f"[{report.scale or 'default'}] — schema {report.schema}, "
        f"{report.events_seen} events"
        + (", TRUNCATED source" if report.truncated else "")
    )
    for label, system in report.systems.items():
        requests = system["requests"]
        tasks = system["tasks"]
        critical = system["critical_path"]
        lines.append(
            f"  {label}: runtime {system['runtime_cycles']} cyc — "
            f"bound: {critical['bound']}"
        )
        if requests["count"]:
            lines.append(
                f"    requests: {requests['count']} "
                f"(stitched {requests['stitched']}, "
                f"partial {requests['partial']}), mean latency "
                f"{requests['mean_latency_cycles']:.1f} cyc"
            )
            phases = requests["phases_cycles"]
            total = sum(phases.values()) or 1
            ranked = sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))
            parts = ", ".join(
                f"{phase} {cycles / total:.0%}"
                for phase, cycles in ranked[:5]
            )
            lines.append(f"    latency: {parts}")
        if tasks["count"]:
            phases = tasks["phases_cycles"]
            total = sum(phases.values()) or 1
            parts = ", ".join(
                f"{phase} {cycles / total:.0%}"
                for phase, cycles in sorted(
                    phases.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            lines.append(f"    tasks: {tasks['count']} — {parts}")
        bad_littles = [
            path
            for path, check in system["littles_law"].items()
            if not check["ok"]
        ]
        if bad_littles:
            lines.append(
                "    littles-law outliers: " + ", ".join(bad_littles)
            )
    return "\n".join(lines) + "\n"
