"""Live metric sampling: periodic StatScope snapshots along the timeline.

Post-run diagnostics (:mod:`repro.experiments.diagnostics`) answer *what*
a run cost; :class:`MetricsSampler` answers *when*, by snapshotting the
statistics tree at a configurable simulated-time interval while the run is
in flight.

The sampler is deliberately **passive**: it never schedules engine events.
Scheduling a periodic poller event would extend ``Engine.run()`` (the
queue would drain later) and could advance the final clock past the last
real event — breaking the bit-identical guarantee the whole observability
layer is built on.  Instead the sampler piggybacks on the trace recorder:
every record call passes the current cycle through
:meth:`MetricsSampler.maybe_sample`, which snapshots once per elapsed
interval.  Sample times therefore land on traced-event timestamps, which
in practice are dense enough for any live-metrics view, and simulated
results cannot be perturbed by construction.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import IO, Dict, Iterable, List, Optional, Union

from repro.schemas import SCHEMAS

#: Version tag of the per-interval samples artifact (:meth:`MetricsSampler.to_json`).
METRICS_SAMPLES_SCHEMA = SCHEMAS["metrics-samples"]


@dataclass(frozen=True)
class MetricsSample:
    """One sampled counter value: where, when, what."""

    cycle: int
    pid: int
    path: str
    key: str
    value: float


class MetricsSampler:
    """Snapshots registered StatScope trees every ``interval_cycles``.

    Parameters
    ----------
    interval_cycles:
        Minimum simulated cycles between snapshots of one engine's tree.
    keys:
        Counter names to sample; ``None`` samples every counter present.
    """

    def __init__(
        self,
        interval_cycles: int,
        keys: Optional[Iterable[str]] = None,
    ) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.interval_cycles = int(interval_cycles)
        self.keys = frozenset(keys) if keys is not None else None
        self.samples: List[MetricsSample] = []
        self._next_at: Dict[int, int] = {}

    def maybe_sample(self, recorder, pid: int, cycle: int) -> None:
        """Snapshot ``pid``'s scope tree if its interval has elapsed.

        Called by :class:`~repro.obs.recorder.TraceRecorder` on every
        record; cheap when the interval has not passed (one dict lookup
        and a comparison).
        """
        if cycle < self._next_at.get(pid, 0):
            return
        # Align the next deadline to the interval grid so burst-y record
        # activity cannot drift the sampling cadence.
        self._next_at[pid] = (
            cycle - cycle % self.interval_cycles + self.interval_cycles
        )
        for scope_pid, scope in recorder.root_scopes:
            if scope_pid != pid:
                continue
            for node in scope.walk():
                for key, value in node.counters.items():
                    if self.keys is not None and key not in self.keys:
                        continue
                    self.samples.append(
                        MetricsSample(cycle, pid, node.path, key, value)
                    )

    @property
    def sample_count(self) -> int:
        """Number of individual (path, key) samples taken."""
        return len(self.samples)

    def rows(self) -> List[List[Union[int, str, float]]]:
        """Every sample as a flat ``[cycle, pid, path, key, value]`` row.

        This is the **single source of row order** for every export:
        samples appear exactly as taken (snapshot order along the
        timeline), so the CSV and JSON forms of one sampler are
        row-for-row identical.
        """
        return [[s.cycle, s.pid, s.path, s.key, s.value]
                for s in self.samples]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The samples as a JSON document (``repro-metrics-samples/1``).

        Shares :meth:`rows` with :func:`write_metrics_csv`, so the JSON
        ``rows`` array carries the same values in the same order as the
        CSV body; ``columns`` names them.
        """
        import json

        return json.dumps(
            {
                "schema": METRICS_SAMPLES_SCHEMA,
                "columns": list(METRICS_COLUMNS),
                "interval_cycles": self.interval_cycles,
                "rows": self.rows(),
            },
            indent=indent, sort_keys=True,
        )


#: Export column order, shared by the CSV header and the JSON ``columns``.
METRICS_COLUMNS = ("cycle", "pid", "path", "key", "value")


def write_metrics_csv(
    sampler: MetricsSampler, destination: Union[str, IO[str]]
) -> int:
    """Write a sampler's rows as flat CSV; returns the row count.

    Columns: ``cycle, pid, path, key, value`` — one row per sampled
    counter per snapshot, trivially loadable with pandas or a
    spreadsheet.  Rows come from :meth:`MetricsSampler.rows`, the same
    source :meth:`MetricsSampler.to_json` exports, so the two formats
    always agree.
    """
    def _write(handle: IO[str]) -> int:
        writer = csv.writer(handle)
        writer.writerow(list(METRICS_COLUMNS))
        rows = sampler.rows()
        writer.writerows(rows)
        return len(rows)

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8", newline="") as handle:
            return _write(handle)
    return _write(destination)


def write_metrics_json(
    sampler: MetricsSampler, destination: Union[str, IO[str]]
) -> int:
    """Write :meth:`MetricsSampler.to_json` to a file; returns row count."""
    text = sampler.to_json()
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        destination.write(text + "\n")
    return sampler.sample_count
