"""Installing a recorder: process-global tracing sessions.

The experiment stack builds its engines internally (one per sweep point),
so tracing is enabled by *installing* a recorder as the default every new
:class:`~repro.sim.engine.Engine` picks up at construction.
:class:`TraceSession` is the context-manager wrapper the CLI, the trace
example, and the parallel runner use::

    with TraceSession(categories={"dram", "cxl"}) as session:
        fig12_fm_seeding.run(ExperimentScale.quick(), runner=serial_runner)
    session.save("trace.json", metrics_path="metrics.csv")

Installation is per process; the parallel sweep runner installs one
session inside each worker so every job gets its own trace file.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional

from repro.obs.export import write_chrome_trace
from repro.obs.metrics import MetricsSampler, write_metrics_csv
from repro.obs.profile import LatencyProfiler, ProfileReport
from repro.obs.recorder import DEFAULT_EVENT_LIMIT, TraceRecorder
from repro.sim.engine import Engine

#: Default metric-sampling interval (simulated cycles) when a session is
#: created with metrics enabled but no explicit interval: 50k cycles =
#: 62.5 simulated microseconds at DDR4-1600.
DEFAULT_METRICS_INTERVAL = 50_000


def install(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the tracer of every subsequently built engine."""
    Engine.default_tracer = recorder


def uninstall() -> None:
    """Stop tracing newly built engines."""
    Engine.default_tracer = None


def current_recorder() -> Optional[TraceRecorder]:
    """The recorder new engines would pick up, or ``None``."""
    return Engine.default_tracer


class TraceSession:
    """One tracing window: recorder (+ optional metrics sampler) with
    scoped installation.

    Parameters mirror :class:`~repro.obs.recorder.TraceRecorder`;
    ``metrics_interval`` additionally attaches a
    :class:`~repro.obs.metrics.MetricsSampler` at that simulated-cycle
    cadence, and ``profile=True`` attaches an in-stream
    :class:`~repro.obs.profile.LatencyProfiler` (which sees the full
    event feed regardless of ``limit`` — a profiled-only session can run
    with ``limit=0`` and store nothing).  Sessions nest: the previously
    installed recorder (if any) is restored on exit.
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        limit: Optional[int] = DEFAULT_EVENT_LIMIT,
        metrics_interval: Optional[int] = None,
        tck_ns: float = 1.25,
        profile: bool = False,
    ) -> None:
        self.recorder = TraceRecorder(
            tck_ns=tck_ns, categories=categories, limit=limit
        )
        self.sampler: Optional[MetricsSampler] = None
        if metrics_interval is not None:
            self.sampler = MetricsSampler(metrics_interval)
            self.recorder.metrics = self.sampler
        self.profiler: Optional[LatencyProfiler] = None
        if profile:
            self.profiler = LatencyProfiler(tck_ns=tck_ns).attach(
                self.recorder
            )
        self._previous: Optional[TraceRecorder] = None

    def __enter__(self) -> "TraceSession":
        self._previous = current_recorder()
        install(self.recorder)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._previous is None:
            uninstall()
        else:
            install(self._previous)
        self._previous = None

    def save(self, trace_path: str,
             metrics_path: Optional[str] = None) -> int:
        """Write the trace JSON (and, when sampling, the metrics CSV);
        returns the number of trace events written.

        Warns (one line) when the recorder's event limit actually dropped
        events, so a silently partial trace never masquerades as a full
        one; the file itself also carries ``otherData.truncated``.
        """
        if self.recorder.truncated:
            warnings.warn(
                f"trace truncated: event limit {self.recorder.limit} "
                f"dropped {self.recorder.dropped} events "
                f"(kept {self.recorder.recorded}); raise --trace-limit "
                "for a complete file",
                RuntimeWarning,
                stacklevel=2,
            )
        written = write_chrome_trace(self.recorder, trace_path)
        if metrics_path is not None:
            if self.sampler is None:
                raise ValueError(
                    "session has no metrics sampler; pass metrics_interval="
                )
            write_metrics_csv(self.sampler, metrics_path)
        return written

    def profile_report(self, figure: str = "",
                       scale: str = "") -> ProfileReport:
        """The in-stream profiler's report (requires ``profile=True``)."""
        if self.profiler is None:
            raise ValueError("session has no profiler; pass profile=True")
        return self.profiler.report(figure=figure, scale=scale)
