"""Trace export and inspection helpers.

:func:`write_chrome_trace` serializes a recorder to the Chrome/Perfetto
``trace_event`` JSON object format (a ``traceEvents`` array plus
``displayTimeUnit``), loadable by https://ui.perfetto.dev and
``chrome://tracing``.  :func:`load_trace`, :func:`trace_layers`, and
:func:`busiest_components` are the matching read-side helpers used by the
CLI summary, the trace example, and the tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple, Union


def write_chrome_trace(recorder, path: str, indent: Union[int, None] = None) -> int:
    """Write ``recorder``'s events as a Chrome trace JSON file.

    Returns the number of trace events written (metadata included).
    ``indent`` pretty-prints for humans at the cost of file size.
    """
    events = recorder.chrome_events()
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "tck_ns": recorder.tck_ns,
            "recorded": recorder.recorded,
            "dropped": recorder.dropped,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
    return len(events)


def load_trace(path: str) -> List[Dict[str, object]]:
    """Load a trace file; returns its ``traceEvents`` list.

    Accepts both the object format written here and a bare JSON array
    (the other legal ``trace_event`` container).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        return payload
    return list(payload["traceEvents"])


def trace_layers(events: Sequence[Dict[str, object]]) -> frozenset:
    """Categories present among non-metadata events."""
    return frozenset(
        str(e["cat"]) for e in events if e.get("ph") != "M" and "cat" in e
    )


def _thread_names(events: Sequence[Dict[str, object]]) -> Dict[Tuple[int, int], str]:
    """``(pid, tid) -> label``, qualified as ``pid<N>:<component path>`` so
    the same component in two simulated systems stays distinguishable."""
    names: Dict[Tuple[int, int], str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            args = e.get("args") or {}
            pid = int(e["pid"])
            names[(pid, int(e["tid"]))] = f"pid{pid}:{args.get('name', '')}"
    return names


def busiest_components(
    events: Sequence[Dict[str, object]], n: int = 5
) -> List[Tuple[str, float]]:
    """Top ``n`` components by total span time, from complete events.

    Returns ``[(component path, total busy microseconds), ...]`` sorted
    busiest-first; async and instant events carry no duration and are
    ignored.  Works on a live recorder's :meth:`chrome_events` output or
    on a :func:`load_trace` result.
    """
    names = _thread_names(events)
    busy: Dict[Tuple[int, int], float] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        key = (int(e["pid"]), int(e["tid"]))
        busy[key] = busy.get(key, 0.0) + float(e.get("dur", 0.0))
    ranked = sorted(busy.items(), key=lambda item: -item[1])[:n]
    return [
        (names.get(key, f"pid{key[0]}.tid{key[1]}"), total)
        for key, total in ranked
    ]
