"""Trace export and inspection helpers.

:func:`write_chrome_trace` serializes a recorder to the Chrome/Perfetto
``trace_event`` JSON object format (a ``traceEvents`` array plus
``displayTimeUnit``), loadable by https://ui.perfetto.dev and
``chrome://tracing``.  :func:`load_trace`, :func:`load_trace_payload`,
:func:`trace_layers`, and :func:`busiest_components` are the matching
read-side helpers used by the CLI summary, the trace example, the
post-hoc profiler, and the tests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple, Union


class TraceFormatError(ValueError):
    """A trace file is unreadable: truncated/partial JSON (e.g. a run
    killed mid-write) or a payload without a ``traceEvents`` array."""


def write_chrome_trace(recorder, path: str, indent: Union[int, None] = None) -> int:
    """Write ``recorder``'s events as a Chrome trace JSON file.

    Returns the number of trace events written (metadata included).
    ``indent`` pretty-prints for humans at the cost of file size.
    ``otherData`` carries the recorder bookkeeping the post-hoc profiler
    needs: ``tck_ns``, drop counts, a ``truncated`` flag, and the exact
    final engine clock per trace pid (``runtimes_cycles``).
    """
    events = recorder.chrome_events()
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "tck_ns": recorder.tck_ns,
            "recorded": recorder.recorded,
            "dropped": recorder.dropped,
            "truncated": recorder.dropped > 0,
            "runtimes_cycles": {
                str(pid): cycles
                for pid, cycles in sorted(recorder.runtimes.items())
            },
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
    return len(events)


def load_trace_payload(path: str) -> Dict[str, object]:
    """Load a trace file as its full payload dict.

    Accepts both the object format written by :func:`write_chrome_trace`
    (returned as-is, ``otherData`` included) and a bare JSON event array
    (wrapped as ``{"traceEvents": [...]}``).  Raises
    :class:`TraceFormatError` — naming the file — on truncated or
    malformed JSON and on payloads without a ``traceEvents`` array,
    instead of surfacing a bare ``json.JSONDecodeError``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{path} is not a valid trace file (truncated or partial "
                f"JSON? {exc.msg} at line {exc.lineno} column {exc.colno})"
            ) from exc
    if isinstance(payload, list):
        return {"traceEvents": payload}
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise TraceFormatError(
            f"{path} is not a trace file: expected a JSON event array or "
            "an object with a 'traceEvents' array"
        )
    return payload


def load_trace(path: str) -> List[Dict[str, object]]:
    """Load a trace file; returns its ``traceEvents`` list.

    Accepts both the object format written here and a bare JSON array
    (the other legal ``trace_event`` container); raises
    :class:`TraceFormatError` on unreadable files (see
    :func:`load_trace_payload`).
    """
    return list(load_trace_payload(path)["traceEvents"])


def trace_layers(events: Sequence[Dict[str, object]]) -> frozenset:
    """Categories present among non-metadata events."""
    return frozenset(
        str(e["cat"]) for e in events if e.get("ph") != "M" and "cat" in e
    )


def _thread_names(events: Sequence[Dict[str, object]]) -> Dict[Tuple[int, int], str]:
    """``(pid, tid) -> label``, qualified as ``pid<N>:<component path>`` so
    the same component in two simulated systems stays distinguishable."""
    names: Dict[Tuple[int, int], str] = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            args = e.get("args") or {}
            pid = int(e["pid"])
            names[(pid, int(e["tid"]))] = f"pid{pid}:{args.get('name', '')}"
    return names


def busiest_components(
    events: Sequence[Dict[str, object]], n: int = 5
) -> List[Tuple[str, float]]:
    """Top ``n`` components by total span time.

    Returns ``[(component path, total busy microseconds), ...]`` sorted
    busiest-first.  Complete (``"X"``) spans contribute their ``dur``;
    async (``"b"``/``"e"``) lifetime spans contribute end minus begin,
    matched by ``(pid, cat, name, id)`` and attributed to the component
    that opened the span — so task-lifetime activity ranks consistently
    with duration spans instead of being ignored.  Instants and counters
    carry no duration.  Works on a live recorder's :meth:`chrome_events`
    output or on a :func:`load_trace` result.
    """
    names = _thread_names(events)
    busy: Dict[Tuple[int, int], float] = {}
    open_async: Dict[Tuple[int, str, str, str], Tuple[float, int]] = {}
    for e in events:
        ph = e.get("ph")
        if ph == "X":
            key = (int(e["pid"]), int(e["tid"]))
            busy[key] = busy.get(key, 0.0) + float(e.get("dur", 0.0))
        elif ph == "b":
            async_key = (
                int(e["pid"]), str(e.get("cat", "")),
                str(e.get("name", "")), str(e.get("id", "")),
            )
            open_async[async_key] = (float(e.get("ts", 0.0)), int(e["tid"]))
        elif ph == "e":
            async_key = (
                int(e["pid"]), str(e.get("cat", "")),
                str(e.get("name", "")), str(e.get("id", "")),
            )
            opened = open_async.pop(async_key, None)
            if opened is None:
                continue
            begin_ts, begin_tid = opened
            span = float(e.get("ts", 0.0)) - begin_ts
            if span <= 0:
                continue
            key = (async_key[0], begin_tid)
            busy[key] = busy.get(key, 0.0) + span
    ranked = sorted(busy.items(), key=lambda item: (-item[1], item[0]))[:n]
    return [
        (names.get(key, f"pid{key[0]}.tid{key[1]}"), total)
        for key, total in ranked
    ]
