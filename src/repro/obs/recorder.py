"""Trace recorders: the event sink behind every instrument site.

A :class:`TraceRecorder` accumulates Chrome ``trace_event`` dictionaries —
complete spans (``ph: "X"``), instants (``"i"``), counters (``"C"``), and
async begin/end pairs (``"b"``/``"e"``) — with timestamps converted from
simulated DRAM cycles to trace microseconds (``cycles * tck_ns / 1000``).
Each engine gets its own trace ``pid`` (its :attr:`~repro.sim.engine.
Engine.trace_id`), so the many single-shot systems built during one figure
campaign appear as separate processes on one timeline; component paths
become named threads within the process.

Instrument sites follow one pattern::

    tracer = self.engine.tracer
    if tracer:                       # None and NullRecorder are falsy
        tracer.complete("dram", "RD", self.path, start, dur,
                        pid=self.engine.trace_id, args={...})

so a disabled run pays exactly one attribute read and a truth test per
site.  :class:`NullRecorder` is a do-nothing stand-in for callers that
want to hold a recorder unconditionally.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: The instrumented layers.  ``dram`` — controller command/data activity;
#: ``cxl`` — link serialization, flit packing, routing decisions; ``ndp`` —
#: PE compute, task lifetimes, stalls; ``mem`` — the memory-management
#: framework (dedication, allocation, memory clean); ``req`` — memory-request
#: lifecycles (one async span per request from pool entry to completion,
#: the anchor the latency-attribution stitcher keys on).
TRACE_CATEGORIES: Tuple[str, ...] = ("dram", "cxl", "ndp", "mem", "req")

#: Default cap on recorded events.  A quick-scale figure campaign emits a
#: few hundred thousand events; the cap keeps worst-case memory and JSON
#: size bounded while :attr:`TraceRecorder.dropped` reports what was cut.
DEFAULT_EVENT_LIMIT = 2_000_000


class NullRecorder:
    """A recorder that records nothing (the no-op fast path).

    Falsy, so ``if tracer:`` guards skip argument construction entirely;
    every method is a no-op with the same signature as
    :class:`TraceRecorder`, so it can also be called unconditionally.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def wants(self, cat: str) -> bool:
        """Whether events of category ``cat`` would be kept (never)."""
        return False

    def complete(self, cat, name, path, start_cycle, dur_cycles,
                 pid=0, args=None) -> None:
        """Discard a span."""

    def instant(self, cat, name, path, cycle, pid=0, args=None) -> None:
        """Discard an instant event."""

    def counter(self, cat, name, path, cycle, values, pid=0) -> None:
        """Discard a counter sample."""

    def async_begin(self, cat, name, path, cycle, event_id,
                    pid=0, args=None) -> None:
        """Discard an async-begin event."""

    def async_end(self, cat, name, path, cycle, event_id,
                  pid=0, args=None) -> None:
        """Discard an async-end event."""

    def register_root(self, pid, name, scope) -> None:
        """Ignore a root-component registration."""

    def note_runtime(self, pid, now_cycles) -> None:
        """Ignore an engine-runtime note."""


class TraceRecorder:
    """Collects typed trace events from the instrument sites.

    Parameters
    ----------
    tck_ns:
        Simulated nanoseconds per engine cycle (1.25 for the DDR4-1600
        devices every experiment uses); converts cycle timestamps to the
        microsecond ``ts`` values the ``trace_event`` format expects.
    categories:
        Keep only these categories (see :data:`TRACE_CATEGORIES`);
        ``None`` keeps everything.
    limit:
        Maximum number of events retained; further events are counted in
        :attr:`dropped` instead of stored.  ``None`` means unbounded.
    """

    enabled = True

    def __init__(
        self,
        tck_ns: float = 1.25,
        categories: Optional[Iterable[str]] = None,
        limit: Optional[int] = DEFAULT_EVENT_LIMIT,
    ) -> None:
        if tck_ns <= 0:
            raise ValueError("tck_ns must be positive")
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        self.tck_ns = float(tck_ns)
        self.categories: Optional[FrozenSet[str]] = (
            frozenset(categories) if categories is not None else None
        )
        if self.categories is not None:
            unknown = self.categories - set(TRACE_CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"known: {list(TRACE_CATEGORIES)}"
                )
        self.limit = limit
        self.events: List[Dict[str, object]] = []
        self.dropped = 0
        #: Optional :class:`~repro.obs.metrics.MetricsSampler`; when set,
        #: every record call gives it a chance to snapshot counters.
        self.metrics = None
        #: In-stream subscribers: callables invoked with every event dict
        #: that passes the *category* filter, before the storage cap is
        #: applied — so a listener (e.g. the latency-attribution profiler)
        #: sees the complete feed even when ``limit`` truncates storage.
        self.listeners: List = []
        #: Final engine clock per trace pid (``Engine.run`` notes its clock
        #: here on every return), so utilization denominators are exact.
        self.runtimes: Dict[int, int] = {}
        self._process_names: Dict[int, str] = {}
        self._root_scopes: List[Tuple[int, object]] = []
        self._thread_ids: Dict[Tuple[int, str], int] = {}

    def __bool__(self) -> bool:
        return True

    # -- configuration / wiring ---------------------------------------------------

    def wants(self, cat: str) -> bool:
        """Whether events of category ``cat`` pass the filter."""
        return self.categories is None or cat in self.categories

    def register_root(self, pid: int, name: str, scope) -> None:
        """Bind a root component: names the trace process, and registers
        its :class:`~repro.sim.stats.StatScope` tree for metric sampling."""
        self._process_names.setdefault(pid, name)
        self._root_scopes.append((pid, scope))

    @property
    def root_scopes(self) -> List[Tuple[int, object]]:
        """Registered ``(pid, StatScope)`` roots (metric sampling targets)."""
        return list(self._root_scopes)

    def process_name(self, pid: int) -> str:
        """Display name of trace process ``pid`` (root component label)."""
        return self._process_names.get(pid, f"engine{pid}")

    def note_runtime(self, pid: int, now_cycles: int) -> None:
        """Record the final engine clock of trace process ``pid``."""
        if now_cycles > self.runtimes.get(pid, 0):
            self.runtimes[pid] = now_cycles

    def subscribe(self, listener) -> None:
        """Register an in-stream event subscriber (see :attr:`listeners`)."""
        self.listeners.append(listener)

    @property
    def truncated(self) -> bool:
        """Whether the storage cap dropped at least one event."""
        return self.dropped > 0

    # -- internals -----------------------------------------------------------------

    def _us(self, cycles: float) -> float:
        return cycles * self.tck_ns / 1000.0

    def _tid(self, pid: int, path: str) -> int:
        key = (pid, path)
        tid = self._thread_ids.get(key)
        if tid is None:
            tid = len(self._thread_ids) + 1
            self._thread_ids[key] = tid
        return tid

    def _admit(self, cat: str, cycle: int, pid: int) -> bool:
        """Shared front door: drive the metrics sampler and apply the
        category filter.  The storage cap is applied later, in
        :meth:`_commit`, so in-stream listeners see capped events too."""
        if self.metrics is not None:
            self.metrics.maybe_sample(self, pid, cycle)
        if self.categories is not None and cat not in self.categories:
            return False
        if not self.listeners and (
            self.limit is not None and len(self.events) >= self.limit
        ):
            # No listeners: skip building the event dict entirely.
            self.dropped += 1
            return False
        return True

    def _commit(self, event: Dict[str, object]) -> None:
        """Dispatch an admitted event to listeners, then store it (or count
        it as dropped once the storage cap is reached)."""
        for listener in self.listeners:
            listener(event)
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    # -- record API ---------------------------------------------------------------

    def complete(
        self,
        cat: str,
        name: str,
        path: str,
        start_cycle: int,
        dur_cycles: int,
        pid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a complete span (``ph: "X"``) on component ``path``."""
        if not self._admit(cat, start_cycle, pid):
            return
        event: Dict[str, object] = {
            "ph": "X", "cat": cat, "name": name,
            "pid": pid, "tid": self._tid(pid, path),
            "ts": self._us(start_cycle), "dur": self._us(dur_cycles),
        }
        if args:
            event["args"] = args
        self._commit(event)

    def instant(
        self,
        cat: str,
        name: str,
        path: str,
        cycle: int,
        pid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an instant event (``ph: "i"``, thread scope)."""
        if not self._admit(cat, cycle, pid):
            return
        event: Dict[str, object] = {
            "ph": "i", "s": "t", "cat": cat, "name": name,
            "pid": pid, "tid": self._tid(pid, path),
            "ts": self._us(cycle),
        }
        if args:
            event["args"] = args
        self._commit(event)

    def counter(
        self,
        cat: str,
        name: str,
        path: str,
        cycle: int,
        values: Dict[str, float],
        pid: int = 0,
    ) -> None:
        """Record a counter sample (``ph: "C"``) — one track per series."""
        if not self._admit(cat, cycle, pid):
            return
        self._commit({
            "ph": "C", "cat": cat, "name": f"{path}.{name}",
            "pid": pid, "tid": 0,
            "ts": self._us(cycle), "args": dict(values),
        })

    def async_begin(
        self,
        cat: str,
        name: str,
        path: str,
        cycle: int,
        event_id: int,
        pid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Open an async span (``ph: "b"``) — e.g. a task's lifetime,
        which parks and resumes across many engine callbacks."""
        self._async(cat, "b", name, path, cycle, event_id, pid, args)

    def async_end(
        self,
        cat: str,
        name: str,
        path: str,
        cycle: int,
        event_id: int,
        pid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Close an async span opened by :meth:`async_begin` (same
        ``cat``/``name``/``event_id``)."""
        self._async(cat, "e", name, path, cycle, event_id, pid, args)

    def _async(self, cat, ph, name, path, cycle, event_id, pid, args) -> None:
        if not self._admit(cat, cycle, pid):
            return
        event: Dict[str, object] = {
            "ph": ph, "cat": cat, "name": name,
            "id": f"0x{event_id:x}",
            "pid": pid, "tid": self._tid(pid, path),
            "ts": self._us(cycle),
        }
        if args:
            event["args"] = args
        self._commit(event)

    # -- reporting ----------------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Number of events currently held."""
        return len(self.events)

    def layers(self) -> FrozenSet[str]:
        """Categories that actually recorded at least one event."""
        return frozenset(str(e["cat"]) for e in self.events)

    def metadata_events(self) -> List[Dict[str, object]]:
        """Chrome ``M`` events naming every process (system) and thread
        (component path) seen so far."""
        out: List[Dict[str, object]] = []
        for pid, name in sorted(self._process_names.items()):
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        for (pid, path), tid in sorted(
            self._thread_ids.items(), key=lambda item: item[1]
        ):
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": path},
            })
        return out

    def chrome_events(self) -> List[Dict[str, object]]:
        """Metadata + recorded events, ready for ``traceEvents``."""
        return self.metadata_events() + self.events
