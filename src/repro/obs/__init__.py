"""Observability: simulation tracing and live metrics.

``repro.obs`` is the always-available, off-by-default tracing layer of the
simulator.  A :class:`TraceRecorder` installed on the event engine (via
:class:`TraceSession` or :func:`install`) records typed spans and instant
events — DRAM commands, CXL flit transfers, NDP task/compute activity,
memory-management operations — with timestamps in simulated time, and a
:class:`MetricsSampler` snapshots :class:`~repro.sim.stats.StatScope`
counters at a configurable simulated-time interval.  Exporters write
Chrome/Perfetto ``trace_event`` JSON (open in https://ui.perfetto.dev or
``chrome://tracing``) and a flat CSV of metric samples.

Tracing is purely observational: instrument sites only *read* simulator
state and never schedule events, so simulated cycle counts and energy
totals are bit-identical with tracing on or off (the perf harness's
``--verify-tracing`` mode proves it).  When no recorder is installed the
instrument sites reduce to one attribute read and a truth test.

See ``docs/OBSERVABILITY.md`` for the category/span reference and a
worked diagnosis example.
"""

from repro.obs.export import (
    busiest_components,
    load_trace,
    trace_layers,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsSample, MetricsSampler, write_metrics_csv
from repro.obs.recorder import (
    DEFAULT_EVENT_LIMIT,
    TRACE_CATEGORIES,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.session import TraceSession, current_recorder, install, uninstall

__all__ = [
    "DEFAULT_EVENT_LIMIT",
    "MetricsSample",
    "MetricsSampler",
    "NullRecorder",
    "TRACE_CATEGORIES",
    "TraceRecorder",
    "TraceSession",
    "busiest_components",
    "current_recorder",
    "install",
    "load_trace",
    "trace_layers",
    "uninstall",
    "write_chrome_trace",
    "write_metrics_csv",
]
