"""Observability: simulation tracing and live metrics.

``repro.obs`` is the always-available, off-by-default tracing layer of the
simulator.  A :class:`TraceRecorder` installed on the event engine (via
:class:`TraceSession` or :func:`install`) records typed spans and instant
events — DRAM commands, CXL flit transfers, NDP task/compute activity,
memory-management operations — with timestamps in simulated time, and a
:class:`MetricsSampler` snapshots :class:`~repro.sim.stats.StatScope`
counters at a configurable simulated-time interval.  Exporters write
Chrome/Perfetto ``trace_event`` JSON (open in https://ui.perfetto.dev or
``chrome://tracing``) and metric samples as CSV or JSON (identical rows
either way).  The fleet-level counterpart — cross-run job ledger, metrics
registry, bench regression gate — lives in :mod:`repro.obs.telemetry`.

Tracing is purely observational: instrument sites only *read* simulator
state and never schedule events, so simulated cycle counts and energy
totals are bit-identical with tracing on or off (the perf harness's
``--verify-tracing`` mode proves it).  When no recorder is installed the
instrument sites reduce to one attribute read and a truth test.

On top of the raw feed sits the latency-attribution layer
(``repro.obs.profile`` + ``repro.obs.stitch``): a
:class:`LatencyProfiler` subscribed to the recorder stitches every memory
request and NDP task back into an end-to-end phase decomposition in
stream, producing a deterministic :class:`ProfileReport` artifact,
collapsed-stack flamegraphs (:func:`write_flamegraph`), and ranked diffs
between runs (:func:`diff_reports`).

See ``docs/OBSERVABILITY.md`` for the category/span reference, the
profiling guide, and a worked diagnosis example.
"""

from repro.obs.export import (
    TraceFormatError,
    busiest_components,
    load_trace,
    load_trace_payload,
    trace_layers,
    write_chrome_trace,
)
from repro.obs.metrics import (
    METRICS_COLUMNS,
    MetricsSample,
    MetricsSampler,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    AttributionDelta,
    LatencyProfiler,
    ProfileReport,
    build_report,
    diff_reports,
    format_diff,
    profile_events,
    profile_trace_file,
    render_summary,
    write_flamegraph,
)
from repro.obs.recorder import (
    DEFAULT_EVENT_LIMIT,
    TRACE_CATEGORIES,
    NullRecorder,
    TraceRecorder,
)
from repro.obs.session import TraceSession, current_recorder, install, uninstall
from repro.obs.stitch import RequestProfile, SpanStitcher, StitchedRun, TaskProfile

__all__ = [
    "AttributionDelta",
    "DEFAULT_EVENT_LIMIT",
    "LatencyProfiler",
    "METRICS_COLUMNS",
    "MetricsSample",
    "MetricsSampler",
    "NullRecorder",
    "PROFILE_SCHEMA",
    "ProfileReport",
    "RequestProfile",
    "SpanStitcher",
    "StitchedRun",
    "TRACE_CATEGORIES",
    "TaskProfile",
    "TraceFormatError",
    "TraceRecorder",
    "TraceSession",
    "build_report",
    "busiest_components",
    "current_recorder",
    "diff_reports",
    "format_diff",
    "install",
    "load_trace",
    "load_trace_payload",
    "profile_events",
    "profile_trace_file",
    "render_summary",
    "trace_layers",
    "uninstall",
    "write_chrome_trace",
    "write_flamegraph",
    "write_metrics_csv",
    "write_metrics_json",
]
