"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro list --json          # same catalogue, machine-readable
    python -m repro fig12                # one figure at bench scale
    python -m repro fig15 --quick        # one figure at smoke scale
    python -m repro run fig12-fm-seeding # any registered scenario, by alias
    python -m repro run my_scenario.yaml --seed 7   # a DSL payload file
    python -m repro validate my_scenario.yaml       # check a payload only
    python -m repro catalogue --markdown # scenario table for the docs
    python -m repro all --jobs 4         # the whole evaluation, 4 processes
    python -m repro bench                # perf baseline -> BENCH_results.json
    python -m repro trace fig12 --trace-out run.json   # traced quick run
    python -m repro profile fig16        # latency attribution -> profile.json
    python -m repro profile --diff a.json b.json       # rank attribution deltas
    python -m repro status runs.jsonl    # summarize a sweep run ledger
    python -m repro bench --compare BENCH_results.json  # regression gate
    python -m repro lint                 # simulator-aware static analysis

Sweep points within a figure are independent simulations; ``--jobs N`` (or
the ``REPRO_JOBS`` environment variable) fans them out over N processes
with results identical to a serial run.  ``--trace-dir DIR`` collects one
Perfetto trace per sweep point and ``--profile-dir DIR`` one latency-
attribution report per sweep point; ``trace`` runs one figure in-process
at quick scale and writes a single combined trace, ``profile`` does the
same under the in-stream latency profiler and writes a ProfileReport plus
a collapsed-stack flamegraph (see docs/OBSERVABILITY.md).

Fleet telemetry: ``--ledger FILE`` (or ``REPRO_LEDGER``) appends one JSONL
lifecycle event per sweep job, ``--progress`` (or ``REPRO_PROGRESS=1``)
draws a stderr progress line, ``status`` summarizes a ledger
(completed/running/failed, throughput, ETA, slowest jobs), and ``bench
--compare OLD.json`` gates per-figure events/sec against a baseline
(non-zero exit on regression; ``--against NEW.json`` compares two saved
payloads without re-benching).  See docs/OBSERVABILITY.md, "Fleet
telemetry".
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import ExperimentScale, ParallelSweepRunner, tables
from repro.experiments.scenarios import (
    SCENARIOS,
    ensure_registered,
    get_scenario,
    resolve_scenario,
    scenario_names,
)

ensure_registered()


def _scenario_entry(name):
    """(description, runner-callable) pair for one registered scenario."""
    spec = SCENARIOS[name]
    return (spec.title,
            lambda scale, runner: spec.main(scale, runner=runner))


#: The paper's artifact catalogue: the scenario-backed figures plus the
#: two static tables.  (``scalability`` is an extension study: it is
#: benched and reachable via ``run``, but not part of the paper's set.)
EXPERIMENTS = {
    name: _scenario_entry(name)
    for name in ("fig3", "fig12", "fig13", "fig14", "fig15", "fig16",
                 "fig17", "sec6g")
}
EXPERIMENTS["table1"] = ("experimental configuration",
                         lambda scale, runner: tables.main())
EXPERIMENTS["table2"] = ("PE hardware overhead",
                         lambda scale, runner: tables.main())


def _is_payload_path(target: str) -> bool:
    """Does a ``run``/``validate`` target name a payload file (not a
    registered scenario)?  Payload files are recognized by extension or
    by containing a path separator."""
    return target.endswith((".yaml", ".yml", ".json")) or os.sep in target


def _run_scenario(args, parser) -> int:
    """``python -m repro run <scenario-or-payload>``: execute one
    registered scenario (canonical name or alias) or a DSL payload file
    through the unified scenario layer."""
    if args.target is None:
        parser.error(f"run needs a scenario: one of {scenario_names()} "
                     "(or a payload file, see docs/SCENARIOS.md)")
    runner = ParallelSweepRunner(jobs=args.jobs, trace_dir=args.trace_dir,
                                 profile_dir=args.profile_dir,
                                 ledger_path=args.ledger,
                                 progress=args.progress or None)
    scale = ExperimentScale.quick() if args.quick else ExperimentScale.bench()
    if _is_payload_path(args.target):
        from repro.experiments import dsl

        try:
            spec = dsl.load_scenario_file(args.target, seed=args.seed)
        except (dsl.PayloadError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # No wall-clock footer here: payload runs must be bit-identical
        # across invocations (the DSL's determinism contract).
        print(f"\n=== {spec.name}: {spec.title} ===")
        spec.main(scale, runner=runner)
        return 0
    canonical = resolve_scenario(args.target)
    if canonical is None:
        parser.error(f"unknown scenario {args.target!r}; "
                     f"known: {scenario_names()}")
    spec = get_scenario(canonical)
    print(f"\n=== {canonical}: {spec.title} ===")
    started = time.time()
    spec.main(scale, runner=runner)
    print(f"[{canonical} took {time.time() - started:.1f}s]")
    return 0


def _run_validate(args, parser) -> int:
    """``python -m repro validate <payload>``: schema-check one payload
    file without running it."""
    from repro.experiments import dsl

    if args.target is None:
        parser.error("validate needs a payload file (YAML or JSON)")
    try:
        payload = dsl.validate_payload(dsl.load_payload(args.target))
    except (dsl.PayloadError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"ok: {args.target} -> scenario {payload.name!r} "
          f"(kind {payload.kind}; backends {', '.join(payload.backends)})")
    return 0


def _run_catalogue(args, parser) -> int:
    """``python -m repro catalogue``: the registered-scenario table
    (``--markdown`` for the docs copy, ``--check`` for the CI sync gate)."""
    from repro.experiments import catalogue

    if args.check:
        ok, message = catalogue.check_docs_sync()
        print(message)
        return 0 if ok else 1
    print(catalogue.render_markdown() if args.markdown
          else catalogue.render_text())
    return 0


def _list_json() -> str:
    """The ``list --json`` document: experiments + scenario catalogue."""
    import json

    ensure_registered()
    scenarios = []
    for name, spec in SCENARIOS.items():
        scenarios.append({
            "name": name,
            "title": spec.title,
            "aliases": list(spec.aliases),
            "backends": list(spec.backends),
            "drivers": list(spec.drivers),
            "sweep_axes": list(spec.sweep_axes),
        })
    return json.dumps({
        "experiments": {
            name: description
            for name, (description, _run) in sorted(EXPERIMENTS.items())
        },
        "scenarios": scenarios,
    }, indent=2, sort_keys=True)


def _run_trace(args, parser) -> int:
    """``python -m repro trace <figure>``: one traced quick-scale run."""
    from repro.obs import TRACE_CATEGORIES, TraceSession, busiest_components
    from repro.perf.harness import BENCH_FIGURES

    figure = args.target
    if figure is None or figure not in BENCH_FIGURES:
        parser.error(
            f"trace needs a figure to run: one of {sorted(BENCH_FIGURES)}"
        )
    categories = None
    if args.trace_filter:
        categories = frozenset(
            part.strip() for part in args.trace_filter.split(",") if part.strip()
        )
        unknown = categories - set(TRACE_CATEGORIES)
        if unknown:
            parser.error(
                f"unknown trace categories {sorted(unknown)}; "
                f"known: {list(TRACE_CATEGORIES)}"
            )
    if args.jobs is not None and args.jobs > 1:
        print("[trace] note: traced runs are in-process; ignoring --jobs")
    metrics_interval = args.metrics_interval
    if metrics_interval is None and args.metrics_out:
        from repro.obs.session import DEFAULT_METRICS_INTERVAL

        metrics_interval = DEFAULT_METRICS_INTERVAL

    session = TraceSession(
        categories=categories,
        limit=args.trace_limit,
        metrics_interval=metrics_interval,
    )
    runner = ParallelSweepRunner(jobs=1)
    started = time.time()
    with session:
        BENCH_FIGURES[figure](ExperimentScale.quick(), runner=runner)
    elapsed = time.time() - started
    recorder = session.recorder
    session.save(args.trace_out, metrics_path=args.metrics_out or None)
    size_mb = os.path.getsize(args.trace_out) / 1e6
    print(f"\n[trace] {figure} took {elapsed:.1f}s at quick scale")
    print(f"[trace] {recorder.recorded} events recorded "
          f"({recorder.dropped} dropped) across layers: "
          f"{', '.join(sorted(recorder.layers()))}")
    print(f"[trace] wrote {args.trace_out} ({size_mb:.1f} MB)")
    if args.metrics_out and session.sampler is not None:
        print(f"[trace] wrote {args.metrics_out} "
              f"({session.sampler.sample_count} metric samples)")
    print("[trace] top components by busy time:")
    for path, busy_us in busiest_components(recorder.chrome_events()):
        print(f"    {path:44s} {busy_us:14,.1f} us")
    print("[trace] open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _profile_delays(figure: str) -> int:
    """``python -m repro profile <figure> --delays``: schedule-delay
    histogram from one serial quick-scale run.

    This distribution is what the calendar scheduler's bucketing is tuned
    against: the simulator's delays are short-horizon (DRAM timing
    parameters, link hops) with a long sparse tail (refresh intervals,
    timeout flushes), which is exactly the shape a bucket-per-cycle
    calendar queue with a sparse overflow exploits.
    """
    from repro.perf.harness import BENCH_FIGURES
    from repro.sim.engine import Engine

    runner = ParallelSweepRunner(jobs=1)
    started = time.time()
    with Engine.record_delay_histogram() as histogram:
        BENCH_FIGURES[figure](ExperimentScale.quick(), runner=runner)
    elapsed = time.time() - started
    total = sum(histogram.values())
    if not total:
        print(f"[profile] {figure}: no events scheduled")
        return 0
    rows = sorted(histogram.items())
    print(f"[profile] {figure}: {total:,} schedule calls across "
          f"{len(rows)} distinct delays ({elapsed:.1f}s at quick scale)")
    print(f"[profile] {'delay':>8s} {'count':>12s} {'share':>7s} {'cum':>7s}")
    shown = rows[:40]
    cumulative = 0
    for delay, count in shown:
        cumulative += count
        print(f"[profile] {delay:>8d} {count:>12,d} "
              f"{count / total:>7.1%} {cumulative / total:>7.1%}")
    if len(rows) > len(shown):
        tail = total - cumulative
        print(f"[profile] (+{len(rows) - len(shown)} longer delays, "
              f"{tail:,} calls, max {rows[-1][0]} cycles)")
    return 0


def _run_profile(args, parser) -> int:
    """``python -m repro profile <figure>`` (or ``--diff a b``): latency
    attribution from an in-stream profiled quick-scale run."""
    from repro.obs import (
        ProfileReport,
        TraceSession,
        diff_reports,
        format_diff,
        render_summary,
        write_flamegraph,
    )
    from repro.perf.harness import BENCH_FIGURES, resolve_figure

    if args.diff:
        path_a, path_b = args.diff
        deltas = diff_reports(ProfileReport.load(path_a),
                              ProfileReport.load(path_b))
        print(f"[profile] attribution deltas, {path_a} -> {path_b}:")
        print(format_diff(deltas), end="")
        return 0

    if args.target is None:
        parser.error(
            "profile needs a figure to run (one of "
            f"{sorted(BENCH_FIGURES)}) or --diff A.json B.json"
        )
    figure = resolve_figure(args.target)
    if figure is None:
        parser.error(
            f"unknown figure {args.target!r}; known: {sorted(BENCH_FIGURES)}"
        )
    if args.jobs is not None and args.jobs > 1:
        print("[profile] note: profiled runs are in-process; ignoring --jobs")

    if args.delays:
        return _profile_delays(figure)

    session = TraceSession(limit=0, profile=True)
    runner = ParallelSweepRunner(jobs=1)
    started = time.time()
    with session:
        BENCH_FIGURES[figure](ExperimentScale.quick(), runner=runner)
    elapsed = time.time() - started
    report = session.profile_report(figure=figure, scale="quick")
    report.save(args.profile_out)
    stacks = write_flamegraph(report, args.flame_out)
    print(render_summary(report), end="")
    print(f"[profile] {figure} took {elapsed:.1f}s at quick scale "
          f"({report.events_seen} events profiled in-stream)")
    print(f"[profile] wrote {args.profile_out} (schema {report.schema})")
    print(f"[profile] wrote {args.flame_out} ({stacks} collapsed stacks; "
          "feed to any flamegraph tool)")
    return 0


def _run_status(args, parser) -> int:
    """``python -m repro status <ledger>``: summarize a sweep run ledger
    (completed/running/failed, throughput, ETA, slowest jobs;
    ``--json`` for the machine-readable form)."""
    import json

    from repro.obs.telemetry import (
        LedgerError,
        read_ledger,
        render_status,
        summarize_ledger,
    )

    if args.target is None:
        parser.error("status needs a ledger file (written via --ledger "
                     "FILE or $REPRO_LEDGER; see docs/OBSERVABILITY.md)")
    try:
        events = read_ledger(args.target)
    except (LedgerError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = summarize_ledger(events)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_status(summary), end="")
    return 0


def _run_bench(args, parser) -> int:
    """``python -m repro bench``: the perf baseline, optionally gated.

    ``--compare OLD.json`` runs the bench and then gates the fresh
    payload against the baseline (non-zero exit on any figure below
    ``--threshold`` x baseline events/sec); adding ``--against NEW.json``
    skips benching entirely and compares two saved payloads — the cheap
    CI path when a bench artifact already exists.
    """
    from repro.obs.telemetry import (
        DEFAULT_THRESHOLD,
        CompareError,
        compare_bench,
        load_bench_payload,
        render_compare,
    )
    from repro.perf import run_bench

    threshold = (args.threshold if args.threshold is not None
                 else DEFAULT_THRESHOLD)
    if args.against is not None and args.compare is None:
        parser.error("--against needs --compare OLD.json")
    try:
        if args.compare is not None and args.against is not None:
            old = load_bench_payload(args.compare)
            new = load_bench_payload(args.against)
        else:
            old = (load_bench_payload(args.compare)
                   if args.compare is not None else None)
            new = run_bench(jobs=args.jobs, verify=not args.no_verify,
                            output=args.output,
                            trace_verify=args.verify_tracing,
                            attribution=args.attribution,
                            telemetry_verify=args.verify_telemetry,
                            repeats=args.repeats)
        if old is None:
            return 0
        report = compare_bench(old, new, threshold=threshold)
    except CompareError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_compare(report), end="")
    return 0 if report["ok"] else 1


def main(argv=None) -> int:
    """Run the experiment and print the paper-style rows."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint pass has its own flag set (--json/--rule/...); hand the
        # rest of the command line to its parser untouched.
        from repro.analysis.cli import main as lint_main

        return lint_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the BEACON paper's evaluation artifacts.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list", "bench",
                                                       "run", "trace",
                                                       "profile", "lint",
                                                       "validate",
                                                       "catalogue",
                                                       "status"],
                        help="which table/figure to regenerate ('run' "
                             "executes any registered scenario by name or "
                             "alias, or a DSL payload file; 'validate' "
                             "schema-checks a payload file; 'catalogue' "
                             "prints the scenario table; 'bench' times the "
                             "quick-scale suite and writes the perf "
                             "baseline; 'trace' runs one figure at quick "
                             "scale with tracing on; 'profile' runs one "
                             "figure under the latency profiler; 'status' "
                             "summarizes a sweep run ledger; 'lint' "
                             "runs the simulator-aware static-analysis "
                             "pass)")
    parser.add_argument("target", nargs="?", default=None,
                        help="run/trace/profile/validate/status only: the "
                             "scenario, figure, payload file, or ledger "
                             "file to act on")
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (seconds instead of minutes)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan independent sweep points out over N "
                             "processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--output", default="BENCH_results.json",
                        help="bench only: where to write the perf baseline "
                             "(default: %(default)s)")
    parser.add_argument("--no-verify", action="store_true",
                        help="bench only: skip the bit-identical check "
                             "against the serial/uncached reference")
    parser.add_argument("--verify-tracing", action="store_true",
                        help="bench only: also verify results are "
                             "bit-identical with tracing enabled")
    parser.add_argument("--trace-out", default="trace.json", metavar="FILE",
                        help="trace only: Perfetto JSON output path "
                             "(default: %(default)s)")
    parser.add_argument("--trace-filter", default=None, metavar="CATS",
                        help="trace only: comma-separated categories to "
                             "keep (dram,cxl,ndp,mem; default: all)")
    parser.add_argument("--trace-limit", type=int, default=None, metavar="N",
                        help="trace only: cap recorded events at N "
                             "(default: 2,000,000)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="trace only: also write sampled StatScope "
                             "counters as CSV")
    parser.add_argument("--metrics-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="trace only: metric sampling interval in "
                             "simulated cycles (default: 50,000)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="figure runs: write one trace per sweep job "
                             "into DIR (also $REPRO_TRACE_DIR)")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="figure runs: write one latency-attribution "
                             "report per sweep job into DIR (also "
                             "$REPRO_PROFILE_DIR)")
    parser.add_argument("--profile-out", default="profile.json",
                        metavar="FILE",
                        help="profile only: ProfileReport JSON output path "
                             "(default: %(default)s)")
    parser.add_argument("--flame-out", default="profile.folded",
                        metavar="FILE",
                        help="profile only: collapsed-stack flamegraph "
                             "output path (default: %(default)s)")
    parser.add_argument("--diff", nargs=2, default=None,
                        metavar=("A.json", "B.json"),
                        help="profile only: compare two saved "
                             "ProfileReports and rank attribution deltas")
    parser.add_argument("--delays", action="store_true",
                        help="profile only: print the schedule-delay "
                             "histogram of one serial quick-scale run "
                             "(the distribution the calendar scheduler's "
                             "bucketing is tuned against)")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="run only, payload files: override the "
                             "payload's seed")
    parser.add_argument("--json", action="store_true",
                        help="list/status: emit the catalogue or ledger "
                             "summary as JSON")
    parser.add_argument("--dsl", action="store_true",
                        help="list only: also print the scenario-payload "
                             "schema reference")
    parser.add_argument("--markdown", action="store_true",
                        help="catalogue only: emit a markdown table "
                             "(the docs/SCENARIOS.md copy)")
    parser.add_argument("--check", action="store_true",
                        help="catalogue only: verify the committed copy "
                             "in docs/SCENARIOS.md matches the registry")
    parser.add_argument("--attribution", action="store_true",
                        help="bench only: run each figure once more under "
                             "the latency profiler and write phase "
                             "attribution into BENCH_results.json")
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="figure runs: append one JSONL lifecycle "
                             "event per sweep job to FILE (also "
                             "$REPRO_LEDGER; summarize with 'status')")
    parser.add_argument("--progress", action="store_true",
                        help="figure runs: draw an in-terminal progress "
                             "line on stderr as sweep jobs complete "
                             "(also $REPRO_PROGRESS=1)")
    parser.add_argument("--verify-telemetry", action="store_true",
                        help="bench only: also verify results are "
                             "bit-identical with the run ledger and "
                             "progress line enabled")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="bench only: regression-gate the fresh bench "
                             "against a baseline payload (non-zero exit "
                             "when any figure drops below the threshold)")
    parser.add_argument("--against", default=None, metavar="NEW.json",
                        help="bench only, with --compare: skip benching "
                             "and compare two saved payloads instead")
    parser.add_argument("--threshold", type=float, default=None, metavar="R",
                        help="bench --compare: regression threshold as a "
                             "fraction of baseline events/sec "
                             "(default: 0.75)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="bench only: timed runs per figure; the "
                             "fastest is recorded (best-of-N defeats "
                             "quick-scale machine noise; default: "
                             "%(default)s)")
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.experiment == "trace":
        return _run_trace(args, parser)
    if args.experiment == "profile":
        return _run_profile(args, parser)
    if args.experiment == "run":
        return _run_scenario(args, parser)
    if args.experiment == "validate":
        return _run_validate(args, parser)
    if args.experiment == "catalogue":
        return _run_catalogue(args, parser)
    if args.experiment == "status":
        return _run_status(args, parser)
    if args.target is not None:
        parser.error("a second positional argument is only valid for "
                     "'run', 'trace', 'profile', 'validate', and 'status'")

    if args.experiment == "list":
        if args.json:
            print(_list_json())
            return 0
        for name, (description, _run) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        print("  bench    perf baseline: time every figure at quick scale")
        print("  run      any registered scenario by name or alias "
              "(or a payload file, see docs/SCENARIOS.md):")
        for name in scenario_names():
            spec = SCENARIOS[name]
            alias_note = (f"  (aliases: {', '.join(spec.aliases)})"
                          if spec.aliases else "")
            print(f"    {name:14s} {spec.title}{alias_note}")
        print("  validate  schema-check a scenario payload file")
        print("  catalogue scenario table (--markdown / --check)")
        print("  trace    one traced figure run -> Perfetto JSON")
        print("  profile  one profiled figure run -> latency attribution")
        print("  status   summarize a sweep run ledger "
              "(--ledger FILE / $REPRO_LEDGER)")
        print("  lint     simulator-aware static analysis (determinism, "
              "cycle-safety, trace discipline, whole-program call-graph "
              "rules)")
        if args.dsl:
            from repro.experiments.dsl import schema_reference

            print()
            print(schema_reference())
        return 0

    if args.experiment == "bench":
        return _run_bench(args, parser)

    runner = ParallelSweepRunner(jobs=args.jobs, trace_dir=args.trace_dir,
                                 profile_dir=args.profile_dir,
                                 ledger_path=args.ledger,
                                 progress=args.progress or None)
    scale = ExperimentScale.quick() if args.quick else ExperimentScale.bench()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        description, run = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        started = time.time()
        run(scale, runner)
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
