"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig12                # one figure at bench scale
    python -m repro fig15 --quick        # one figure at smoke scale
    python -m repro all                  # the whole evaluation section
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentScale
from repro.experiments import (
    fig3_idealized,
    fig12_fm_seeding,
    fig13_coalescing,
    fig14_hash_seeding,
    fig15_kmer_counting,
    fig16_prealignment,
    fig17_energy_breakdown,
    summary,
    tables,
)

EXPERIMENTS = {
    "fig3": ("idealized communication for prior DDR-DIMM NDP",
             lambda scale: fig3_idealized.main(scale)),
    "fig12": ("FM-index DNA seeding, step-by-step",
              lambda scale: fig12_fm_seeding.main(scale)),
    "fig13": ("per-chip balance from multi-chip coalescing",
              lambda scale: fig13_coalescing.main(scale)),
    "fig14": ("Hash-index DNA seeding, step-by-step",
              lambda scale: fig14_hash_seeding.main(scale)),
    "fig15": ("k-mer counting, step-by-step",
              lambda scale: fig15_kmer_counting.main(scale)),
    "fig16": ("DNA pre-alignment vs CPU",
              lambda scale: fig16_prealignment.main(scale)),
    "fig17": ("energy breakdown across the stack",
              lambda scale: fig17_energy_breakdown.main(scale)),
    "table1": ("experimental configuration", lambda scale: tables.main()),
    "table2": ("PE hardware overhead", lambda scale: tables.main()),
    "sec6g": ("aggregate optimization gains",
              lambda scale: summary.main(scale)),
}


def main(argv=None) -> int:
    """Run the experiment and print the paper-style rows."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the BEACON paper's evaluation artifacts.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (seconds instead of minutes)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _run) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        return 0

    scale = ExperimentScale.quick() if args.quick else ExperimentScale.bench()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        description, run = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        started = time.time()
        run(scale)
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
