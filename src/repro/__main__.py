"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig12                # one figure at bench scale
    python -m repro fig15 --quick        # one figure at smoke scale
    python -m repro all --jobs 4         # the whole evaluation, 4 processes
    python -m repro bench                # perf baseline -> BENCH_results.json

Sweep points within a figure are independent simulations; ``--jobs N`` (or
the ``REPRO_JOBS`` environment variable) fans them out over N processes
with results identical to a serial run.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments import (
    fig3_idealized,
    fig12_fm_seeding,
    fig13_coalescing,
    fig14_hash_seeding,
    fig15_kmer_counting,
    fig16_prealignment,
    fig17_energy_breakdown,
    summary,
    tables,
)

EXPERIMENTS = {
    "fig3": ("idealized communication for prior DDR-DIMM NDP",
             lambda scale, runner: fig3_idealized.main(scale, runner=runner)),
    "fig12": ("FM-index DNA seeding, step-by-step",
              lambda scale, runner: fig12_fm_seeding.main(scale, runner=runner)),
    "fig13": ("per-chip balance from multi-chip coalescing",
              lambda scale, runner: fig13_coalescing.main(scale, runner=runner)),
    "fig14": ("Hash-index DNA seeding, step-by-step",
              lambda scale, runner: fig14_hash_seeding.main(scale, runner=runner)),
    "fig15": ("k-mer counting, step-by-step",
              lambda scale, runner: fig15_kmer_counting.main(scale, runner=runner)),
    "fig16": ("DNA pre-alignment vs CPU",
              lambda scale, runner: fig16_prealignment.main(scale, runner=runner)),
    "fig17": ("energy breakdown across the stack",
              lambda scale, runner: fig17_energy_breakdown.main(scale, runner=runner)),
    "table1": ("experimental configuration", lambda scale, runner: tables.main()),
    "table2": ("PE hardware overhead", lambda scale, runner: tables.main()),
    "sec6g": ("aggregate optimization gains",
              lambda scale, runner: summary.main(scale, runner=runner)),
}


def main(argv=None) -> int:
    """Run the experiment and print the paper-style rows."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the BEACON paper's evaluation artifacts.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list", "bench"],
                        help="which table/figure to regenerate ('bench' "
                             "times the quick-scale suite and writes the "
                             "perf baseline)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke scale (seconds instead of minutes)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan independent sweep points out over N "
                             "processes (default: $REPRO_JOBS or 1)")
    parser.add_argument("--output", default="BENCH_results.json",
                        help="bench only: where to write the perf baseline "
                             "(default: %(default)s)")
    parser.add_argument("--no-verify", action="store_true",
                        help="bench only: skip the bit-identical check "
                             "against the serial/uncached reference")
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.experiment == "list":
        for name, (description, _run) in sorted(EXPERIMENTS.items()):
            print(f"  {name:8s} {description}")
        print("  bench    perf baseline: time every figure at quick scale")
        return 0

    if args.experiment == "bench":
        from repro.perf import run_bench

        run_bench(jobs=args.jobs, verify=not args.no_verify,
                  output=args.output)
        return 0

    runner = ParallelSweepRunner(jobs=args.jobs)
    scale = ExperimentScale.quick() if args.quick else ExperimentScale.bench()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        description, run = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        started = time.time()
        run(scale, runner)
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
