"""Performance harness: timed figure runs and the perf-regression baseline.

``python -m repro bench`` times every figure at quick scale, verifies the
simulated results are bit-identical to the serial/uncached scheduling path,
and writes ``BENCH_results.json`` — the wall-clock/events-per-second
trajectory that future changes are judged against.
"""

from repro.perf.harness import (
    BENCH_SCHEMA,
    BenchMismatchError,
    FigureBenchResult,
    bench_figures,
    fingerprint,
    resolve_figure,
    run_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchMismatchError",
    "FigureBenchResult",
    "bench_figures",
    "fingerprint",
    "resolve_figure",
    "run_bench",
]
