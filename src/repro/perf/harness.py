"""Timed figure campaigns + bit-identical verification + BENCH baseline.

Each benched figure is executed twice at quick scale:

1. a *timed* run with the configured job count, the controller's timing
   plan cache, and the cross-run index cache enabled (the production
   path), and
2. a *reference* run, serial and with ``REPRO_DISABLE_PLAN_CACHE=1`` and
   ``REPRO_DISABLE_INDEX_CACHE=1`` (the always-recompute path),

and the two runs' :class:`~repro.core.metrics.Report` fingerprints —
cycle counts, energy components, task counts — must match exactly.  The
optimizations are pure host-side work elision (scheduling plans, index
construction); any divergence is a bug, so the harness hard-asserts
rather than warning.

``BENCH_results.json`` schema (``repro-bench/3``)::

    {
      "schema": "repro-bench/3",
      "created_unix": <float, seconds since epoch>,
      "scale": "quick",
      "jobs": <int>,
      "repeats": <int>,               # timed runs per figure; wall_s /
                                      # events_per_sec are the best run
                                      # (machine noise at quick scale is
                                      # +/-20%; best-of-N is stable)
      "figures": {
        "<figure>": {
          "wall_s": <float>,          # best timed-run wall clock
          "events": <int>,            # simulation events executed
          "events_per_sec": <float>,  # events / wall_s (0 when jobs > 1:
                                      # events then execute in workers)
          "scheduler": <str>,         # event scheduler of the timed run
          "occupancy": <dict or null>,  # per-scheduler queue stats from
                                      # Engine.process_occupancy(): events
                                      # enqueued, cycles started, max/avg
                                      # same-cycle batch size
          "schedulers": <dict or null>,  # comparison runs under the other
                                      # registered schedulers: name ->
                                      # {wall_s, events, events_per_sec,
                                      # occupancy, verified_identical};
                                      # fingerprints are hard-asserted
                                      # equal to the primary run
          "verified_identical": <bool or null>,  # null = verify skipped
          "reference_wall_s": <float or null>,  # serial/uncached run wall
                                      # clock (null = verify skipped);
                                      # wall_s vs this shows the cache win
          "index_cache": <dict or null>,  # in-process index-cache counter
                                      # deltas over the timed run (hits/
                                      # misses/build_s/...); undercounts
                                      # when jobs > 1 (workers keep their
                                      # own caches)
          "attribution": <dict or null>  # latency attribution from an
                                      # in-stream profiled pass (request/
                                      # task phase totals in cycles plus a
                                      # per-system bound verdict); null
                                      # unless benched with attribution
        }, ...
      },
      "previous": <dict or null>,     # baseline block lifted from the
                                      # output file being overwritten:
                                      # {schema, created_unix,
                                      # events_per_sec: {figure: eps},
                                      # geomean_speedup} — the committed
                                      # history of the perf trajectory
      "total_wall_s": <float>
    }
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.metrics import Report
from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.experiments.scenarios import (
    SCENARIOS,
    ensure_registered,
    resolve_scenario,
)
from repro.genomics import index_cache
from repro.schemas import SCHEMAS
from repro.sim.engine import Engine
from repro.sim.scheduler import DEFAULT_SCHEDULER, SCHEDULER_ENV, SCHEDULERS

BENCH_SCHEMA = SCHEMAS["bench"]

ensure_registered()

#: The benched campaigns: name -> ``run(scale, runner)`` callable.  Built
#: from the scenario registry, so registration order *is* bench order and
#: every scenario registered by ``ensure_registered`` is benched.
BENCH_FIGURES: Dict[str, Callable[..., Any]] = {
    name: spec.run for name, spec in SCENARIOS.items()
}


def resolve_figure(name: str) -> Optional[str]:
    """Resolve a figure name or alias to its :data:`BENCH_FIGURES` key.

    Delegates to the scenario registry's
    :func:`~repro.experiments.scenarios.resolve_scenario`, so the bench
    key itself (``fig16``), declared aliases, and the experiment-module
    style (``fig16_prealignment``, ``fig16-prealignment``) all work;
    returns ``None`` when nothing matches.
    """
    canonical = resolve_scenario(name)
    return canonical if canonical in BENCH_FIGURES else None


# -- result fingerprinting ---------------------------------------------------------


def _walk_reports(obj: Any) -> Iterator[Report]:
    """Yield every :class:`Report` reachable from a result object, in a
    deterministic traversal order (dataclass field order, list order,
    insertion order for dicts)."""
    if isinstance(obj, Report):
        yield obj
        return
    if is_dataclass(obj) and not isinstance(obj, type):
        for f in fields(obj):
            yield from _walk_reports(getattr(obj, f.name))
        return
    if isinstance(obj, dict):
        for value in obj.values():
            yield from _walk_reports(value)
        return
    if isinstance(obj, (list, tuple)):
        for value in obj:
            yield from _walk_reports(value)


def fingerprint(result: Any) -> List[Tuple]:
    """Exact (bit-identical) digest of every report in a figure result."""
    return [
        (
            r.label,
            r.system,
            r.algorithm,
            r.dataset,
            r.runtime_cycles,
            r.energy_dram_nj,
            r.energy_comm_nj,
            r.energy_compute_nj,
            r.tasks_completed,
            r.mem_requests,
        )
        for r in _walk_reports(result)
    ]


class BenchMismatchError(AssertionError):
    """A cached/parallel run diverged from the serial/uncached reference."""


# -- the harness -------------------------------------------------------------------


@dataclass
class FigureBenchResult:
    """Timing (and optional latency attribution) of one figure campaign."""

    name: str
    wall_s: float
    events: int
    #: Event scheduler the timed run used (``REPRO_SCHEDULER`` or the
    #: default); comparison runs under other schedulers land in
    #: :attr:`schedulers`.
    scheduler: str = DEFAULT_SCHEDULER
    #: Timed runs taken; ``wall_s``/``events`` are the best (fastest) one.
    repeats: int = 1
    #: Per-scheduler queue statistics from the timed run (see
    #: :meth:`repro.sim.engine.Engine.process_occupancy`): events
    #: enqueued, cycles started, max/avg same-cycle batch size.
    occupancy: Optional[Dict[str, Any]] = None
    #: Comparison runs under the other registered schedulers, keyed by
    #: scheduler name; each carries its own timing + occupancy and a
    #: ``verified_identical`` flag (fingerprint parity with the primary
    #: run, hard-asserted by :func:`bench_figures`).
    schedulers: Optional[Dict[str, Dict[str, Any]]] = None
    verified_identical: Optional[bool] = None
    #: Wall clock of the serial/uncached reference run (``None`` when the
    #: verify pass is skipped); ``wall_s`` against this is the combined
    #: plan-cache + index-cache + parallelism win.
    reference_wall_s: Optional[float] = None
    #: In-process index-cache counter deltas over the timed run (see
    #: :func:`repro.genomics.index_cache.cache_stats`); undercounts when
    #: jobs > 1 because pool workers keep their own caches.
    index_cache: Optional[Dict[str, Any]] = None
    #: Compact latency attribution from a profiled pass (see
    #: :func:`bench_figures` ``attribution=``), or ``None``.
    attribution: Optional[Dict[str, Any]] = None

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "scheduler": self.scheduler,
            "occupancy": self.occupancy,
            "schedulers": self.schedulers,
            "verified_identical": self.verified_identical,
            "reference_wall_s": self.reference_wall_s,
            "index_cache": self.index_cache,
            "attribution": self.attribution,
        }


def _timed_run(
    fn: Callable[..., Any], scale: ExperimentScale,
    runner: ParallelSweepRunner, scheduler: Optional[str] = None,
) -> Tuple[Any, float, int, Dict[str, Any], Dict[str, Any]]:
    """One timed figure run; returns ``(result, wall_s, events,
    index_cache_delta, occupancy)``.

    The engine's process-wide counters are reset up front
    (:meth:`Engine.reset_process_counters`) so the event count and the
    scheduler-occupancy report read back afterwards are exactly this
    run's, with no delta bookkeeping.  With ``scheduler`` set, the run
    executes under that event scheduler via ``REPRO_SCHEDULER``.
    """
    previous = os.environ.get(SCHEDULER_ENV)
    if scheduler is not None:
        os.environ[SCHEDULER_ENV] = scheduler
    try:
        Engine.reset_process_counters()
        cache_before = index_cache.cache_stats()
        started = time.perf_counter()
        result = fn(scale, runner=runner)
        wall = time.perf_counter() - started
        events = Engine.global_events_executed()
        occupancy = Engine.process_occupancy()
        cache_after = index_cache.cache_stats()
        cache_delta = {
            key: cache_after[key] - cache_before[key] for key in cache_after
        }
        return result, wall, events, cache_delta, occupancy
    finally:
        if scheduler is not None:
            if previous is None:
                os.environ.pop(SCHEDULER_ENV, None)
            else:
                os.environ[SCHEDULER_ENV] = previous


def _best_timed_run(
    fn: Callable[..., Any], scale: ExperimentScale,
    runner: ParallelSweepRunner, repeats: int,
    scheduler: Optional[str] = None,
) -> Tuple[Any, float, int, Dict[str, Any], Dict[str, Any]]:
    """Best-of-``repeats`` wrapper around :func:`_timed_run`.

    Quick-scale figures finish in a few seconds, where host machine noise
    swings wall clocks by +/-20%; keeping the fastest of N runs makes the
    recorded events/sec reproducible.  Results are bit-identical across
    runs (that is separately verified), so any run's result object works.
    """
    best = None
    for _ in range(max(1, repeats)):
        attempt = _timed_run(fn, scale, runner, scheduler=scheduler)
        if best is None or attempt[1] < best[1]:
            best = attempt
    return best


#: Environment switches flipped for the reference (always-recompute) run.
_REFERENCE_DISABLES = ("REPRO_DISABLE_PLAN_CACHE", index_cache.DISABLE_ENV)


def _reference_run(fn: Callable[..., Any],
                   scale: ExperimentScale) -> Tuple[Any, float]:
    """Serial, cache-disabled run (the pre-optimization semantics): the
    plan cache and the cross-run index cache are both off.  Returns the
    result and its wall clock (the uncached baseline for the cache win)."""
    serial = ParallelSweepRunner(jobs=1)
    previous = {name: os.environ.get(name) for name in _REFERENCE_DISABLES}
    for name in _REFERENCE_DISABLES:
        os.environ[name] = "1"
    try:
        started = time.perf_counter()
        result = fn(scale, runner=serial)
        return result, time.perf_counter() - started
    finally:
        for name, value in previous.items():
            if value is None:
                del os.environ[name]
            else:
                os.environ[name] = value


#: Event cap for verification-only traced runs: small on purpose — the
#: point is exercising the instrumented code paths, not keeping events.
TRACE_VERIFY_LIMIT = 50_000


def _traced_run(fn: Callable[..., Any], scale: ExperimentScale) -> Any:
    """Serial run with tracing enabled, for tracing-is-observational checks."""
    from repro.obs import TraceSession

    serial = ParallelSweepRunner(jobs=1)
    with TraceSession(limit=TRACE_VERIFY_LIMIT):
        return fn(scale, runner=serial)


def _telemetry_run(fn: Callable[..., Any], scale: ExperimentScale) -> Any:
    """Serial run with the run ledger and progress line enabled, for
    telemetry-is-observational checks (``bench --verify-telemetry``).

    The ledger goes to a throwaway temp file and the progress line to an
    in-memory stream, so the check leaves no artifacts; only the
    fingerprint comparison against the plain run matters.
    """
    import io
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        serial = ParallelSweepRunner(
            jobs=1,
            ledger_path=os.path.join(tmp, "verify-ledger.jsonl"),
            progress=True,
            progress_stream=io.StringIO(),
        )
        return fn(scale, runner=serial)


def _profiled_run(
    fn: Callable[..., Any], scale: ExperimentScale, figure: str
) -> Tuple[Any, Dict[str, Any]]:
    """Serial run with the in-stream profiler attached (zero stored
    events); returns the figure result and a compact attribution dict."""
    from repro.obs import TraceSession

    serial = ParallelSweepRunner(jobs=1)
    with TraceSession(limit=0, profile=True) as session:
        result = fn(scale, runner=serial)
    report = session.profile_report(figure=figure, scale="quick")
    totals = report.totals
    attribution = {
        "request_phases_cycles": dict(totals["requests"]["phases_cycles"]),
        "task_phases_cycles": dict(totals["tasks"]["phases_cycles"]),
        "bound_by_system": dict(totals["bound_by_system"]),
    }
    return result, attribution


def bench_figures(
    figures: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    verify: bool = True,
    scale: Optional[ExperimentScale] = None,
    progress: Optional[Callable[[str], None]] = None,
    trace_verify: bool = False,
    attribution: bool = False,
    telemetry_verify: bool = False,
    repeats: int = 1,
    schedulers: Optional[Sequence[str]] = None,
) -> List[FigureBenchResult]:
    """Time each figure campaign; optionally verify against the reference.

    Raises :class:`BenchMismatchError` if any verified figure's simulated
    cycle counts or energy totals differ from the serial/uncached path.
    With ``trace_verify``, each figure additionally runs once with tracing
    enabled and its fingerprint must match the timed run — tracing is
    observational and must never perturb simulated behaviour.  With
    ``attribution``, each figure runs once more under the in-stream
    latency profiler (which must also leave the fingerprint untouched)
    and its result row carries the phase-decomposition totals.  With
    ``telemetry_verify``, each figure runs once more with the fleet
    run-ledger and progress line enabled and its fingerprint must match —
    the same discipline, applied to the telemetry layer.

    ``repeats`` times each figure N times and records the fastest run
    (quick-scale machine noise is +/-20%; the best of 3 is stable).
    ``schedulers`` names additional event schedulers (see
    :data:`repro.sim.scheduler.SCHEDULERS`) to time each figure under for
    comparison; their fingerprints are hard-asserted bit-identical to the
    primary run's (:class:`BenchMismatchError` otherwise), making every
    bench also a scheduler-parity check.
    """
    names = list(figures) if figures is not None else list(BENCH_FIGURES)
    unknown = sorted(set(names) - set(BENCH_FIGURES))
    if unknown:
        raise ValueError(f"unknown bench figures: {unknown}")
    extra_schedulers = list(schedulers) if schedulers else []
    unknown_scheds = sorted(set(extra_schedulers) - set(SCHEDULERS))
    if unknown_scheds:
        raise ValueError(f"unknown schedulers: {unknown_scheds}")
    primary_scheduler = os.environ.get(SCHEDULER_ENV) or DEFAULT_SCHEDULER
    scale = scale if scale is not None else ExperimentScale.quick()
    runner = ParallelSweepRunner(jobs=jobs)
    results: List[FigureBenchResult] = []
    for name in names:
        fn = BENCH_FIGURES[name]
        if progress:
            progress(f"[bench] {name}: timing ...")
        result, wall, events, cache_delta, occ = _best_timed_run(
            fn, scale, runner, repeats)
        entry = FigureBenchResult(name=name, wall_s=wall, events=events,
                                  scheduler=primary_scheduler,
                                  repeats=max(1, repeats),
                                  occupancy=occ or None,
                                  index_cache=cache_delta)
        base_print = fingerprint(result)
        for sched_name in extra_schedulers:
            if sched_name == primary_scheduler:
                continue
            if progress:
                progress(f"[bench] {name}: timing under "
                         f"{sched_name} scheduler ...")
            s_result, s_wall, s_events, _, s_occ = _best_timed_run(
                fn, scale, runner, repeats, scheduler=sched_name)
            if fingerprint(s_result) != base_print:
                raise BenchMismatchError(
                    f"{name}: results under the {sched_name} scheduler "
                    f"diverge from the {primary_scheduler} run — event "
                    "schedulers must be order-identical"
                )
            if entry.schedulers is None:
                entry.schedulers = {}
            entry.schedulers[sched_name] = {
                "wall_s": s_wall,
                "events": s_events,
                "events_per_sec": (s_events / s_wall if s_wall > 0 else 0.0),
                "occupancy": s_occ or None,
                "verified_identical": True,
            }
        if verify:
            if progress:
                progress(f"[bench] {name}: verifying vs serial/uncached ...")
            reference, entry.reference_wall_s = _reference_run(fn, scale)
            identical = fingerprint(result) == fingerprint(reference)
            entry.verified_identical = identical
            if not identical:
                raise BenchMismatchError(
                    f"{name}: cached/parallel results diverge from the "
                    "serial/uncached reference — scheduler caching, the "
                    "index cache, or the parallel fan-out changed simulated "
                    "behaviour"
                )
        if trace_verify:
            if progress:
                progress(f"[bench] {name}: verifying tracing on == off ...")
            traced = _traced_run(fn, scale)
            if fingerprint(result) != fingerprint(traced):
                raise BenchMismatchError(
                    f"{name}: results with tracing enabled diverge from the "
                    "untraced run — an instrumentation site is perturbing "
                    "simulated behaviour"
                )
        if telemetry_verify:
            if progress:
                progress(f"[bench] {name}: verifying telemetry on == off ...")
            observed = _telemetry_run(fn, scale)
            if fingerprint(result) != fingerprint(observed):
                raise BenchMismatchError(
                    f"{name}: results with the run ledger and progress line "
                    "enabled diverge from the plain run — fleet telemetry "
                    "must be purely observational"
                )
        if attribution:
            if progress:
                progress(f"[bench] {name}: profiling latency attribution ...")
            profiled, entry.attribution = _profiled_run(fn, scale, name)
            if fingerprint(result) != fingerprint(profiled):
                raise BenchMismatchError(
                    f"{name}: results with the profiler attached diverge "
                    "from the unprofiled run — profiling must be purely "
                    "observational"
                )
        results.append(entry)
    return results


def _previous_baseline(output: str) -> Optional[Dict[str, Any]]:
    """Compact baseline block lifted from the bench file being replaced.

    Keeps the overwritten run's schema id, timestamp, and per-figure
    events/sec so the new file documents the perf trajectory (and the
    compare gate's reference) without needing git archaeology.  Returns
    ``None`` when there is no prior file or it is unreadable.
    """
    if not output or not os.path.exists(output):
        return None
    try:
        with open(output, "r", encoding="utf-8") as handle:
            old = json.load(handle)
        eps = {
            name: float(fig["events_per_sec"])
            for name, fig in old.get("figures", {}).items()
            if isinstance(fig, dict) and fig.get("events_per_sec")
        }
    except (OSError, ValueError, TypeError, KeyError):
        return None
    if not eps:
        return None
    return {
        # repro: allow[schema-id-registry] -- echoes the replaced file's
        # own schema id into the history block, whatever (possibly
        # superseded) version it carried; inherently dynamic, never parsed.
        "schema": old.get("schema"),
        "created_unix": old.get("created_unix"),
        "events_per_sec": eps,
    }


def _geomean_speedup(results: Sequence[FigureBenchResult],
                     previous: Dict[str, Any]) -> Optional[float]:
    """Geometric-mean events/sec ratio of ``results`` over ``previous``."""
    ratios = [
        r.events_per_sec / previous["events_per_sec"][r.name]
        for r in results
        if r.name in previous["events_per_sec"]
        and previous["events_per_sec"][r.name] > 0
        and r.events_per_sec > 0
    ]
    if not ratios:
        return None
    return math.exp(sum(math.log(x) for x in ratios) / len(ratios))


def run_bench(
    figures: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    verify: bool = True,
    output: str = "BENCH_results.json",
    progress: Optional[Callable[[str], None]] = print,
    trace_verify: bool = False,
    attribution: bool = False,
    telemetry_verify: bool = False,
    repeats: int = 3,
    schedulers: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The ``python -m repro bench`` entry point: bench, verify, persist.

    By default each figure is timed best-of-3 and additionally run under
    every registered scheduler other than the primary one (fingerprint
    parity asserted), so the persisted file carries a per-scheduler
    events/sec comparison.  Pass ``schedulers=()`` to skip the comparison
    runs.
    """
    runner = ParallelSweepRunner(jobs=jobs)
    primary_scheduler = os.environ.get(SCHEDULER_ENV) or DEFAULT_SCHEDULER
    if schedulers is None:
        schedulers = sorted(set(SCHEDULERS) - {primary_scheduler})
    previous = _previous_baseline(output)
    results = bench_figures(figures=figures, jobs=runner.jobs, verify=verify,
                            progress=progress, trace_verify=trace_verify,
                            attribution=attribution,
                            telemetry_verify=telemetry_verify,
                            repeats=repeats, schedulers=schedulers)
    if previous is not None:
        previous["geomean_speedup"] = _geomean_speedup(results, previous)
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "scale": "quick",
        "jobs": runner.jobs,
        "repeats": max(1, repeats),
        "figures": {r.name: r.to_dict() for r in results},
        "previous": previous,
        "total_wall_s": sum(r.wall_s for r in results),
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if progress:
            progress(f"[bench] wrote {output}")
    if progress:
        for r in results:
            verdict = ("ok" if r.verified_identical
                       else "UNVERIFIED" if r.verified_identical is None
                       else "MISMATCH")
            others = ""
            if r.schedulers:
                others = "  vs " + ", ".join(
                    f"{sched}={info['events_per_sec']:.0f}"
                    for sched, info in sorted(r.schedulers.items())
                )
            progress(
                f"[bench] {r.name:12s} {r.wall_s:7.2f}s "
                f"{r.events:>10d} events  {r.events_per_sec:>12.0f} ev/s  "
                f"[{verdict}]{others}"
            )
        progress(f"[bench] total {payload['total_wall_s']:.2f}s "
                 f"(jobs={runner.jobs}, repeats={payload['repeats']}, "
                 f"scheduler={primary_scheduler})")
        if previous is not None and previous.get("geomean_speedup"):
            progress(f"[bench] geomean speedup vs previous baseline "
                     f"({previous['schema']}): "
                     f"{previous['geomean_speedup']:.2f}x")
    return payload
