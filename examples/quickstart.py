#!/usr/bin/env python
"""Quickstart: simulate FM-index DNA seeding on BEACON-D.

Builds a scaled-down BEACON-D system (CXL memory pool with two switches,
one CXLG-DIMM each), generates a synthetic genome + reads, runs the full
optimization stack, and compares against CXL-vanilla, MEDAL, and the
48-thread CPU model.

Run:  python examples/quickstart.py
"""

from repro.baselines import CpuModel, Medal
from repro.core import Algorithm, BeaconConfig, BeaconD, OptimizationFlags
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload


def main() -> None:
    # A scaled simulation: smaller genome/PE counts, same architecture.
    config = BeaconConfig().scaled(8)
    workload = make_seeding_workload(SEEDING_DATASETS[0], scale=0.1,
                                     read_scale=4.0)
    print(f"dataset {workload.spec.label}: {len(workload.reference):,} bp "
          f"reference, {len(workload.reads)} reads\n")

    # CXL-vanilla: the naive NDP near the pool, no optimizations.
    vanilla = BeaconD(config=config, flags=OptimizationFlags.vanilla(),
                      label="CXL-vanilla")
    vanilla_report = vanilla.run_fm_seeding(workload)
    print(vanilla_report.summary())

    # Full BEACON-D: packing + device bias + placement + coalescing.
    full_flags = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)
    beacon = BeaconD(config=config, flags=full_flags, label="BEACON-D")
    beacon_report = beacon.run_fm_seeding(workload)
    print(beacon_report.summary())

    # Baselines.
    medal_report = Medal(config=config).run_fm_seeding(workload)
    cpu_report = CpuModel().run_fm_seeding(workload)

    print(f"\nBEACON-D vs CXL-vanilla: "
          f"x{beacon_report.speedup_vs(vanilla_report):.2f} performance, "
          f"x{beacon_report.energy_reduction_vs(vanilla_report):.2f} energy")
    print(f"BEACON-D vs MEDAL:       "
          f"x{beacon_report.speedup_vs(medal_report):.2f} performance")
    print(f"BEACON-D vs 48-core CPU: "
          f"x{beacon_report.speedup_vs(cpu_report):.1f} performance")
    print(f"\ncommunication energy share: "
          f"{vanilla_report.comm_energy_fraction:.1%} (vanilla) -> "
          f"{beacon_report.comm_energy_fraction:.1%} (full)")
    print(f"PE utilization: {beacon_report.extra['pe_utilization']:.1%}; "
          f"DIMM-local requests: "
          f"{beacon_report.extra['local_requests'] / beacon_report.mem_requests:.1%}")


if __name__ == "__main__":
    main()
