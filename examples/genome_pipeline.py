#!/usr/bin/env python
"""A Fig. 2 pipeline slice: seeding -> pre-alignment, accelerated end to end.

Demonstrates that the simulated accelerator runs the *real* algorithms:
reads are seeded with the hash index on BEACON-D, the candidate locations
feed the Shouji pre-alignment filter on BEACON-S, and the example
cross-checks every surviving candidate against the true read origins.

Run:  python examples/genome_pipeline.py
"""

from repro.core import Algorithm, BeaconConfig, BeaconD, BeaconS, OptimizationFlags
from repro.genomics.hash_index import HashIndex
from repro.genomics.prealign import ShoujiFilter
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload


def main() -> None:
    config = BeaconConfig().scaled(8)
    workload = make_seeding_workload(SEEDING_DATASETS[1], scale=0.1,
                                     read_scale=2.0, error_rate=0.01)
    reference = workload.reference
    print(f"pipeline on {workload.spec.label}: {len(reference):,} bp, "
          f"{len(workload.reads)} reads")

    # -- stage 1: hash-index seeding on BEACON-D ---------------------------------
    seeder = BeaconD(
        config=config,
        flags=OptimizationFlags.all_for("beacon-d", Algorithm.HASH_SEEDING),
        label="seeding",
    )
    seeding_report = seeder.run_hash_seeding(workload)
    print(f"\nstage 1 (hash seeding on BEACON-D): {seeding_report.summary()}")

    # The same index, used functionally to collect the candidates the
    # accelerator produced (the simulation is execution-driven, so the
    # functional results and the simulated run agree by construction).
    index = HashIndex(reference, k=13, stride=1,
                      num_buckets=max(64, (len(reference) - 12) // 4))
    candidates = []
    for read_id, read in enumerate(workload.reads):
        seen = set()
        for query in index.seed_read(read):
            for location in query.locations:
                window_start = max(0, location - 20)
                if window_start not in seen:
                    seen.add(window_start)
                    candidates.append((read_id, window_start))
    print(f"stage 1 produced {len(candidates)} candidate locations")

    # -- stage 2: pre-alignment filtering on BEACON-S ------------------------------
    prealigner = BeaconS(
        config=config,
        flags=OptimizationFlags.all_for("beacon-s", Algorithm.PREALIGNMENT),
        label="prealign",
    )
    prealign_report = prealigner.run_prealignment(workload, max_edits=3)
    print(f"stage 2 (pre-alignment on BEACON-S): {prealign_report.summary()}")

    # Functional cross-check of filter quality on the seeded candidates.
    shouji = ShoujiFilter(max_edits=3)
    kept = 0
    true_kept = 0
    for read_id, start in candidates:
        read = workload.reads[read_id]
        window = reference[start : start + len(read) + 6]
        from repro.genomics.sequence import reverse_complement

        verdict = shouji.accepts(read, window) or shouji.accepts(
            reverse_complement(read), window
        )
        if verdict:
            kept += 1
            if abs(start - workload.read_origins[read_id]) <= 40:
                true_kept += 1
    print(f"\nfilter kept {kept}/{len(candidates)} candidates; "
          f"{true_kept} are at the true origin "
          f"({true_kept / max(1, kept):.0%} precision into full alignment)")


if __name__ == "__main__":
    main()
