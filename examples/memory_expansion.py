#!/usr/bin/env python
"""Memory expansion with unmodified CXL-DIMMs — the paper's headline ability.

Walks the memory management framework end to end: dedicate the pool's
DIMMs (with memory clean of resident tenants), allocate an FM-index with
profile-guided hot placement, inspect where the bytes landed (hot blocks on
the CXLG-DIMMs, the tail on unmodified DIMMs), grow the allocation beyond
what the CXLG-DIMMs could hold by themselves, and de-allocate.

Run:  python examples/memory_expansion.py
"""

import numpy as np

from repro.core import BeaconConfig, BeaconD, OptimizationFlags
from repro.genomics.fm_index import FMIndex
from repro.genomics.workloads import SEEDING_DATASETS, make_seeding_workload
from repro.memmgmt import AllocationRequest


def main() -> None:
    config = BeaconConfig().scaled(8)
    flags = OptimizationFlags(data_packing=True, memory_access_opt=True,
                              data_placement=True)
    system = BeaconD(config=config, flags=flags, label="expansion-demo")

    # 1. Dedication already happened at construction (memory clean).
    print("pool inventory after dedication:")
    for index in system.allocator.all_dimms():
        state = system.allocator.dimm(index)
        kind = "CXLG      " if state.is_cxlg else "unmodified"
        print(f"  dimm {index} ({state.node}, {kind}) on {state.switch}: "
              f"dedicated={state.dedicated_to!r}, "
              f"non_cacheable={state.non_cacheable}")
    print(f"memory clean migrated "
          f"{system.framework.stats.get('migrated_bytes'):,.0f} tenant bytes; "
          f"{system.allocator.page_table_updates} page-table updates\n")

    # 2. Build and place an FM-index with hot-block profiling.
    workload = make_seeding_workload(SEEDING_DATASETS[2], scale=0.1)
    fm = FMIndex(workload.reference)
    hot = system._profile_fm_blocks(fm, workload.reads)
    response = system.framework.allocate(
        AllocationRequest(application="dna_seeding",
                          algorithm="fm_backward_search",
                          dataset=workload.name, size_bytes=fm.size_bytes),
        lambda: system.planner.fm_index("fm_index", fm.num_blocks, 32, hot),
    )
    region = response.region
    print(f"allocated {region.name!r}: {region.size:,} bytes at "
          f"{region.base:#x}")

    # 3. Where did the bytes go?  Hot blocks near the PEs.
    replica = region.layout.replicas["sw0"]
    order = np.argsort(-hot)
    hot_on_cxlg = sum(
        1 for b in order[:100]
        if system.allocator.dimm(replica.locate(int(b) * 32)[0]).is_cxlg
    )
    cold_on_cxlg = sum(
        1 for b in order[-100:]
        if system.allocator.dimm(replica.locate(int(b) * 32)[0]).is_cxlg
    )
    print(f"hottest 100 blocks on CXLG-DIMMs: {hot_on_cxlg}/100; "
          f"coldest 100: {cold_on_cxlg}/100")

    # 4. Expand: a second, larger region lands on unmodified DIMMs only —
    # on-demand expansion without touching any DRAM die.
    response = system.framework.allocate(
        AllocationRequest(application="kmer_counting", algorithm="single_pass",
                          dataset="Hs50x", size_bytes=1 << 24),
        lambda: system.planner.bloom_filter("bloom_global", 1 << 24,
                                            home_switch=None),
    )
    bloom_region = response.region
    touched = {system.allocator.dimm(d).node
               for d in bloom_region.layout.dimm_indices}
    print(f"\nexpansion region {bloom_region.name!r} ({bloom_region.size:,} B) "
          f"striped over {len(touched)} DIMMs: {sorted(touched)}")
    for index in system.allocator.all_dimms():
        state = system.allocator.dimm(index)
        print(f"  dimm {index}: {state.used_rows:,} rows in use")

    # 5. De-allocate through the framework interface.
    assert system.framework.deallocate("bloom_global").success
    assert system.framework.deallocate("fm_index").success
    print("\nde-allocation succeeded; regions unmapped")


if __name__ == "__main__":
    main()
