#!/usr/bin/env python
"""Section V extension: BEACON as a database index-probe accelerator.

The paper argues BEACON extends to other memory-bound applications "by
replacing the PEs within the NDP module".  This example does exactly that:
a custom "db_probe" engine walks a hash-partitioned in-memory index (the
dependent-pointer-chase pattern of Kocberber et al.'s index walkers), with
no genomics code involved — only the extension API.

Run:  python examples/database_search.py
"""

import numpy as np

from repro.core import BeaconConfig, BeaconD, OptimizationFlags
from repro.core.custom import CustomApplication, probe_steps


def synth_index_chains(num_keys: int, region_bytes: int, depth: int, seed: int):
    """Pointer-chase chains: each probe visits ``depth`` random nodes."""
    rng = np.random.default_rng(seed)
    for _ in range(num_keys):
        yield [int(a) // 8 * 8 for a in
               rng.integers(0, region_bytes - 8, size=depth)]


def main() -> None:
    config = BeaconConfig().scaled(8)
    flags = OptimizationFlags(data_packing=True, memory_access_opt=True,
                              data_placement=True)
    system = BeaconD(config=config, flags=flags, label="db-accelerator")

    # Replace the PEs: a B+-tree/hash probe engine, 24 cycles per node.
    app = CustomApplication(name="db_probe", compute_cycles=24)

    # The index lives in the pool like any other region.
    region_bytes = 1 << 22
    region = system.allocate_custom_region("index", region_bytes,
                                           spatially_local=False)
    print(f"index region: {region.size:,} bytes across DIMMs "
          f"{tuple(region.layout.dimm_indices)}")

    # 1000 key probes, 6 dependent node visits each.
    tasks = [
        app.task(probe_steps(app, chain, region.base), payload_bytes=16)
        for chain in synth_index_chains(1000, region_bytes, depth=6, seed=7)
    ]
    report = system.run_custom(app, tasks)
    print(report.summary())
    probes_per_us = len(tasks) / report.runtime_us
    print(f"throughput: {probes_per_us:,.1f} probes/us "
          f"({report.mem_requests} node visits, "
          f"comm {report.comm_energy_fraction:.1%} of energy)")


if __name__ == "__main__":
    main()
