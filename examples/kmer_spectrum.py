#!/usr/bin/env python
"""k-mer abundance spectrum on BEACON-S vs NEST.

Counts canonical 15-mers of a synthetic read set three ways — exact hash
map (ground truth), BEACON-S single-pass counting (simulated, global
counting Bloom filter with atomic RMW), and NEST's multi-pass flow — then
prints the abundance spectrum and the Bloom overcount rate of each.

Run:  python examples/kmer_spectrum.py
"""

from collections import Counter

from repro.baselines import Nest
from repro.core import Algorithm, BeaconConfig, BeaconS, OptimizationFlags
from repro.genomics.kmer_counting import exact_counts
from repro.genomics.workloads import make_kmer_workload

K = 15


def spectrum(counts):
    """abundance -> number of distinct k-mers at that abundance."""
    return Counter(counts.values())


def main() -> None:
    config = BeaconConfig().scaled(8)
    workload = make_kmer_workload(scale=0.15, read_scale=1.0)
    print(f"counting {K}-mers of {len(workload.reads)} reads "
          f"({sum(len(r) for r in workload.reads):,} bases)\n")

    truth = exact_counts(workload.reads, K)
    print(f"ground truth: {len(truth):,} distinct canonical {K}-mers")

    # BEACON-S, full stack (single-pass global filter).
    beacon = BeaconS(
        config=config,
        flags=OptimizationFlags.all_for("beacon-s", Algorithm.KMER_COUNTING),
        label="BEACON-S",
    )
    beacon_report = beacon.run_kmer_counting(workload, k=K,
                                             num_counters=1 << 17)
    print(f"BEACON-S: {beacon_report.summary()}")

    # NEST baseline (multi-pass, DIMM-local filters).
    nest = Nest(config=config)
    nest_report = nest.run_kmer_counting(workload, k=K, num_counters=1 << 17)
    print(f"NEST:     {nest_report.summary()}")
    print(f"\nBEACON-S vs NEST: x{beacon_report.speedup_vs(nest_report):.2f} "
          f"performance\n")

    # Accuracy: counting Bloom filters never undercount; measure overcount.
    for name, system in (("BEACON-S", beacon), ("NEST", nest)):
        bloom = system.kmer_global_filter
        overcounted = sum(
            1 for kmer, count in truth.items() if bloom.count(kmer) > count
        )
        assert all(bloom.count(k) >= min(c, bloom.saturation)
                   for k, c in truth.items())
        print(f"{name}: 0 undercounts (guaranteed), "
              f"{overcounted}/{len(truth)} overcounted "
              f"({overcounted / len(truth):.2%} Bloom collisions)")

    print("\nabundance spectrum (truth):")
    for abundance, kmers in sorted(spectrum(truth).items())[:8]:
        bar = "#" * max(1, kmers * 60 // len(truth))
        print(f"  {abundance:3d}x  {kmers:7,}  {bar}")


if __name__ == "__main__":
    main()
