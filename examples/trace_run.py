#!/usr/bin/env python
"""Trace a figure campaign and inspect where the simulated time went.

Runs the Fig. 12 FM-seeding campaign at quick scale inside a
`TraceSession`, writes a Chrome/Perfetto-loadable `trace.json` (plus a
`metrics.csv` of sampled live counters), and prints the five busiest
components by total span time.  Open the JSON in https://ui.perfetto.dev
to see DRAM commands, CXL flit traffic, PE occupancy, and task lifetimes
on one timeline; `docs/OBSERVABILITY.md` is the full reference.

Run:  python examples/trace_run.py  [figure]     (default: fig12)
"""

import sys
import time

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.obs import TraceSession, busiest_components
from repro.perf.harness import BENCH_FIGURES


def main() -> None:
    figure = sys.argv[1] if len(sys.argv) > 1 else "fig12"
    if figure not in BENCH_FIGURES:
        raise SystemExit(f"unknown figure {figure!r}; "
                         f"pick one of {sorted(BENCH_FIGURES)}")

    # Tracing is installed process-globally, so the experiment must run
    # in-process: a serial runner (jobs=1) instead of a worker pool.
    runner = ParallelSweepRunner(jobs=1)
    session = TraceSession(metrics_interval=50_000)
    started = time.time()
    with session:
        BENCH_FIGURES[figure](ExperimentScale.quick(), runner=runner)
    print(f"\n{figure} ran traced in {time.time() - started:.1f}s")

    recorder = session.recorder
    session.save("trace.json", metrics_path="metrics.csv")
    print(f"{recorder.recorded:,} events ({recorder.dropped} dropped) "
          f"across layers: {', '.join(sorted(recorder.layers()))}")
    print(f"{session.sampler.sample_count} live-metric samples")
    print("wrote trace.json + metrics.csv")

    print("\ntop 5 components by total span time:")
    for path, busy_us in busiest_components(recorder.chrome_events(), n=5):
        print(f"  {path:48s} {busy_us:12,.1f} us")
    print("\nopen trace.json in https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main()
