"""Bench: Table I — the experimental configuration echo."""

from conftest import run_once

from repro.core.config import BeaconConfig
from repro.experiments import tables


def test_table1_configuration(benchmark):
    result = run_once(benchmark, tables.run_table1)
    config = result.config
    # Table I invariants.
    assert config.total_dimms == 8            # 512 GiB pool of 64 GiB DIMMs
    assert config.geometry.ranks == 4
    assert config.geometry.chips_per_rank == 16
    assert config.geometry.bank_groups == 4
    assert config.timing.tcas == 22
    assert config.total_pes_d == 256          # 128 PEs per CXLG-DIMM x 2
    assert config.total_pes_s == 512          # 256 PEs per switch x 2
    assert len(result.rows) >= 5
