"""Bench: Fig. 15 — k-mer counting step-by-step.

Paper shape: both BEACON variants end up clearly ahead of NEST (5.19x /
6.19x); the memory access optimization is the largest communication step;
single-pass counting is BEACON-S's algorithm-specific lever (1.48x);
BEACON-S's placement step trades a little performance for energy.
"""

from conftest import run_once

from repro.experiments import fig15_kmer_counting


def test_fig15_kmer_counting(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig15_kmer_counting.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        sweep = result.sweep(system)
        # Full BEACON beats NEST and the CPU.
        assert sweep.speedup_vs_baseline() > (1.1 if scale.strict else 0.3)
        assert sweep.speedup_vs_cpu() > (30 if scale.strict else 3)
        # The optimization stack as a whole is a clear net win.
        assert sweep.total_opt_speedup > (1.5 if scale.strict else 1.0)
        assert sweep.total_opt_energy_gain > (1.0 if scale.strict else 0.8)
        # Within reach of idealized communication.
        assert sweep.percent_of_ideal > (0.25 if scale.strict else 0.1)

    if scale.strict:
        # BEACON-S: single-pass counting is a real lever (paper: 1.48x).
        s_steps = {s.label: s for s in result.sweep("beacon-s").steps}
        assert s_steps["+single-pass counting"].step_speedup > 1.05
        # The two communication optimizations together are the big k-mer
        # lever (paper: 1.07x x 2.75x ~ 2.9x).  Deviation note
        # (EXPERIMENTS.md): the paper attributes most of it to the memory
        # access optimization; our adaptive Data Packer absorbs the bulk
        # of the same host-bus relief in the packing step instead.
        for system in ("beacon-d", "beacon-s"):
            steps = {s.label: s for s in result.sweep(system).steps}
            comm_stack = (steps["+data packing"].step_speedup
                          * steps["+memory access opt"].step_speedup)
            assert comm_stack > 1.5
