"""Bench (extension): scalability with pool size — the title's claim.

Weak scaling should be near-perfect (replicated read-only indexes, per-
switch sharding); strong scaling should show real speedup once the
workload saturates a single switch.
"""

from conftest import run_once

from repro.experiments import scalability


def test_scalability(benchmark, scale, runner):
    result = run_once(benchmark, lambda: scalability.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        # Weak scaling: runtime roughly flat as pool and work grow together.
        assert result.weak_efficiency(system) > 0.6
        # Strong scaling: a bigger pool never hurts, and helps when the
        # workload is large enough to saturate a switch.
        assert result.strong_speedup(system) > (1.25 if scale.strict else 0.9)
        # Monotonicity: runtime never increases with pool size (fixed work).
        runtimes = [p.report.runtime_ns for p in result.strong[system]]
        assert all(b <= a * 1.05 for a, b in zip(runtimes, runtimes[1:]))
