"""Bench: Section VI-G — aggregate optimization gains.

Paper: the proposed optimizations give BEACON-D 2.21x performance and
3.70x energy on average, BEACON-S 1.99x / 2.04x, while cutting the
communication energy share to ~14% / ~13%.
"""

from conftest import run_once

from repro.experiments import summary


def test_sec6g_optimization_summary(benchmark, scale, runner):
    result = run_once(benchmark, lambda: summary.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        assert result.mean_opt_speedup(system) > (1.5 if scale.strict else 1.0)
        assert result.mean_opt_energy_gain(system) > (1.2 if scale.strict else 0.8)
        assert (result.mean_final_comm_share(system)
                < result.mean_vanilla_comm_share(system))
