"""Bench: Fig. 12 — FM-index based DNA seeding step-by-step.

Paper shape asserted here: BEACON-D's full stack clearly beats MEDAL
(paper: 4.36x) and the CPU by orders of magnitude; every optimization step
helps (or is neutral); the coalescing and placement steps are the big D
levers; the full designs sit within reach of idealized communication.
"""

from conftest import run_once

from repro.experiments import fig12_fm_seeding


def test_fig12_fm_seeding(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig12_fm_seeding.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        # Every cumulative step is a (near-)improvement on average.
        for label in result.step_labels(system)[1:]:
            assert result.mean_step_speedup(system, label) > 0.9, label
        # Full BEACON beats MEDAL and the CPU.
        assert result.mean_speedup_vs_baseline(system) > (1.5 if scale.strict else 0.7)
        assert result.mean_speedup_vs_cpu(system) > 50
        # Communication is no longer the bottleneck: a solid fraction of
        # the idealized-communication twin (paper: 96-98%).
        assert result.mean_percent_of_ideal(system) > (0.5 if scale.strict else 0.2)

    if scale.strict:
        # BEACON-D's algorithm-specific lever: multi-chip coalescing helps.
        assert result.mean_step_speedup("beacon-d", "+multi-chip coalescing") > 1.1
        # Placement & mapping is a major lever for both variants.
        assert result.mean_step_speedup("beacon-d", "+placement & mapping") > 1.2
        assert result.mean_step_speedup("beacon-s", "+placement & mapping") > 1.2
