"""Bench: Fig. 17 — energy breakdown across the optimization stack.

Paper: communication dominates CXL-vanilla's energy (D 60.68%, S 52.35%)
and the optimizations push it down (to 14.01% / 13.17%); computation stays
below 1% of total energy throughout.
"""

from conftest import run_once

from repro.experiments import fig17_energy_breakdown


def test_fig17_energy_breakdown(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig17_energy_breakdown.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        vanilla = result.vanilla_comm_share(system)
        final = result.final_comm_share(system)
        # Communication is a dominant vanilla cost and the stack slashes it.
        assert vanilla > (0.25 if scale.strict else 0.08)
        # The stack must cut the communication share (the paper's Fig. 17
        # trend).  The cut is strongest on BEACON-D (paper: 60.7% -> 14.0%);
        # BEACON-S keeps every access on the fabric by construction, so its
        # reduction is weaker in this reproduction (see EXPERIMENTS.md).
        if scale.strict:
            limit = 0.75 if system == "beacon-d" else 0.98
        else:
            limit = 1.6
        assert final < vanilla * limit
        # Computation is essentially free (paper: < 1%; allow some slack
        # at simulation scale).
        assert result.max_compute_share(system) < 0.05
        # Shares are well-formed.
        for share in result.shares[system]:
            assert 0.99 < share.comm + share.dram + share.compute < 1.01
