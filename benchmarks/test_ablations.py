"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these sweep the knobs the paper fixes
("the amount of DRAM chips to be coalesced ... is fine-tuned", FR-FCFS
controllers, packer flush behaviour, profile-guided placement depth) to
show the chosen defaults sit at or near the sweet spot.
"""

from dataclasses import replace

import pytest
from conftest import run_once

from repro.core import BeaconD
from repro.core.config import Algorithm, BeaconConfig, OptimizationFlags
from repro.experiments import ExperimentScale, SweepJob


def _fm_runtime(scale, config, flags):
    workload = scale.seeding_workload(scale.seeding_datasets()[0])
    system = BeaconD(config=config, flags=flags)
    return system.run_fm_seeding(workload)


def test_ablation_coalescing_group_size(benchmark, scale, runner):
    """Sweep the multi-chip coalescing factor: 1 (MEDAL-style) .. 16
    (lockstep).  The paper fine-tunes this; our default is 8."""
    flags = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)

    def sweep():
        reports = runner.run([
            SweepJob(
                key=str(chips), func=_fm_runtime,
                args=(scale, replace(scale.config(), coalesce_chips=chips),
                      flags),
            )
            for chips in (1, 2, 4, 8, 16)
        ])
        return {int(k): r.runtime_cycles for k, r in reports.items()}

    results = run_once(benchmark, sweep)
    print("\ncoalescing sweep (cycles):", results)
    # The single-chip extreme is the worst or near-worst point: coalescing
    # exists because g=1 serializes hot blocks on single chips.
    assert results[8] < results[1]
    # The default (8) is within 20% of the best swept point.
    assert results[8] <= min(results.values()) * 1.2


def test_ablation_frfcfs_vs_fcfs(benchmark, scale):
    """FR-FCFS row-hit-first scheduling vs plain FCFS in the DIMM MCs."""
    import numpy as np

    from repro.dram import (Dimm, DimmController, DimmGeometry, DimmKind,
                            MemoryRequest, RowLocalityMapping)
    from repro.sim import Engine
    from repro.sim.component import Component

    def run(policy):
        engine = Engine()
        root = Component(engine, "sys")
        dimm = Dimm(engine, "dimm", root, DimmKind.CXLG)
        ctrl = DimmController(engine, "mc", root, dimm, policy=policy)
        mapping = RowLocalityMapping(DimmGeometry())
        rng = np.random.default_rng(0)
        done = []
        # Two interleaved streams: one row-streaming, one random — the mix
        # FR-FCFS exploits.
        for i in range(400):
            if i % 2:
                addr = (i // 2) * 64
            else:
                addr = int(rng.integers(0, 1 << 26)) // 64 * 64
            req = MemoryRequest(addr=addr, size=64,
                                on_complete=lambda r: done.append(r))
            req.coord = mapping.map(addr)
            ctrl.submit_when_possible(req)
        engine.run()
        assert len(done) == 400
        return engine.now, dimm.total_row_hits

    def sweep():
        return {policy: run(policy) for policy in ("frfcfs", "fcfs")}

    results = run_once(benchmark, sweep)
    print("\nscheduling ablation:", results)
    fr_time, fr_hits = results["frfcfs"]
    fc_time, fc_hits = results["fcfs"]
    assert fr_time <= fc_time
    assert fr_hits >= fc_hits


def test_ablation_packer_flush_timeout(benchmark, scale, runner):
    """Data Packer flush window sweep: too small wastes flits, too large
    would add latency; the adaptive packer should be insensitive."""
    flags = OptimizationFlags(data_packing=True, memory_access_opt=True)

    def sweep():
        jobs = []
        for timeout in (2, 8, 32):
            config = scale.config()
            config = replace(config, comm=replace(config.comm,
                                                  flush_timeout=timeout))
            jobs.append(SweepJob(key=str(timeout), func=_fm_runtime,
                                 args=(scale, config, flags)))
        return {int(k): r.runtime_cycles for k, r in runner.run(jobs).items()}

    results = run_once(benchmark, sweep)
    print("\npacker flush sweep (cycles):", results)
    best, worst = min(results.values()), max(results.values())
    assert worst <= best * 1.5  # adaptive flushing keeps the knob gentle


def test_ablation_near_fraction(benchmark, scale, runner):
    """Profile-guided hot placement depth: how much of the FM-index the
    planner pushes onto the CXLG-DIMMs."""
    flags = OptimizationFlags.all_for("beacon-d", Algorithm.FM_SEEDING)

    def sweep():
        reports = runner.run([
            SweepJob(
                key=str(fraction), func=_fm_runtime,
                args=(scale, replace(scale.config(), near_fraction=fraction),
                      flags),
            )
            for fraction in (0.1, 0.5, 0.9)
        ])
        return {
            float(k): (
                r.runtime_cycles,
                r.extra["local_requests"] / max(1, r.mem_requests),
            )
            for k, r in reports.items()
        }

    results = run_once(benchmark, sweep)
    print("\nnear-fraction sweep (cycles, local%):", results)
    # More hot data near the PEs -> strictly more DIMM-local requests.
    localities = [results[f][1] for f in (0.1, 0.5, 0.9)]
    assert localities[0] < localities[1] < localities[2]
