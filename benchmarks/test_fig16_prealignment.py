"""Bench: Fig. 16 — DNA pre-alignment vs the CPU baseline.

Paper: BEACON-D / BEACON-S improve performance by 362x / 359x and energy
by 387x / 383x over the 48-thread Shouji baseline; the two variants are
nearly identical on this application.
"""

from conftest import run_once

from repro.experiments import fig16_prealignment


def test_fig16_prealignment(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig16_prealignment.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        assert result.mean_speedup(system) > (30 if scale.strict else 5)
        assert result.mean_energy_gain(system) > (10 if scale.strict else 2)
    # D and S are close on pre-alignment (paper: 362x vs 359x).
    ratio = result.mean_speedup("beacon-d") / result.mean_speedup("beacon-s")
    assert 0.5 < ratio < 2.0
    # Filter quality: true sites within the edit budget are accepted
    # (reads carry ~1% substitution errors, so a few per hundred truly
    # exceed 3 edits and are *correctly* rejected), decoys mostly rejected.
    for outcome in result.outcomes:
        assert outcome.accepted >= 0.9 * outcome.true_sites
        assert outcome.rejected > 0
