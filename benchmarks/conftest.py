"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables/figures at the bench
scale (see ``repro.experiments.ExperimentScale.bench`` and DESIGN.md's
experiment index), times it through pytest-benchmark (single round — each
"iteration" is a full simulation campaign), prints the paper-style rows,
and asserts the qualitative claims that define the figure's shape.

Set ``REPRO_BENCH_SCALE=quick`` to smoke the suite in under a minute.
Set ``REPRO_JOBS=N`` to fan each figure's independent sweep points out
over N processes (results are identical to a serial run; see
``repro.experiments.parallel``).
"""

import os

import pytest

from repro.experiments import ExperimentScale, ParallelSweepRunner


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    if os.environ.get("REPRO_BENCH_SCALE") == "quick":
        return ExperimentScale.quick()
    return ExperimentScale.bench()


@pytest.fixture(scope="session")
def runner() -> ParallelSweepRunner:
    """Sweep-point fan-out, honouring ``REPRO_JOBS`` (default: serial)."""
    return ParallelSweepRunner.from_env()


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (a campaign, not a microbenchmark)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
