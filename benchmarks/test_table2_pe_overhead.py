"""Bench: Table II — PE area/power across MEDAL, NEST, BEACON."""

from conftest import run_once

from repro.experiments import tables


def test_table2_pe_overhead(benchmark):
    result = run_once(benchmark, tables.run_table2)
    hw = result.hardware
    # Paper's Table II values verbatim.
    assert round(hw["MEDAL"].area_um2, 2) == 8941.39
    assert round(hw["NEST"].area_um2, 2) == 16721.12
    assert round(hw["BEACON"].area_um2, 2) == 14090.23
    # Section VI-A's conclusion: BEACON's multi-application PE has smaller
    # or comparable overhead — smaller than NEST's, with the lowest leakage.
    assert result.beacon_vs_nest["area_ratio"] < 1.0
    assert hw["BEACON"].leakage_power_uw < hw["MEDAL"].leakage_power_uw
    assert hw["BEACON"].leakage_power_uw < hw["NEST"].leakage_power_uw
    assert hw["BEACON"].dynamic_power_mw < hw["MEDAL"].dynamic_power_mw
