"""Bench: Fig. 3 — idealized communication counterfactual for MEDAL/NEST.

Paper: idealized (infinite bandwidth, zero latency) communication speeds
the prior DDR-DIMM accelerators up 4.36x and improves energy 2.32x on
average — communication is their bottleneck.
"""

from conftest import run_once

from repro.experiments import fig3_idealized


def test_fig3_idealized_communication(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig3_idealized.main(scale, runner=runner))
    # Communication must be a first-order bottleneck for the baselines:
    # idealizing it buys a substantial factor on both axes.
    assert result.mean_speedup > (1.3 if scale.strict else 1.05)
    assert result.mean_energy_gain > (1.3 if scale.strict else 1.05)
    # Every workload individually benefits (no counterexamples).
    for gain in result.gains:
        assert gain.speedup >= 1.0
        assert gain.energy_gain >= 1.0
