"""Bench: Fig. 13 — per-chip access balance from multi-chip coalescing.

Paper: without coalescing, per-chip memory access is unevenly distributed;
with coalescing it is well balanced ("with less variations").
"""

from conftest import run_once

from repro.experiments import fig13_coalescing


def test_fig13_chip_balance(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig13_coalescing.main(scale, runner=runner))
    # Coalescing slashes the imbalance (coefficient of variation).
    assert result.imbalance_with < result.imbalance_without / 2
    assert result.imbalance_with < 0.2
    # Normalized series: with coalescing every chip sits near 1.0.
    assert max(result.with_coalescing) < 1.3
    assert min(result.with_coalescing) > 0.7
    # Without coalescing at least one chip is far above the mean.
    assert max(result.without_coalescing) > 1.3
