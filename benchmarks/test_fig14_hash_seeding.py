"""Bench: Fig. 14 — Hash-index based DNA seeding step-by-step.

Paper shape: both variants clearly beat MEDAL (4.70x / 4.57x) and the CPU;
the memory access optimization is the dominant step; data packing
contributes little ("the amount of fine-grained memory access in
Hash-index based DNA seeding is limited").
"""

from conftest import run_once

from repro.experiments import fig14_hash_seeding


def test_fig14_hash_seeding(benchmark, scale, runner):
    result = run_once(benchmark, lambda: fig14_hash_seeding.main(scale, runner=runner))

    for system in ("beacon-d", "beacon-s"):
        for label in result.step_labels(system)[1:]:
            assert result.mean_step_speedup(system, label) > 0.9, label
        assert result.mean_speedup_vs_baseline(system) > (1.5 if scale.strict else 0.5)
        assert result.mean_speedup_vs_cpu(system) > 50
        assert result.mean_percent_of_ideal(system) > (0.5 if scale.strict else 0.2)
        # Deviation note (EXPERIMENTS.md): the paper's dominant hash step is
        # the memory access optimization; in this reproduction the placement
        # & mapping step carries the weight instead (hash traffic is coarse
        # enough that the host detour hurts less than remote placement).
        # The preserved shape: placement is a major lever, data packing a
        # minor one ("the amount of fine-grained memory access in Hash-index
        # based DNA seeding is limited").
        if scale.strict:
            assert result.mean_step_speedup(system, "+placement & mapping") > 1.15
            assert result.mean_step_speedup(system, "+data packing") < 1.3
