"""Heap-vs-wheel scheduler parity: bit-identical results, identical order.

The engine's priority structure is pluggable (:mod:`repro.sim.scheduler`);
correctness demands that every registered implementation reproduces the
exact ``(time, FIFO-within-cycle)`` dispatch order of the reference binary
heap.  This suite enforces that three ways:

1. every benched figure scenario runs at quick scale under both
   schedulers and must produce byte-identical Report fingerprints,
2. a hypothesis property drives both schedulers through random
   push/drain interleavings and asserts identical pop order, and
3. targeted unit tests cover the new engine surface built on the
   scheduler core (cancellable handles, rescheduling, occupancy
   accounting, the delay histogram).
"""

from dataclasses import fields, is_dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import ExperimentScale, ParallelSweepRunner
from repro.perf.harness import BENCH_FIGURES, fingerprint
from repro.sim import (
    SCHEDULERS,
    CalendarScheduler,
    Engine,
    HeapScheduler,
    SimulationError,
    create_scheduler,
)

#: The nine figure scenarios plus the open-loop serving workload —
#: every campaign whose results the paper reproduction leans on.
PARITY_SCENARIOS = [
    "fig3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
    "sec6g", "scalability", "mt-serving",
]


def _digest(obj):
    """Canonical nested-tuple digest of a whole figure result.

    Stricter than :func:`fingerprint`: besides the Report tuples it
    captures every derived series and scalar (some figures — fig13's
    chip profiles, fig17's energy shares — publish no Report at all),
    with floats compared exactly.
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return tuple(
            (f.name, _digest(getattr(obj, f.name))) for f in fields(obj)
        )
    if isinstance(obj, dict):
        return tuple((key, _digest(value)) for key, value in obj.items())
    if isinstance(obj, (list, tuple)):
        return tuple(_digest(value) for value in obj)
    if isinstance(obj, (int, float, str, bool, type(None))):
        return obj
    return repr(obj)


class TestFigureParity:
    @pytest.mark.parametrize("name", PARITY_SCENARIOS)
    def test_heap_and_wheel_fingerprints_identical(self, name, monkeypatch):
        digests = {}
        for scheduler in sorted(SCHEDULERS):
            monkeypatch.setenv("REPRO_SCHEDULER", scheduler)
            runner = ParallelSweepRunner(jobs=1)
            result = BENCH_FIGURES[name](ExperimentScale.quick(),
                                         runner=runner)
            digests[scheduler] = (fingerprint(result), _digest(result))
        reference = digests.pop("heap")
        for scheduler, digest in digests.items():
            assert digest == reference, (
                f"{name}: {scheduler} scheduler diverged from the heap"
            )


# -- property: identical pop order -------------------------------------------------


@st.composite
def _schedules(draw):
    """A random schedule: initial (delay, tag) pushes plus, for some
    events, a follow-up push performed while that event dispatches (the
    same-cycle-append and future-push paths the engine exercises)."""
    initial = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=40),
                  st.integers(min_value=0, max_value=10 ** 6)),
        min_size=1, max_size=40,
    ))
    chained = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=len(initial) - 1),
                  st.integers(min_value=0, max_value=8)),
        max_size=20,
    ))
    return initial, chained


def _drain_order(scheduler, initial, chained):
    """Dispatch order of one scheduler over the generated schedule."""
    order = []
    followups = {}
    for slot, (source, extra_delay) in enumerate(chained):
        followups.setdefault(source, []).append((slot, extra_delay))

    def make_event(tag, index):
        def event():
            order.append((tag, index))
            for slot, extra_delay in followups.get(index, []):
                scheduler.push(now + extra_delay,
                               make_event(f"chain-{slot}", -1 - slot))
        return event

    for index, (delay, tag) in enumerate(initial):
        scheduler.push(delay, make_event(tag, index))

    now = 0
    while len(scheduler):
        now = scheduler.next_time()
        batch = scheduler.start_cycle()
        i = 0
        while i < len(batch):
            batch[i]()
            i += 1
        scheduler.finish_cycle()
    return order


class TestPopOrderProperty:
    @settings(max_examples=200, deadline=None)
    @given(_schedules())
    def test_all_schedulers_pop_identically(self, schedule):
        initial, chained = schedule
        reference = _drain_order(HeapScheduler(), initial, chained)
        assert len(reference) == len(initial) + len(chained)
        wheel = _drain_order(CalendarScheduler(), initial, chained)
        assert wheel == reference


# -- engine surface on top of the scheduler core -----------------------------------


class TestNonIntegralDelays:
    """Regression: ``int(delay)`` used to silently truncate floats."""

    def test_fractional_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="non-integral delay"):
            eng.schedule(1.5, lambda: None)

    def test_fractional_absolute_time_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError, match="non-integral"):
            eng.schedule_at(2.25, lambda: None)

    def test_integral_float_normalized(self):
        eng = Engine()
        hits = []
        eng.schedule(3.0, lambda: hits.append(eng.now))
        eng.run()
        assert hits == [3]
        assert type(eng.now) is int

    def test_numpy_float_delay_rejected(self):
        np = pytest.importorskip("numpy")
        eng = Engine()
        with pytest.raises(SimulationError, match="non-integral delay"):
            eng.schedule(np.float64(2.5), lambda: None)


class TestCancellableHandles:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        hits = []
        handle = eng.schedule_cancellable(5, lambda: hits.append("x"))
        handle.cancel()
        eng.run()
        assert hits == []
        assert not handle.active

    def test_cancelled_slot_still_counts_as_executed(self):
        # The dispatch slot exists either way; skipping the callback must
        # not change event accounting between cancel-heavy and plain runs.
        eng = Engine()
        eng.schedule_cancellable(1, lambda: None).cancel()
        eng.schedule(1, lambda: None)
        eng.run()
        assert eng.events_executed == 2

    def test_reschedule_moves_the_event(self):
        eng = Engine()
        hits = []
        handle = eng.schedule_cancellable(2, lambda: hits.append(eng.now))
        eng.reschedule(handle, 7)
        eng.run()
        assert hits == [7]

    def test_cancel_then_fresh_schedule_is_the_timeout_idiom(self):
        # The packer's flush timer: cancel the pending deadline, arm a new
        # one.  Only the latest deadline fires.
        eng = Engine()
        fired = []
        handle = eng.schedule_cancellable(10, lambda: fired.append(10))
        handle.cancel()
        eng.schedule_cancellable(4, lambda: fired.append(4))
        eng.run()
        assert fired == [4]


class TestProcessCounters:
    def test_reset_zeroes_events_and_occupancy(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        eng.run()
        assert Engine.global_events_executed() > 0
        Engine.reset_process_counters()
        assert Engine.global_events_executed() == 0
        assert Engine.process_occupancy() == {}

    def test_occupancy_aggregates_batches(self):
        Engine.reset_process_counters()
        eng = Engine(scheduler="wheel")
        for _ in range(6):
            eng.schedule(3, lambda: None)  # one 6-event batch
        eng.schedule(9, lambda: None)
        eng.run()
        occ = Engine.process_occupancy()["wheel"]
        assert occ["events_enqueued"] == 7
        assert occ["cycles_started"] == 2
        assert occ["max_batch"] == 6
        assert occ["avg_batch"] == pytest.approx(3.5)
        Engine.reset_process_counters()

    def test_occupancy_keyed_by_scheduler(self):
        Engine.reset_process_counters()
        for name in sorted(SCHEDULERS):
            eng = Engine(scheduler=name)
            eng.schedule(1, lambda: None)
            eng.run()
        assert set(Engine.process_occupancy()) == set(SCHEDULERS)
        Engine.reset_process_counters()


class TestDelayHistogram:
    def test_records_all_scheduling_paths(self):
        eng = Engine()
        with Engine.record_delay_histogram() as histogram:
            eng.schedule(4, lambda: None)
            eng.schedule(4, lambda: None)
            eng.schedule_cancellable(2, lambda: None)
            eng.schedule_at(10, lambda: None)
            eng.run()
        assert histogram == {4: 2, 2: 1, 10: 1}

    def test_histogram_is_observational(self):
        def run(record):
            eng = Engine()
            order = []
            for i in range(5):
                eng.schedule(i % 2, lambda i=i: order.append((eng.now, i)))
            if record:
                with Engine.record_delay_histogram():
                    eng.run()
            else:
                eng.run()
            return order

        assert run(record=True) == run(record=False)

    def test_wrappers_removed_after_exit(self):
        before = Engine.schedule
        with Engine.record_delay_histogram():
            assert Engine.schedule is not before
        assert Engine.schedule is before


class TestRegistry:
    def test_env_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        assert isinstance(Engine().scheduler, HeapScheduler)
        monkeypatch.setenv("REPRO_SCHEDULER", "wheel")
        assert isinstance(Engine().scheduler, CalendarScheduler)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            create_scheduler("splay-tree")

    def test_instance_passthrough(self):
        sched = HeapScheduler()
        assert Engine(scheduler=sched).scheduler is sched
