"""Integration tests for the DIMM controller: scheduling, throughput, energy."""

import numpy as np
import pytest

from repro.dram import (
    ChipInterleaveMapping,
    Dimm,
    DimmController,
    DimmGeometry,
    DimmKind,
    MemoryRequest,
    RankInterleaveMapping,
)
from repro.dram.request import AccessKind
from repro.sim import Engine
from repro.sim.component import Component

GEO = DimmGeometry()


def make_setup(kind=DimmKind.CXLG, policy="frfcfs", queue_capacity=64):
    engine = Engine()
    root = Component(engine, "sys")
    dimm = Dimm(engine, "dimm", root, kind)
    ctrl = DimmController(engine, "mc", root, dimm, policy=policy,
                          queue_capacity=queue_capacity)
    return engine, dimm, ctrl


def submit(ctrl, mapping, addr, size=32, kind=AccessKind.READ, done=None):
    req = MemoryRequest(addr=addr, size=size, kind=kind,
                        on_complete=(lambda r: done.append(r)) if done is not None else None)
    req.coord = mapping.map(addr)
    ctrl.submit_when_possible(req)
    return req


class TestCompletion:
    def test_all_requests_complete(self):
        engine, dimm, ctrl = make_setup()
        mapping = RankInterleaveMapping(GEO)
        done = []
        rng = np.random.default_rng(0)
        for _ in range(300):
            submit(ctrl, mapping, int(rng.integers(0, 1 << 20)) // 64 * 64,
                   size=64, done=done)
        engine.run()
        assert len(done) == 300
        assert all(r.completed_at is not None for r in done)
        assert ctrl.pending == 0

    def test_deterministic(self):
        def run_once():
            engine, dimm, ctrl = make_setup()
            mapping = RankInterleaveMapping(GEO)
            done = []
            rng = np.random.default_rng(1)
            for _ in range(100):
                submit(ctrl, mapping, int(rng.integers(0, 1 << 18)) // 64 * 64,
                       size=64, done=done)
            engine.run()
            return engine.now, [r.completed_at for r in done]

        assert run_once() == run_once()


class TestRowBufferBehaviour:
    def test_sequential_same_row_mostly_hits(self):
        engine, dimm, ctrl = make_setup()
        mapping = ChipInterleaveMapping(GEO, chips_per_group=16)
        done = []
        # 64 B lines within one row of one bank group.
        for i in range(32):
            submit(ctrl, mapping, i, size=1, done=done)
        engine.run()
        assert len(done) == 32
        assert dimm.total_row_hits > 20

    def test_random_rows_cause_activations(self):
        engine, dimm, ctrl = make_setup()
        mapping = RankInterleaveMapping(GEO)
        rng = np.random.default_rng(2)
        done = []
        for _ in range(100):
            submit(ctrl, mapping, int(rng.integers(0, 1 << 26)) // 64 * 64,
                   size=64, done=done)
        engine.run()
        assert dimm.total_activations > 50 * GEO.chips_per_rank


class TestFrFcfs:
    def _mixed_run(self, policy):
        engine, dimm, ctrl = make_setup(policy=policy)
        mapping = RankInterleaveMapping(GEO)
        done = []
        # Interleave two rows of the same bank: FR-FCFS should batch hits.
        lines_per_turn = GEO.banks * GEO.ranks  # same bank, next slot
        row_stride = lines_per_turn * GEO.row_bytes_per_rank // 64 * 64
        for i in range(24):
            base = (i % 2) * row_stride * 64
            submit(ctrl, mapping, base + (i // 2) * lines_per_turn * 64,
                   size=64, done=done)
        engine.run()
        return engine.now, dimm

    def test_frfcfs_no_slower_than_fcfs(self):
        t_fr, dimm_fr = self._mixed_run("frfcfs")
        t_fc, dimm_fc = self._mixed_run("fcfs")
        assert t_fr <= t_fc
        assert dimm_fr.total_row_hits >= dimm_fc.total_row_hits

    def test_unknown_policy_rejected(self):
        engine = Engine()
        root = Component(engine, "sys")
        dimm = Dimm(engine, "dimm", root, DimmKind.CXLG)
        with pytest.raises(ValueError):
            DimmController(engine, "mc", root, dimm, policy="magic")


class TestFineGrained:
    def test_unmodified_dimm_rejects_fine_grained(self):
        engine, dimm, ctrl = make_setup(kind=DimmKind.UNMODIFIED_CXL)
        mapping = ChipInterleaveMapping(GEO, chips_per_group=1, unit_bytes=32)
        req = MemoryRequest(addr=0, size=32)
        req.coord = mapping.map(0)
        with pytest.raises(ValueError, match="lockstep"):
            ctrl.submit_when_possible(req)

    def test_fine_grained_reads_fewer_bytes(self):
        def total_bytes(chips_per_group):
            engine, dimm, ctrl = make_setup()
            mapping = ChipInterleaveMapping(GEO, chips_per_group, unit_bytes=32)
            done = []
            rng = np.random.default_rng(3)
            for _ in range(200):
                submit(ctrl, mapping, int(rng.integers(0, 1 << 20)) // 32 * 32,
                       size=32, done=done)
            engine.run()
            assert len(done) == 200
            return ctrl.stats.get("bytes_accessed")

        fine = total_bytes(1)
        lockstep_mapping_bytes = 200 * 64  # 32 B requests on 16-chip bursts
        assert fine == 200 * 32
        assert fine < lockstep_mapping_bytes

    def test_chip_counters_follow_groups(self):
        engine, dimm, ctrl = make_setup()
        mapping = ChipInterleaveMapping(GEO, chips_per_group=8, unit_bytes=32)
        done = []
        for i in range(64):
            submit(ctrl, mapping, i * 32, size=32, done=done)
        engine.run()
        per_chip = dimm.chip_counters.per_chip()
        assert sum(per_chip) == 64 * 8  # each access credits its 8 chips
        assert dimm.chip_counters.imbalance() < 0.1


class TestBackpressure:
    def test_waiters_admitted_in_order(self):
        engine, dimm, ctrl = make_setup(queue_capacity=4)
        mapping = RankInterleaveMapping(GEO)
        done = []
        for i in range(50):
            submit(ctrl, mapping, i * 64, size=64, done=done)
        assert ctrl.stats.get("parked") > 0
        engine.run()
        assert len(done) == 50
        # Every parked request was eventually admitted and accounted.
        assert ctrl.stats.get("accepted") == 50


class TestEnergy:
    def test_energy_scales_with_work(self):
        engine, dimm, ctrl = make_setup()
        mapping = RankInterleaveMapping(GEO)
        done = []
        rng = np.random.default_rng(4)
        for _ in range(100):
            submit(ctrl, mapping, int(rng.integers(0, 1 << 24)) // 64 * 64,
                   size=64, done=done)
        engine.run()
        dimm.energy.finalize(engine.now)
        total = dimm.energy.total_nj()
        assert total > 0
        assert dimm.stats.get("energy_act_nj") > 0
        assert dimm.stats.get("energy_rw_nj") > 0
        assert dimm.stats.get("energy_background_nj") > 0

    def test_write_energy_differs_from_read(self):
        def run(kind):
            engine, dimm, ctrl = make_setup()
            mapping = RankInterleaveMapping(GEO)
            done = []
            for i in range(50):
                submit(ctrl, mapping, i * 64, size=64, kind=kind, done=done)
            engine.run()
            return dimm.stats.get("energy_rw_nj")

        assert run(AccessKind.WRITE) > run(AccessKind.READ)


class TestPlanCache:
    """The timing-plan cache must be pure elision: identical schedules,
    fewer ``_compute_plan`` calls."""

    def _random_run(self, n=200):
        engine, dimm, ctrl = make_setup()
        mapping = RankInterleaveMapping(GEO)
        done = []
        rng = np.random.default_rng(7)
        for _ in range(n):
            submit(ctrl, mapping, int(rng.integers(0, 1 << 22)) // 64 * 64,
                   size=64, done=done)
        engine.run()
        dimm.energy.finalize(engine.now)
        trace = (engine.now, [r.completed_at for r in done],
                 dimm.energy.total_nj(), dimm.total_activations,
                 dimm.total_row_hits)
        return trace, ctrl

    def test_cache_hits_and_identical_schedule(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_PLAN_CACHE", raising=False)
        cached_trace, cached_ctrl = self._random_run()
        assert cached_ctrl.plan_cache_hits > 0

        monkeypatch.setenv("REPRO_DISABLE_PLAN_CACHE", "1")
        uncached_trace, uncached_ctrl = self._random_run()
        assert uncached_ctrl.plan_cache_hits == 0
        assert uncached_ctrl.plan_cache_misses == 0
        assert cached_trace == uncached_trace

    def test_kill_switch_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_PLAN_CACHE", "1")
        _engine, _dimm, ctrl = make_setup()
        assert ctrl._plan_cache_enabled is False
        monkeypatch.delenv("REPRO_DISABLE_PLAN_CACHE")
        _engine, _dimm, ctrl = make_setup()
        assert ctrl._plan_cache_enabled is True

    def test_issue_drops_cached_plan(self):
        engine, dimm, ctrl = make_setup()
        mapping = RankInterleaveMapping(GEO)
        done = []
        req = submit(ctrl, mapping, 0, size=64, done=done)
        engine.run()
        assert done and req.plan_entry is None


class TestInvalidationEpochs:
    def test_bank_commit_bumps_only_its_bank(self):
        _engine, dimm, _ctrl = make_setup()
        before_global = dimm.state_epoch
        dimm.note_bank_commit(0, 3)
        assert dimm.state_epoch == before_global + 1
        assert dimm.bank_epoch(0, 3) == 1
        assert dimm.bank_epoch(0, 2) == 0
        assert dimm.bank_epoch(1, 3) == 0

    def test_bus_update_bumps_only_its_chips(self):
        _engine, dimm, _ctrl = make_setup()
        dimm.set_chip_free_at(0, 5, 100)
        assert dimm.bus_epoch_sum(0, 5, 1) == 1
        assert dimm.bus_epoch_sum(0, 0, 5) == 0
        assert dimm.bus_epoch_sum(0, 0, 16) == 1  # covers chip 5

    def test_refresh_style_bump_invalidates_everything(self):
        _engine, dimm, _ctrl = make_setup()
        dimm.bump_state_epoch()
        assert dimm.state_epoch == 1
        assert all(dimm.bank_epoch(r, b) == 1
                   for r in range(GEO.ranks) for b in range(GEO.banks))
        assert dimm.bus_epoch_sum(0, 0, GEO.chips_per_rank) == GEO.chips_per_rank
