"""Quick-scale tests of the experiment harness (the figure modules)."""

import pytest

from repro.core.config import Algorithm
from repro.experiments import ExperimentScale, run_step_sweep, build_system
from repro.experiments.runner import OptimizationFlags
from repro.experiments import tables

SCALE = ExperimentScale.quick()


class TestExperimentScale:
    def test_quick_is_smaller_than_bench(self):
        quick, bench = ExperimentScale.quick(), ExperimentScale.bench()
        assert quick.genome_scale < bench.genome_scale
        assert quick.num_datasets <= bench.num_datasets

    def test_config_uses_pe_divisor(self):
        assert SCALE.config().pes_per_cxlg == 128 // SCALE.pe_divisor

    def test_workload_builders(self):
        w = SCALE.seeding_workload(SCALE.seeding_datasets()[0])
        assert len(w.reads) > 0
        assert len(SCALE.kmer_workload().reads) > 0


class TestBuildSystem:
    def test_known_systems(self):
        cfg = SCALE.config()
        flags = OptimizationFlags.vanilla()
        for name in ("beacon-d", "beacon-s", "medal", "nest"):
            system = build_system(name, cfg, flags)
            assert system.variant == name

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            build_system("beacon-x", SCALE.config(), OptimizationFlags.vanilla())


class TestStepSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        workload = SCALE.seeding_workload(SCALE.seeding_datasets()[0])
        return run_step_sweep("beacon-d", Algorithm.FM_SEEDING, workload,
                              SCALE, with_ideal=True, baseline="medal",
                              with_cpu=True)

    def test_step_labels_and_counts(self, sweep):
        assert [s.label for s in sweep.steps][0] == "CXL-vanilla"
        assert len(sweep.steps) == 5

    def test_full_config_is_fastest(self, sweep):
        assert sweep.full.runtime_cycles <= sweep.vanilla.runtime_cycles

    def test_ideal_bounds_all_steps(self, sweep):
        assert sweep.ideal.runtime_cycles <= sweep.full.runtime_cycles
        assert 0 < sweep.percent_of_ideal <= 1.0

    def test_baselines_present(self, sweep):
        assert sweep.baseline is not None and sweep.cpu is not None
        assert sweep.speedup_vs_cpu() > sweep.speedup_vs_baseline()


class TestFigureModules:
    def test_fig13_balance_improves(self):
        from repro.experiments import fig13_coalescing

        result = fig13_coalescing.run(SCALE)
        assert len(result.with_coalescing) == 16
        assert result.imbalance_with < result.imbalance_without
        assert abs(sum(result.with_coalescing) / 16 - 1.0) < 0.05

    def test_fig16_prealignment(self):
        from repro.experiments import fig16_prealignment

        result = fig16_prealignment.run(SCALE)
        assert result.outcomes
        for outcome in result.outcomes:
            assert outcome.speedup_vs_cpu > 1.0
            # true sites within the edit budget accepted (a few reads
            # genuinely exceed the threshold at 1% error rate)
            assert outcome.accepted >= 0.9 * outcome.true_sites

    def test_tables(self):
        t1 = tables.run_table1()
        assert any("BEACON" in row for row in t1.rows)
        t2 = tables.run_table2()
        assert t2.beacon_vs_nest["area_ratio"] < 1.0
        assert t2.beacon_vs_medal["area_ratio"] > 1.0
