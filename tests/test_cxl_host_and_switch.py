"""Unit tests for the host and switch structural models."""

import pytest

from repro.cxl import CommParams, CxlSwitch, Host, LinkParams
from repro.cxl.topology import MemoryPool
from repro.dram import DimmKind
from repro.sim import Engine
from repro.sim.component import Component


def make(engine=None):
    engine = engine or Engine()
    root = Component(engine, "sys")
    return engine, root


class TestHost:
    def test_detour_accounting(self):
        engine, root = make()
        host = Host(engine, "host", root, LinkParams(64, 10))
        host.record_detour(128)
        host.record_detour(64)
        assert host.stats.get("detour_messages") == 2
        assert host.stats.get("detour_bytes") == 192

    def test_bus_is_a_link(self):
        engine, root = make()
        host = Host(engine, "host", root, LinkParams(64, 10))
        arrivals = []
        host.bus.transfer(640, lambda: arrivals.append(engine.now))
        engine.run()
        assert arrivals == [20]  # 10 serialize + 10 latency


class TestCxlSwitch:
    def test_vcs_binding(self):
        engine, root = make()
        switch = CxlSwitch(engine, "sw0", root, LinkParams(128, 4))
        assert switch.attach_dimm("d0") == 0
        assert switch.attach_dimm("d1") == 1
        assert switch.owns("d0") and switch.owns("d1")
        assert not switch.owns("d2")
        assert switch.dimm_nodes == ["d0", "d1"]

    def test_turnaround_counter(self):
        engine, root = make()
        switch = CxlSwitch(engine, "sw0", root, LinkParams(128, 4))
        switch.record_turnaround()
        assert switch.stats.get("in_switch_turnarounds") == 1


class TestPoolTopologyAccounting:
    def _pool(self, device_bias):
        engine, root = make()
        pool = MemoryPool(engine, "pool", root, CommParams(device_bias=device_bias))
        pool.fabric.add_host()
        pool.fabric.add_switch("sw0")
        pool.add_dimm("d0.0", "sw0", DimmKind.CXLG)
        pool.add_dimm("d0.1", "sw0", DimmKind.UNMODIFIED_CXL)
        return engine, pool

    def test_owner_switch(self):
        _engine, pool = self._pool(True)
        assert pool.owner_switch(0) == "sw0"
        assert pool.owner_switch(1) == "sw0"

    def test_detours_counted_without_bias(self):
        _engine, pool = self._pool(False)
        pool.fabric.route("d0.0", "d0.1", force_host=True)
        assert pool.fabric.host.stats.get("detour_messages") == 1
        assert pool.fabric.switches["sw0"].stats.get("in_switch_turnarounds", 0) == 0

    def test_turnarounds_counted_with_bias(self):
        _engine, pool = self._pool(True)
        pool.fabric.route("d0.0", "d0.1")
        assert pool.fabric.switches["sw0"].stats.get("in_switch_turnarounds") == 1
        assert pool.fabric.host.stats.get("detour_messages", 0) == 0

    def test_vcs_table_filled_by_fabric(self):
        _engine, pool = self._pool(True)
        switch = pool.fabric.switches["sw0"]
        assert switch.owns("d0.0") and switch.owns("d0.1")

    def test_comm_energy_rollup(self):
        engine, pool = self._pool(True)
        from repro.dram import ChipInterleaveMapping, DimmGeometry, MemoryRequest

        req = MemoryRequest(addr=0, size=64)
        req.coord = ChipInterleaveMapping(DimmGeometry(), 16).map(0)
        req.dimm_index = 1
        pool.access(req, "d0.0")
        engine.run()
        assert pool.fabric.comm_energy_pj() > 0
